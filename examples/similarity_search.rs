//! Example: zero-shot trajectory similarity search (§III-D3 / §IV-D4).
//!
//! Builds the paper's top-k-detour benchmark, embeds everything with a
//! pre-trained START model (no fine-tuning), and compares retrieval quality
//! and per-comparison cost against the classical DTW measure — a miniature
//! of the Figure 10 study.
//!
//! Run: `cargo run --release --example similarity_search`

use std::time::Instant;

use start_bench::{bj_mini, ModelKind, Runner, Scale};
use start_eval::classic::{dtw, midpoints};
use start_eval::metrics::{hit_ratio, mean_rank, truth_ranks};
use start_traj::{build_benchmark, DetourConfig};

fn main() {
    println!("[1/4] dataset (quick-scale BJ-mini)...");
    let scale = Scale { bj_trajectories: 1700, num_queries: 30, ..Scale::quick() };
    let ds = bj_mini(&scale);
    println!("      {}", ds.table1_row());

    println!("[2/4] pre-training START (span-mask + contrastive)...");
    let mut start = Runner::build(&ModelKind::start(&scale), &ds, &scale, None);
    start.pretrain(&ds, &scale);

    println!("[3/4] building the detour benchmark (p_d = 0.2, t_d = 0.2)...");
    let nq = scale.num_queries;
    let bench = build_benchmark(&ds.city.net, ds.test(), nq, nq * 8, &DetourConfig::default());

    println!("[4/4] searching...");
    // Deep: embed once (offline in practice), then O(d) comparisons.
    let t0 = Instant::now();
    let q = start.encode(&bench.queries);
    let db = start.encode(&bench.database);
    let t_embed = t0.elapsed();
    let t0 = Instant::now();
    let deep_ranks = truth_ranks(&q, &db, |i| bench.truth(i));
    let t_scan = t0.elapsed();

    // Classic: O(L^2) DTW scan per query.
    let t0 = Instant::now();
    let qp: Vec<_> = bench.queries.iter().map(|t| midpoints(&ds.city.net, t)).collect();
    let dp: Vec<_> = bench.database.iter().map(|t| midpoints(&ds.city.net, t)).collect();
    let dtw_ranks: Vec<usize> = qp
        .iter()
        .enumerate()
        .map(|(qi, a)| {
            let truth_d = dtw(a, &dp[bench.truth(qi)]);
            dp.iter()
                .enumerate()
                .filter(|(i, b)| *i != bench.truth(qi) && dtw(a, b) < truth_d)
                .count()
                + 1
        })
        .collect();
    let t_dtw = t0.elapsed();

    println!(
        "\nSTART  : MR {:>6.2}  HR@1 {:.2}  HR@5 {:.2}  embed {:?} (one-off) + scan {:?}",
        mean_rank(&deep_ranks),
        hit_ratio(&deep_ranks, 1),
        hit_ratio(&deep_ranks, 5),
        t_embed,
        t_scan
    );
    println!(
        "DTW    : MR {:>6.2}  HR@1 {:.2}  HR@5 {:.2}  scan {:?}",
        mean_rank(&dtw_ranks),
        hit_ratio(&dtw_ranks, 1),
        hit_ratio(&dtw_ranks, 5),
        t_dtw
    );
    println!(
        "\nSTART retrieves the detoured ground truth near the top of {} candidates with an\nO(d) scan ({:?}); DTW's geometric DP is near-oracle on these clean synthetic\npolylines but costs O(L^2) per comparison — on large noisy GPS databases the\nembedding search wins both ways (see EXPERIMENTS.md, Fig 10 notes).",
        bench.database.len(),
        t_scan
    );
}
