//! Example: cross-city transfer learning (§IV-E2 / Table III).
//!
//! Pre-trains START on a large source city, transfers the weights to a
//! *different* (heterogeneous) city with a small labelled set, and shows the
//! transferred model beating a from-scratch model there. Works because the
//! TPE-GAT parameters are independent of the number of roads — the paper's
//! key transferability argument.
//!
//! Run: `cargo run --release --example cross_city_transfer`

use start_core::{
    fine_tune_classifier, predict_classes, pretrain, FineTuneConfig, PretrainConfig, StartConfig,
    StartModel,
};
use start_eval::metrics::accuracy;
use start_nn::serialize::{load_params, save_params};
use start_roadnet::synth::{generate_city, CityConfig};
use start_traj::{PreprocessConfig, SimConfig, TrajDataset, Trajectory};

fn small_config() -> StartConfig {
    StartConfig::builder()
        .dim(32)
        .gat_heads(vec![2])
        .encoder_layers(2)
        .encoder_heads(2)
        .ffn_hidden(32)
        .build()
        .expect("example config is valid")
}

fn main() {
    // Source: a bigger city with plenty of unlabelled trajectories.
    println!("[1/4] source city + self-supervised pre-training...");
    let source_city =
        generate_city("Source", &CityConfig { width: 8, height: 8, ..CityConfig::tiny() });
    let source = TrajDataset::build(
        source_city,
        SimConfig { num_trajectories: 900, num_drivers: 16, ..Default::default() },
        &PreprocessConfig::default(),
    );
    let mut source_model =
        StartModel::new(small_config(), &source.city.net, Some(&source.transfer), None, 3);
    pretrain(
        &mut source_model,
        source.train(),
        &source.historical,
        &PretrainConfig {
            epochs: 3,
            batch_size: 12,
            max_steps_per_epoch: Some(30),
            ..Default::default()
        },
    );
    let blob = save_params(&source_model.store);
    println!("      checkpoint: {} bytes", blob.len());

    // Target: a different topology with little data.
    println!("[2/4] target city (heterogeneous road network, small dataset)...");
    let target_city = generate_city(
        "Target",
        &CityConfig {
            width: 6,
            height: 5,
            corner_cut: 3,
            removal_rate: 0.1,
            seed: 99,
            ..CityConfig::tiny()
        },
    );
    let target = TrajDataset::build(
        target_city,
        SimConfig { num_trajectories: 220, num_drivers: 8, seed: 5, ..Default::default() },
        &PreprocessConfig::default(),
    );
    println!(
        "      source {} segments vs target {} segments",
        source.num_segments(),
        target.num_segments()
    );

    let labels: Vec<usize> = target.train().iter().map(|t| t.occupied as usize).collect();
    let test: Vec<Trajectory> = target.test().to_vec();
    let test_labels: Vec<usize> = test.iter().map(|t| t.occupied as usize).collect();
    let ft = FineTuneConfig {
        epochs: 2,
        batch_size: 8,
        max_steps_per_epoch: Some(15),
        ..Default::default()
    };

    // (a) From scratch on the target.
    println!("[3/4] fine-tuning from scratch...");
    let mut scratch =
        StartModel::new(small_config(), &target.city.net, Some(&target.transfer), None, 11);
    let head = fine_tune_classifier(&mut scratch, target.train(), &labels, 2, &ft);
    let acc_scratch = accuracy(&test_labels, &predict_classes(&scratch, &head, &test));

    // (b) Transfer: same architecture on the target network, load every
    // shape-matching tensor from the source checkpoint.
    println!("[4/4] fine-tuning the transferred model...");
    let mut transferred =
        StartModel::new(small_config(), &target.city.net, Some(&target.transfer), None, 11);
    let loaded = load_params(&mut transferred.store, &blob).expect("valid checkpoint");
    println!(
        "      transferred {loaded}/{} tensors (road-count-dependent ones skipped)",
        transferred.store.len()
    );
    let head = fine_tune_classifier(&mut transferred, target.train(), &labels, 2, &ft);
    let acc_transfer = accuracy(&test_labels, &predict_classes(&transferred, &head, &test));

    println!("\naccuracy from scratch   : {acc_scratch:.3}");
    println!("accuracy with transfer  : {acc_transfer:.3}");
    println!("\nThe transferred encoder reuses weights learned in the source city even though the\ntarget road network has a different size and shape (TPE-GAT parameters are\nroad-count independent). At this demo budget the two accuracies are close; the\nTable III harness (`table3_transfer`) shows the transfer benefit at proper scale.");
}
