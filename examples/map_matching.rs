//! Example: the raw-GPS ingestion path (Definition 2 → Definition 3).
//!
//! Simulates noisy GPS traces, recovers road-network-constrained
//! trajectories with the HMM map matcher, and verifies the recovered routes
//! against the ground truth — the preprocessing step every experiment in
//! the paper assumes (§II-A).
//!
//! Run: `cargo run --release --example map_matching`

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_roadnet::synth::{generate_city, CityConfig};
use start_traj::{map_match, MatchConfig, SimConfig, Simulator};

fn main() {
    let city = generate_city("MapMatch-City", &CityConfig::tiny());
    let sim = Simulator::new(
        &city.net,
        SimConfig { num_trajectories: 30, num_drivers: 6, ..Default::default() },
    );
    let truth = sim.generate();
    let mut rng = StdRng::seed_from_u64(99);

    let cfg = MatchConfig::default();
    println!("matching 20 noisy GPS traces (15 s sampling, sigma 6 m)...\n");
    let mut total_recall = 0.0;
    let mut total_precision = 0.0;
    let mut matched_count = 0;
    for (i, t) in truth.iter().take(20).enumerate() {
        let raw = sim.to_raw_gps(t, 15, 6.0, &mut rng);
        match map_match(&city.net, &raw, &cfg) {
            Ok(recovered) => {
                assert!(city.net.is_path(&recovered.roads), "matcher must output a path");
                let truth_set: std::collections::HashSet<_> = t.roads.iter().collect();
                let rec_set: std::collections::HashSet<_> = recovered.roads.iter().collect();
                let hit = t.roads.iter().filter(|r| rec_set.contains(r)).count();
                let recall = hit as f64 / t.roads.len() as f64;
                let precision = recovered.roads.iter().filter(|r| truth_set.contains(r)).count()
                    as f64
                    / recovered.roads.len() as f64;
                total_recall += recall;
                total_precision += precision;
                matched_count += 1;
                println!(
                    "trace {i:>2}: {:>3} GPS points -> {:>3} roads (truth {:>3})  recall {recall:.2}  precision {precision:.2}",
                    raw.points.len(),
                    recovered.len(),
                    t.len()
                );
            }
            Err(e) => println!("trace {i:>2}: match failed: {e}"),
        }
    }
    println!(
        "\nmean recall {:.2}, mean precision {:.2} over {matched_count} traces",
        total_recall / matched_count as f64,
        total_precision / matched_count as f64
    );
    println!("The HMM matcher recovers the road sequence despite GPS noise, so the rest of the\npipeline can work purely on road-network-constrained trajectories.");
}
