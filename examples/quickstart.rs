//! Quickstart: build a synthetic city, simulate trajectories, pre-train
//! START self-supervised, and use the representations for three downstream
//! tasks — the paper's Figure 2 pipeline end to end in one file — then
//! stand the trained model up behind the online embedding service.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use start_bench::{f3, Table};
use start_core::{
    fine_tune_eta, predict_eta, pretrain, EncodeOptions, FineTuneConfig, PretrainConfig,
    StartConfig, StartModel,
};
use start_eval::metrics::{hit_ratio, mean_rank, regression_report, truth_ranks};
use start_roadnet::synth::{generate_city, CityConfig};
use start_serve::{Router, RouterConfig};
use start_traj::{
    build_benchmark, DetourConfig, PreprocessConfig, SimConfig, TrajDataset, Trajectory,
};

fn main() {
    // 1. A synthetic city and a congestion-aware taxi fleet (the substitute
    //    for the paper's proprietary BJ dataset — see DESIGN.md §1).
    println!("[1/6] generating city + trajectories...");
    let city = generate_city("Quickstart-City", &CityConfig::tiny());
    let sim = SimConfig { num_trajectories: 600, num_drivers: 12, ..Default::default() };
    let ds = TrajDataset::build(city, sim, &PreprocessConfig::default());
    println!("      {}", ds.table1_row());

    // 2. The START model: TPE-GAT over the road network + TAT-Enc. Configs
    //    are built through the validating builder — a typo in a dimension
    //    or head count is a `ConfigError` here, not a panic mid-training.
    println!("[2/6] building START...");
    let cfg = StartConfig::builder()
        .dim(32)
        .gat_heads(vec![2])
        .encoder_layers(2)
        .encoder_heads(2)
        .ffn_hidden(32)
        .build()
        .expect("quickstart config is valid");
    let mut model = StartModel::new(cfg, &ds.city.net, Some(&ds.transfer), None, 42);

    // 3. Self-supervised pre-training: span-masked recovery + contrastive.
    println!("[3/6] pre-training (span-mask + NT-Xent)...");
    let report = pretrain(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 2,
            batch_size: 8,
            max_steps_per_epoch: Some(10),
            ..Default::default()
        },
    );
    println!("      loss per epoch: {:?}", report.epoch_losses);

    // 4. Zero-shot similarity search on the detour benchmark, through the
    //    unified encoder facade (one entry point for every batch encode).
    println!("[4/6] zero-shot similarity search...");
    let bench = build_benchmark(&ds.city.net, ds.test(), 20, 100, &DetourConfig::default());
    let opts = EncodeOptions::default();
    let q = model.encoder().encode(&bench.queries, &opts).expect("encode queries");
    let db = model.encoder().encode(&bench.database, &opts).expect("encode database");
    let ranks = truth_ranks(&q, &db, |i| bench.truth(i));
    println!(
        "      MR {:.2}  HR@1 {:.2}  HR@5 {:.2}",
        mean_rank(&ranks),
        hit_ratio(&ranks, 1),
        hit_ratio(&ranks, 5)
    );

    // 5. Fine-tune for travel time estimation.
    println!("[5/6] fine-tuning for travel time estimation...");
    let head = fine_tune_eta(
        &mut model,
        ds.train(),
        &FineTuneConfig {
            epochs: 2,
            batch_size: 8,
            max_steps_per_epoch: Some(12),
            ..Default::default()
        },
    );
    let test: Vec<Trajectory> = ds.test().iter().take(100).cloned().collect();
    let truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();
    let preds = predict_eta(&model, &head, &test);
    let reg = regression_report(&truth, &preds);

    let mut t = Table::new("quickstart results (ETA)", &["MAE (s)", "MAPE (%)", "RMSE (s)"]);
    t.row(vec![f3(reg.mae), f3(reg.mape), f3(reg.rmse)]);
    t.print();

    // 6. Serve the trained model behind the sharded router: two replicas
    //    partitioned by trajectory fingerprint, each with micro-batched
    //    workers, a version-pinned embedding cache, and an online kNN
    //    endpoint over indexed trajectories. (`Router::publish` hot-swaps
    //    checkpoints into all replicas without dropping a reply.)
    println!("[6/6] serving embeddings online...");
    let router_cfg =
        RouterConfig::builder().replicas(2).build().expect("quickstart router config is valid");
    let router = Router::start(Arc::new(model), router_cfg);
    for (i, t) in ds.test().iter().take(50).enumerate() {
        router.index(i as u64, t).expect("index trajectory");
    }
    let neighbors = router.knn(&ds.test()[0], 3).expect("knn query");
    println!("      3-NN of test[0]: {neighbors:?}");
    let stats = router.shutdown();
    println!(
        "      served {} requests across {} replicas (cache hit rate {:.2})",
        stats.completed(),
        stats.replicas.len(),
        stats.cache_hit_rate()
    );
    println!("Done. See crates/bench/src/bin/ for the full per-table/per-figure harness.");
}
