//! Quickstart: build a synthetic city, simulate trajectories, pre-train
//! START self-supervised, and use the representations for three downstream
//! tasks — the paper's Figure 2 pipeline end to end in one file.
//!
//! Run: `cargo run --release --example quickstart`

use start_bench::{f3, Table};
use start_core::{
    fine_tune_eta, predict_eta, pretrain, FineTuneConfig, PretrainConfig, StartConfig, StartModel,
};
use start_eval::metrics::{hit_ratio, mean_rank, regression_report, truth_ranks};
use start_roadnet::synth::{generate_city, CityConfig};
use start_traj::{
    build_benchmark, DetourConfig, PreprocessConfig, SimConfig, TrajDataset, Trajectory,
};

fn main() {
    // 1. A synthetic city and a congestion-aware taxi fleet (the substitute
    //    for the paper's proprietary BJ dataset — see DESIGN.md §1).
    println!("[1/5] generating city + trajectories...");
    let city = generate_city("Quickstart-City", &CityConfig::tiny());
    let sim = SimConfig { num_trajectories: 600, num_drivers: 12, ..Default::default() };
    let ds = TrajDataset::build(city, sim, &PreprocessConfig::default());
    println!("      {}", ds.table1_row());

    // 2. The START model: TPE-GAT over the road network + TAT-Enc.
    println!("[2/5] building START...");
    let cfg = StartConfig {
        dim: 32,
        gat_layers: 1,
        gat_heads: vec![2],
        encoder_layers: 2,
        encoder_heads: 2,
        ffn_hidden: 32,
        ..Default::default()
    };
    let mut model = StartModel::new(cfg, &ds.city.net, Some(&ds.transfer), None, 42);

    // 3. Self-supervised pre-training: span-masked recovery + contrastive.
    println!("[3/5] pre-training (span-mask + NT-Xent)...");
    let report = pretrain(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 2,
            batch_size: 8,
            max_steps_per_epoch: Some(10),
            ..Default::default()
        },
    );
    println!("      loss per epoch: {:?}", report.epoch_losses);

    // 4. Zero-shot similarity search on the detour benchmark.
    println!("[4/5] zero-shot similarity search...");
    let bench = build_benchmark(&ds.city.net, ds.test(), 20, 100, &DetourConfig::default());
    let q = model.encode_trajectories(&bench.queries);
    let db = model.encode_trajectories(&bench.database);
    let ranks = truth_ranks(&q, &db, |i| bench.truth(i));
    println!(
        "      MR {:.2}  HR@1 {:.2}  HR@5 {:.2}",
        mean_rank(&ranks),
        hit_ratio(&ranks, 1),
        hit_ratio(&ranks, 5)
    );

    // 5. Fine-tune for travel time estimation.
    println!("[5/5] fine-tuning for travel time estimation...");
    let head = fine_tune_eta(
        &mut model,
        ds.train(),
        &FineTuneConfig {
            epochs: 2,
            batch_size: 8,
            max_steps_per_epoch: Some(12),
            ..Default::default()
        },
    );
    let test: Vec<Trajectory> = ds.test().iter().take(100).cloned().collect();
    let truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();
    let preds = predict_eta(&model, &head, &test);
    let reg = regression_report(&truth, &preds);

    let mut t = Table::new("quickstart results (ETA)", &["MAE (s)", "MAPE (%)", "RMSE (s)"]);
    t.row(vec![f3(reg.mae), f3(reg.mape), f3(reg.rmse)]);
    t.print();
    println!("Done. See crates/bench/src/bin/ for the full per-table/per-figure harness.");
}
