//! Cross-crate integration tests: the full START pipeline from synthetic
//! city to downstream metrics, exercising every crate together.
//!
//! The similarity/classification tests run at the same "quick" scale the
//! experiment harness uses (dim 48, 16x16 city) — smaller configurations
//! have too few distinct routes for ranking assertions to be meaningful.

use std::sync::Arc;

use start_bench::{bj_mini, ModelKind, Runner, Scale};
use start_core::{
    fine_tune_eta, predict_eta, pretrain, EncodeOptions, FineTuneConfig, PretrainConfig,
    StartConfig, StartModel,
};
use start_eval::metrics::{accuracy, hit_ratio, mean_rank, regression_report, truth_ranks};
use start_roadnet::synth::{generate_city, CityConfig};
use start_traj::{
    build_benchmark, DetourConfig, PreprocessConfig, SimConfig, TrajDataset, Trajectory,
};

/// A reduced quick scale so the integration suite stays fast.
fn test_scale() -> Scale {
    Scale { bj_trajectories: 1700, eval_subset: 150, num_queries: 30, ..Scale::quick() }
}

/// START's contrastive pre-training must keep the zero-shot representation
/// space well-conditioned for similarity search, while an MLM-only
/// Transformer collapses (the paper's anisotropy argument, Table II MR) —
/// and the detour ground truth must be findable.
#[test]
fn pretraining_improves_zero_shot_similarity_and_finds_detours() {
    let scale = test_scale();
    let ds = bj_mini(&scale);
    let nq = scale.num_queries;
    let bench = build_benchmark(&ds.city.net, ds.test(), nq, nq * 8, &DetourConfig::default());

    let rank_of = |runner: &Runner| {
        let q = runner.encode(&bench.queries);
        let db = runner.encode(&bench.database);
        truth_ranks(&q, &db, |i| bench.truth(i))
    };

    let mut start = Runner::build(&ModelKind::start(&scale), &ds, &scale, None);
    start.pretrain(&ds, &scale);
    let ranks = rank_of(&start);
    let mr_start = mean_rank(&ranks);

    let mut mlm = Runner::build(&ModelKind::Transformer, &ds, &scale, None);
    mlm.pretrain(&ds, &scale);
    let mr_mlm = mean_rank(&rank_of(&mlm));

    // Far better than random (expected MR for ~270 candidates is ~135)...
    assert!(mr_start < 60.0, "START MR {mr_start:.1} not far from random");
    assert!(hit_ratio(&ranks, 10) >= 0.45, "HR@10 too low: {}", hit_ratio(&ranks, 10));
    // ...and far better than the MLM-only Transformer baseline.
    assert!(
        mr_start < mr_mlm * 0.6,
        "START MR {mr_start:.1} should beat Transformer-MLM {mr_mlm:.1}"
    );
}

/// The fine-tuned classifier must beat majority-class accuracy on the
/// occupancy label.
#[test]
fn classifier_beats_majority_vote() {
    let scale = test_scale();
    let ds = bj_mini(&scale);
    let mut runner = Runner::build(&ModelKind::start(&scale), &ds, &scale, None);
    runner.pretrain(&ds, &scale);
    let labels: Vec<usize> = ds.train().iter().map(|t| t.occupied as usize).collect();
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let test_labels: Vec<usize> = test.iter().map(|t| t.occupied as usize).collect();
    let probs = runner.classify(ds.train(), &labels, 2, &test, &scale);
    let acc = accuracy(&test_labels, &probs);

    let pos = test_labels.iter().filter(|&&l| l == 1).count() as f32 / test_labels.len() as f32;
    let majority = pos.max(1.0 - pos);
    assert!(acc > majority - 0.02, "accuracy {acc:.3} should approach/beat majority {majority:.3}");
}

fn tiny_dataset(n: usize, seed: u64) -> TrajDataset {
    let city = generate_city("it", &CityConfig { width: 8, height: 8, ..CityConfig::tiny() });
    let sim = SimConfig { num_trajectories: n, num_drivers: 8, seed, ..Default::default() };
    TrajDataset::build(city, sim, &PreprocessConfig::default())
}

fn tiny_model(ds: &TrajDataset, seed: u64) -> StartModel {
    let cfg = StartConfig::builder()
        .dim(32)
        .gat_heads(vec![2])
        .encoder_layers(2)
        .encoder_heads(2)
        .ffn_hidden(32)
        .build()
        .expect("integration-test config is valid");
    StartModel::new(cfg, &ds.city.net, Some(&ds.transfer), None, seed)
}

/// Fine-tuned ETA must beat the constant mean-predictor baseline.
#[test]
fn eta_fine_tuning_beats_mean_predictor() {
    let ds = tiny_dataset(400, 3);
    let mut model = tiny_model(&ds, 4);
    pretrain(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 2,
            batch_size: 8,
            max_steps_per_epoch: Some(15),
            ..Default::default()
        },
    );
    let head = fine_tune_eta(
        &mut model,
        ds.train(),
        &FineTuneConfig {
            epochs: 3,
            batch_size: 8,
            max_steps_per_epoch: Some(25),
            ..Default::default()
        },
    );
    let test: Vec<Trajectory> = ds.test().to_vec();
    let truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();
    let preds = predict_eta(&model, &head, &test);
    let reg = regression_report(&truth, &preds);

    let mean = truth.iter().sum::<f32>() / truth.len() as f32;
    let mean_preds = vec![mean; truth.len()];
    let mean_reg = regression_report(&truth, &mean_preds);
    assert!(
        reg.mae < mean_reg.mae,
        "fine-tuned MAE {:.1}s should beat mean-predictor {:.1}s",
        reg.mae,
        mean_reg.mae
    );
}

/// Checkpointing round-trips through the weight codec: a restored model
/// produces bit-identical embeddings.
#[test]
fn checkpoint_roundtrip_preserves_embeddings() {
    let ds = tiny_dataset(200, 7);
    let mut model = tiny_model(&ds, 8);
    pretrain(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 1,
            batch_size: 8,
            max_steps_per_epoch: Some(5),
            ..Default::default()
        },
    );
    let blob = start_nn::serialize::save_params(&model.store);
    let opts = EncodeOptions::default();
    let before = model.encoder().encode(&ds.test()[..5], &opts).unwrap();

    let mut restored = tiny_model(&ds, 999); // different init seed
    let loaded = start_nn::serialize::load_params(&mut restored.store, &blob).unwrap();
    assert_eq!(loaded, restored.store.len(), "all tensors must match by name+shape");
    let after = restored.encoder().encode(&ds.test()[..5], &opts).unwrap();
    assert_eq!(before, after);
}

/// The online serving path produces the same bits as the offline encoder,
/// end to end across crates: dataset -> pre-train -> serve -> kNN.
#[test]
fn serving_matches_offline_encoding_end_to_end() {
    let ds = tiny_dataset(120, 11);
    let mut model = tiny_model(&ds, 12);
    pretrain(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 1,
            batch_size: 8,
            max_steps_per_epoch: Some(3),
            ..Default::default()
        },
    );
    let queries: Vec<Trajectory> = ds.test().iter().take(10).cloned().collect();
    let offline = model.encoder().encode(&queries, &EncodeOptions::default()).unwrap();

    let router = start_serve::Router::start(
        Arc::new(model),
        start_serve::RouterConfig::builder()
            .replicas(2)
            .serve(start_serve::ServeConfig::builder().workers(2).build().unwrap())
            .build()
            .unwrap(),
    );
    let served = router.encode(&queries).unwrap();
    for (s, o) in served.iter().zip(&offline) {
        let same = s.iter().zip(o).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "served embedding diverged from the offline encoder");
    }
    for (i, q) in queries.iter().enumerate() {
        router.index(i as u64, q).unwrap();
    }
    let hits = router.knn(&queries[2], 1).unwrap();
    assert_eq!(hits[0].id, 2, "self-query must be its own nearest neighbour");
    assert_eq!(hits[0].distance, 0.0);
    let stats = router.shutdown();
    assert!(stats.completed() >= 21, "10 encodes + 10 index + 1 knn");
}
