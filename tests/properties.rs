//! Property-based tests (proptest) over the core data structures and
//! invariants that the START pipeline relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use start_roadnet::synth::{generate_city, CityConfig};
use start_roadnet::{dijkstra, yen_ksp, SegmentId};
use start_traj::{choose_span_mask, Augmentation, TrajView, Trajectory, TravelMode};

fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    // Random length, random (not necessarily connected) roads, sorted times.
    (6usize..60, any::<u64>()).prop_map(|(len, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut t = 1000i64;
        let mut roads = Vec::with_capacity(len);
        let mut times = Vec::with_capacity(len);
        for _ in 0..len {
            roads.push(SegmentId(rng.gen_range(0..500)));
            times.push(t);
            t += rng.gen_range(5..300);
        }
        Trajectory {
            roads,
            times,
            driver: rng.gen_range(0..10),
            occupied: rng.gen(),
            mode: TravelMode::CarTaxi,
            arrival: t,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Span masking masks roughly the requested ratio and never exceeds len.
    #[test]
    fn span_mask_ratio_bounded(len in 1usize..300, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = choose_span_mask(len, 2, 0.15, &mut rng);
        prop_assert_eq!(mask.len(), len);
        let m = mask.iter().filter(|&&b| b).count();
        prop_assert!(m >= 1);
        // Never much above the requested ratio (span may overshoot by < span_len).
        prop_assert!(m <= (len as f64 * 0.15).ceil() as usize + 2);
    }

    /// Every augmentation outputs a structurally valid view: matching
    /// lengths, sorted times, roads drawn from the original.
    #[test]
    fn augmentations_preserve_view_invariants(traj in arb_trajectory(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = vec![30.0f32; 500];
        for aug in Augmentation::ALL {
            let v: TrajView = aug.apply(&traj, &hist, &mut rng);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.roads.len(), v.times.len());
            prop_assert_eq!(v.roads.len(), v.masked.len());
            prop_assert!(v.times.windows(2).all(|w| w[1] >= w[0]), "{aug:?} unsorted times");
            prop_assert!(v.roads.iter().all(|r| traj.roads.contains(r)), "{aug:?} invented roads");
            prop_assert!(v.len() <= traj.len());
        }
    }

    /// Trimming keeps a contiguous sub-slice anchored at origin or destination.
    #[test]
    fn trim_is_anchored_subslice(traj in arb_trajectory(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = Augmentation::Trim.apply(&traj, &[], &mut rng);
        let anchored_front = v.roads[..] == traj.roads[..v.len()];
        let anchored_back = v.roads[..] == traj.roads[traj.len() - v.len()..];
        prop_assert!(anchored_front || anchored_back);
    }

    /// Validated trajectories survive a trim+shift round of augmentation
    /// with their departure unchanged (shift) or moved to a later road (trim).
    #[test]
    fn temporal_shift_preserves_departure(traj in arb_trajectory(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = vec![45.0f32; 500];
        let v = Augmentation::TemporalShift.apply(&traj, &hist, &mut rng);
        prop_assert_eq!(v.times[0], traj.departure());
        prop_assert_eq!(v.roads, traj.roads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Yen's k-shortest paths on a real city: sorted by cost, all simple,
    /// all distinct, all connected, and the first equals Dijkstra's optimum.
    #[test]
    fn yen_paths_are_sorted_simple_distinct(seed in any::<u64>()) {
        let city = generate_city("prop", &CityConfig::tiny());
        let n = city.net.num_segments() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a = SegmentId(rng.gen_range(0..n));
        let b = SegmentId(rng.gen_range(0..n));
        prop_assume!(a != b);
        let cost = |_: SegmentId, to: SegmentId| city.net.segment(to).length_m as f64;
        let paths = yen_ksp(&city.net, a, b, 4, cost);
        prop_assume!(!paths.is_empty());

        // First equals Dijkstra.
        let best = dijkstra(&city.net, a, b, cost).expect("reachable");
        prop_assert_eq!(&paths[0].segments, &best.segments);

        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9, "not sorted");
            prop_assert_ne!(&w[0].segments, &w[1].segments);
        }
        for p in &paths {
            prop_assert!(city.net.is_path(&p.segments), "disconnected path");
            let set: std::collections::HashSet<_> = p.segments.iter().collect();
            prop_assert_eq!(set.len(), p.segments.len(), "loop in path");
            prop_assert_eq!(p.segments[0], a);
            prop_assert_eq!(*p.segments.last().unwrap(), b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The weight codec round-trips arbitrary parameter stores exactly.
    #[test]
    fn weight_codec_roundtrip(seed in any::<u64>(), n_tensors in 1usize..6) {
        use start_nn::params::{Init, ParamStore};
        use start_nn::serialize::{load_params, save_params};
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut store = ParamStore::new();
        let mut shapes = Vec::new();
        for i in 0..n_tensors {
            let r = rng.gen_range(1..8);
            let c = rng.gen_range(1..8);
            shapes.push((r, c));
            store.param(format!("t{i}"), r, c, Init::Normal(1.0), &mut rng);
        }
        let blob = save_params(&store);

        let mut restored = ParamStore::new();
        for (i, (r, c)) in shapes.iter().enumerate() {
            restored.param(format!("t{i}"), *r, *c, Init::Zeros, &mut rng);
        }
        let loaded = load_params(&mut restored, &blob).unwrap();
        prop_assert_eq!(loaded, n_tensors);
        for (a, b) in store.iter().zip(restored.iter()) {
            prop_assert_eq!(a.1.data(), b.1.data());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Classic similarity measures: identity is zero, symmetry holds, and
    /// DTW/Fréchet respect simple lower bounds.
    #[test]
    fn classic_measures_axioms(seed in any::<u64>(), n in 2usize..20, m in 2usize..20) {
        use start_eval::classic::{dtw, edr, frechet, lcss};
        use start_roadnet::Point;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut mk = |len: usize| -> Vec<Point> {
            (0..len).map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0))).collect()
        };
        let a = mk(n);
        let b = mk(m);
        prop_assert!(dtw(&a, &a).abs() < 1e-9);
        prop_assert!(frechet(&a, &a).abs() < 1e-9);
        prop_assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-9);
        prop_assert!((frechet(&a, &b) - frechet(&b, &a)).abs() < 1e-9);
        prop_assert!((edr(&a, &b, 10.0) - edr(&b, &a, 10.0)).abs() < 1e-9);
        // Fréchet is at least the endpoint distances' max-min bound.
        let d_start = a[0].distance(b[0]);
        let d_end = a[n - 1].distance(b[m - 1]);
        prop_assert!(frechet(&a, &b) + 1e-9 >= d_start.max(d_end) - 1e-9 || frechet(&a, &b) >= d_start.min(d_end) - 1e-9);
        // LCSS/EDR are normalized distances in [0, 1].
        for v in [lcss(&a, &b, 25.0), edr(&a, &b, 25.0)] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
