//! Offline stand-in for the `crossbeam::scope` API, layered over
//! `std::thread::scope` (which supplanted crossbeam's scoped threads in
//! Rust 1.63). Only the surface this workspace uses is provided:
//!
//! ```ignore
//! crossbeam::scope(|s| {
//!     let h = s.spawn(|_| work());
//!     h.join().expect("worker panicked")
//! })
//! .expect("scope failed");
//! ```
//!
//! As in crossbeam, `scope` returns `Err` when a worker panic propagates out
//! of the closure instead of unwinding through the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use crate::{scope, Scope, ScopedJoinHandle};

    /// Mirror of `crossbeam::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;
}

/// Scope handle passed to the `scope` closure; spawns scoped workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle of a scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker. The closure's argument mirrors crossbeam's nested-scope
    /// parameter; every call site in this workspace ignores it (`|_| ...`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&())) }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope that joins all spawned workers before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_run_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let r = crate::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().expect("worker panicked")
        });
        assert!(r.is_err());
    }
}
