//! Offline stand-in for the subset of the `bytes` crate the weight codec
//! uses: `BytesMut` for little-endian append, `Bytes` as a cheaply clonable
//! frozen buffer, and the `Buf`/`BufMut` cursor traits.

use std::ops::Deref;
use std::sync::Arc;

/// Write-side cursor operations (little-endian only, as used here).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Read-side cursor operations over a shrinking window.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Growable byte buffer; freeze into an immutable [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.data) }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable, cheaply clonable byte buffer; derefs to `[u8]`.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: Arc::from(data) }
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r, b"xy");
    }
}
