//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng` (here xoshiro256++ seeded via SplitMix64), the `Rng`
//! sampling methods `gen`/`gen_range`/`gen_bool`, `SeedableRng::seed_from_u64`
//! and the `SliceRandom` helpers `shuffle`/`choose`.
//!
//! The build environment has no registry access, so the workspace vendors the
//! APIs it needs rather than pulling the real crates. The generator is a
//! high-quality deterministic PRNG; streams differ from upstream `rand`, which
//! is fine because every consumer seeds explicitly and only relies on
//! within-build determinism.

pub mod rngs;
pub mod seq;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from a `u64` seed (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution:
/// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Primitives that support uniform sampling inside a half-open or inclusive
/// range (the `SampleUniform` analogue).
pub trait UniformPrim: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformPrim for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range called with an empty range");
                (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformPrim for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _: bool, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl UniformPrim for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _: bool, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformPrim> SampleRange<T> for std::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: UniformPrim> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T: UniformPrim, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0..=3u32);
            assert!(u <= 3);
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let p = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&p));
        }
    }
}
