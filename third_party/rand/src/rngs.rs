//! The workspace's `StdRng`: xoshiro256++ with SplitMix64 seed expansion.

use crate::{RngCore, SeedableRng};

/// Deterministic, seedable generator with the same role as `rand::rngs::StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = splitmix64(&mut sm);
        }
        Self { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}
