//! Offline stand-in for `serde`. The workspace derives `Serialize` /
//! `Deserialize` on config and data types for forward compatibility but never
//! drives an actual serializer (checkpointing uses the hand-rolled binary
//! codec in `start-nn`). The traits are therefore marker-only, blanket
//! implemented for every type, and the derives are no-ops.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
