//! Offline stand-in for the subset of the `criterion` API the benches use.
//! It keeps the same structure (groups, benchmark ids, throughput metadata)
//! but replaces the statistical engine with a plain min/mean timer, printing
//! one line per benchmark.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput metadata attached to a group (reported, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    min: Duration,
    mean: Duration,
}

impl Bencher {
    /// Run the routine `samples` times (after one warm-up) and record
    /// min/mean wall-clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.min = min;
        self.mean = total / self.samples as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b =
            Bencher { samples: self.sample_size, min: Duration::ZERO, mean: Duration::ZERO };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b =
            Bencher { samples: self.sample_size, min: Duration::ZERO, mean: Duration::ZERO };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / b.mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if b.mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / b.mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:?}, min {:?} over {} samples{}",
            self.name, id.id, b.mean, b.min, self.sample_size, rate
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
