//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` test macro with `#![proptest_config(...)]`, range/tuple
//! strategies, `any::<T>()`, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! each test runs `cases` deterministic cases from a seed derived from the
//! test name. That retains the regression value of the properties while
//! keeping the workspace buildable without registry access.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, Standard, UniformPrim};

pub mod prelude;

#[doc(hidden)]
pub use rand as __rand;

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Outcome of one generated case: hard failure or rejected assumption.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

/// A value generator. `generate` replaces proptest's value-tree machinery.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, func }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.func)(self.strategy.generate(rng))
    }
}

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate any value of `T` (standard distribution).
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

impl<T: UniformPrim> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: UniformPrim> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Namespaced strategies mirroring `proptest::prop` (`collection::vec`,
/// `sample::select`).
pub mod prop {
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generate a vector of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy that picks one of a fixed set of options.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Choose uniformly among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

#[doc(hidden)]
pub fn run_case<F>(f: F) -> Result<(), TestCaseError>
where
    F: FnOnce() -> Result<(), TestCaseError>,
{
    f()
}

#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    let mut seed = 0xCAFE_F00D_D15E_A5E5u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
    }
    seed
}

/// Define deterministic property tests. Mirrors proptest's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::
                seed_from_u64($crate::seed_for(stringify!($name)));
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome = $crate::run_case(|| {
                    $body
                    ::std::result::Result::Ok(())
                });
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}/{}: {msg}", config.cases)
                    }
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// Assert inside a `proptest!` body; fails the current case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l != *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {:?} != {:?}",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l != *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}: {:?} != {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {:?} == {:?}",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}: {:?} == {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Discard the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
