//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::{any, prop, Any, Map, ProptestConfig, Strategy, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
