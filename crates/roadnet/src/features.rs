//! Road feature matrix `F_V` (§III-A, §IV-A).
//!
//! The paper feeds six feature groups into the first TPE-GAT layer: road
//! type, length, number of lanes, maximum travel speed, in-degree and
//! out-degree. Road type is one-hot encoded; the scalar features are
//! z-normalized over the network so the GAT input is well conditioned.

use crate::graph::{RoadKind, RoadNetwork};

/// Dense `(num_segments, dim)` feature matrix, independent of `start-nn`
/// so this crate stays a pure-graph dependency.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Number of scalar (non-one-hot) features.
const NUM_SCALAR: usize = 5; // length, lanes, max speed, in-degree, out-degree

/// Build the paper's six-feature road representation:
/// one-hot road type (6) + z-scored [length, lanes, max_speed, in_deg, out_deg].
pub fn road_features(net: &RoadNetwork) -> FeatureMatrix {
    let n = net.num_segments();
    let cols = RoadKind::ALL.len() + NUM_SCALAR;
    let mut data = vec![0.0f32; n * cols];

    // Collect raw scalars first for normalization.
    let mut raw = vec![[0.0f32; NUM_SCALAR]; n];
    for id in net.ids() {
        let s = net.segment(id);
        raw[id.index()] = [
            s.length_m,
            s.lanes as f32,
            s.max_speed_kmh,
            net.in_degree(id) as f32,
            net.out_degree(id) as f32,
        ];
    }
    let mut mean = [0.0f32; NUM_SCALAR];
    let mut var = [0.0f32; NUM_SCALAR];
    for row in &raw {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n.max(1) as f32;
    }
    for row in &raw {
        for ((vv, v), m) in var.iter_mut().zip(row).zip(&mean) {
            *vv += (v - m) * (v - m);
        }
    }
    let std: Vec<f32> = var.iter().map(|v| (v / n.max(1) as f32).sqrt().max(1e-6)).collect();

    for id in net.ids() {
        let i = id.index();
        let row = &mut data[i * cols..(i + 1) * cols];
        row[net.segment(id).kind.one_hot_index()] = 1.0;
        for k in 0..NUM_SCALAR {
            row[RoadKind::ALL.len() + k] = (raw[i][k] - mean[k]) / std[k];
        }
    }
    FeatureMatrix { data, rows: n, cols }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Point, RoadSegment};

    fn net_with(kinds: &[RoadKind]) -> RoadNetwork {
        let mut net = RoadNetwork::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let start = Point::new(i as f64 * 100.0, 0.0);
            let end = Point::new((i + 1) as f64 * 100.0, 0.0);
            net.add_segment(RoadSegment {
                kind,
                length_m: 100.0 + i as f32 * 50.0,
                lanes: kind.default_lanes(),
                max_speed_kmh: kind.default_speed_kmh(),
                start,
                end,
            });
        }
        for i in 0..kinds.len() as u32 - 1 {
            net.connect(crate::graph::SegmentId(i), crate::graph::SegmentId(i + 1));
        }
        net
    }

    #[test]
    fn one_hot_and_shape() {
        let net = net_with(&[RoadKind::Primary, RoadKind::Residential, RoadKind::Trunk]);
        let f = road_features(&net);
        assert_eq!(f.rows(), 3);
        assert_eq!(f.cols(), 11);
        assert_eq!(f.row(0)[RoadKind::Primary.one_hot_index()], 1.0);
        assert_eq!(f.row(1)[RoadKind::Residential.one_hot_index()], 1.0);
        // Exactly one hot per row.
        for r in 0..3 {
            let hot: f32 = f.row(r)[..6].iter().sum();
            assert_eq!(hot, 1.0);
        }
    }

    #[test]
    fn scalars_are_standardized() {
        let net =
            net_with(&[RoadKind::Primary, RoadKind::Primary, RoadKind::Primary, RoadKind::Primary]);
        let f = road_features(&net);
        // Column 6 is z-scored length: mean ~0.
        let mean: f32 = (0..4).map(|r| f.row(r)[6]).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }
}
