//! `start-roadnet`: the road-network substrate of the START reproduction.
//!
//! Provides Definition 1 of the paper — the directed road-segment graph
//! `G = (V, E, F_V, A)` — plus everything the framework and its experiments
//! need from the network side:
//!
//! - [`graph::RoadNetwork`] — directed segment graph with geometry;
//! - [`features::road_features`] — the six-feature matrix `F_V` fed to
//!   TPE-GAT (road type, length, lanes, max speed, in/out degree);
//! - [`synth`] — the synthetic Beijing-like / Porto-like city generator that
//!   substitutes for the proprietary OSM + taxi datasets (DESIGN.md §1);
//! - [`transfer::TransferMatrix`] — empirical transfer probabilities (Eq. 2),
//!   the travel-semantics signal of TPE-GAT;
//! - [`shortest_path`] — Dijkstra and Yen's k-shortest paths [24] for route
//!   choice and detour ground-truth generation (§IV-D4);
//! - [`node2vec`] — the baseline road-embedding algorithm [17] used by PIM,
//!   Toast and the `w/ Node2vec` ablation.

pub mod features;
pub mod graph;
pub mod node2vec;
pub mod shortest_path;
pub mod synth;
pub mod transfer;

pub use features::{road_features, FeatureMatrix};
pub use graph::{Point, RoadKind, RoadNetwork, RoadSegment, SegmentId};
pub use node2vec::{node2vec, Node2VecConfig, NodeEmbeddings};
pub use shortest_path::{dijkstra, yen_ksp, Path};
pub use synth::{beijing_like, generate_city, largest_scc, porto_like, City, CityConfig};
pub use transfer::TransferMatrix;
