//! Road transfer-probability matrix (Eq. 2) — the travel-semantics signal
//! that turns a plain GAT into the paper's TPE-GAT.
//!
//! `p_trans(i, j) = count(v_i -> v_j) / count(v_i)` over the trajectory
//! dataset, where `count(v_i)` is the number of times road `v_i` appears.
//! Stored sparsely: only edges observed in trajectories have entries.

use std::collections::HashMap;

use crate::graph::SegmentId;

/// Sparse empirical transfer probabilities between adjacent road segments.
#[derive(Debug, Clone, Default)]
pub struct TransferMatrix {
    /// Visit count per segment.
    visits: Vec<u64>,
    /// Directed transition counts.
    transitions: HashMap<(u32, u32), u64>,
}

impl TransferMatrix {
    /// Accumulate counts from road-id sequences (the trajectory dataset `D`).
    pub fn from_sequences<'a>(
        num_segments: usize,
        sequences: impl IntoIterator<Item = &'a [SegmentId]>,
    ) -> Self {
        let mut m = Self { visits: vec![0; num_segments], transitions: HashMap::new() };
        for seq in sequences {
            m.add_sequence(seq);
        }
        m
    }

    pub fn add_sequence(&mut self, seq: &[SegmentId]) {
        for &s in seq {
            self.visits[s.index()] += 1;
        }
        for w in seq.windows(2) {
            *self.transitions.entry((w[0].0, w[1].0)).or_insert(0) += 1;
        }
    }

    /// `p_trans(from, to)` per Eq. (2); 0 when `from` was never visited.
    pub fn probability(&self, from: SegmentId, to: SegmentId) -> f32 {
        let visits = self.visits[from.index()];
        if visits == 0 {
            return 0.0;
        }
        let count = self.transitions.get(&(from.0, to.0)).copied().unwrap_or(0);
        count as f32 / visits as f32
    }

    /// Raw visit count of a segment (Fig. 1(a) statistics).
    pub fn visit_count(&self, seg: SegmentId) -> u64 {
        self.visits[seg.index()]
    }

    /// Segments never covered by any trajectory (the paper drops these, §IV-A).
    pub fn uncovered(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.visits.iter().enumerate().filter(|(_, &v)| v == 0).map(|(i, _)| SegmentId(i as u32))
    }

    pub fn num_observed_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Gini coefficient of the visit distribution — the skew statistic behind
    /// Fig. 1(a): arterials dominate visit counts.
    pub fn visit_gini(&self) -> f64 {
        let mut v: Vec<f64> = self.visits.iter().map(|&c| c as f64).collect();
        v.sort_by(f64::total_cmp);
        let n = v.len() as f64;
        let sum: f64 = v.iter().sum();
        if sum == 0.0 {
            return 0.0;
        }
        let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i as f64 + 1.0) * x).sum();
        (2.0 * weighted) / (n * sum) - (n + 1.0) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u32]) -> Vec<SegmentId> {
        ids.iter().map(|&i| SegmentId(i)).collect()
    }

    #[test]
    fn probabilities_match_counts() {
        let a = seq(&[0, 1, 2]);
        let b = seq(&[0, 1, 3]);
        let c = seq(&[0, 2, 3]);
        let m = TransferMatrix::from_sequences(4, [a.as_slice(), b.as_slice(), c.as_slice()]);
        // Road 0 visited 3 times; 0->1 twice, 0->2 once.
        assert!((m.probability(SegmentId(0), SegmentId(1)) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.probability(SegmentId(0), SegmentId(2)) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.probability(SegmentId(0), SegmentId(3)), 0.0);
        assert_eq!(m.visit_count(SegmentId(3)), 2);
    }

    #[test]
    fn unvisited_road_has_zero_probability() {
        let m = TransferMatrix::from_sequences(3, std::iter::empty::<&[SegmentId]>());
        assert_eq!(m.probability(SegmentId(0), SegmentId(1)), 0.0);
        assert_eq!(m.uncovered().count(), 3);
    }

    #[test]
    fn gini_zero_for_uniform_visits() {
        let a = seq(&[0]);
        let b = seq(&[1]);
        let c = seq(&[2]);
        let m = TransferMatrix::from_sequences(3, [a.as_slice(), b.as_slice(), c.as_slice()]);
        assert!(m.visit_gini().abs() < 1e-9);
    }

    #[test]
    fn gini_grows_with_skew() {
        let hot: Vec<SegmentId> = std::iter::repeat(SegmentId(0)).take(99).collect();
        let cold = seq(&[1]);
        let m = TransferMatrix::from_sequences(2, [hot.as_slice(), cold.as_slice()]);
        assert!(m.visit_gini() > 0.4, "gini = {}", m.visit_gini());
    }
}
