//! node2vec [17]: biased second-order random walks + skip-gram with negative
//! sampling. Used by the PIM and Toast baselines and by the `w/ Node2vec`
//! ablation of Fig. 7 — the road-embedding method the paper argues TPE-GAT
//! improves upon.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{RoadNetwork, SegmentId};

/// node2vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    pub dim: usize,
    pub walks_per_node: usize,
    pub walk_length: usize,
    pub window: usize,
    /// Return parameter `p`: high p discourages revisiting the previous node.
    pub p: f64,
    /// In-out parameter `q`: low q encourages exploration (DFS-like).
    pub q: f64,
    pub negatives: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            walks_per_node: 6,
            walk_length: 24,
            window: 4,
            p: 1.0,
            q: 0.5,
            negatives: 4,
            epochs: 2,
            lr: 0.025,
            seed: 17,
        }
    }
}

/// Learned road embeddings: `(num_segments, dim)` row-major.
#[derive(Debug, Clone)]
pub struct NodeEmbeddings {
    pub dim: usize,
    data: Vec<f32>,
}

impl NodeEmbeddings {
    pub fn vector(&self, seg: SegmentId) -> &[f32] {
        &self.data[seg.index() * self.dim..(seg.index() + 1) * self.dim]
    }

    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Cosine similarity between two node vectors.
    pub fn cosine(&self, a: SegmentId, b: SegmentId) -> f32 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-12)
    }
}

/// Generate one biased walk starting at `start`.
fn biased_walk(
    net: &RoadNetwork,
    start: SegmentId,
    length: usize,
    p: f64,
    q: f64,
    rng: &mut StdRng,
) -> Vec<SegmentId> {
    let mut walk = Vec::with_capacity(length);
    walk.push(start);
    while walk.len() < length {
        let cur = *walk.last().expect("non-empty");
        let neighbors = net.successors(cur);
        if neighbors.is_empty() {
            break;
        }
        let next = if walk.len() == 1 {
            neighbors[rng.gen_range(0..neighbors.len())]
        } else {
            let prev = walk[walk.len() - 2];
            // Second-order bias: 1/p to return, 1 if next is adjacent to
            // prev, 1/q otherwise.
            let weights: Vec<f64> = neighbors
                .iter()
                .map(|&nb| {
                    if nb == prev {
                        1.0 / p
                    } else if net.successors(prev).contains(&nb) {
                        1.0
                    } else {
                        1.0 / q
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = neighbors[neighbors.len() - 1];
            for (&nb, w) in neighbors.iter().zip(&weights) {
                if draw < *w {
                    chosen = nb;
                    break;
                }
                draw -= w;
            }
            chosen
        };
        walk.push(next);
    }
    walk
}

/// Train node2vec embeddings over a road network.
pub fn node2vec(net: &RoadNetwork, cfg: &Node2VecConfig) -> NodeEmbeddings {
    let n = net.num_segments();
    let dim = cfg.dim;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Input (center) and output (context) embeddings.
    let bound = 0.5 / dim as f32;
    let mut emb: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-bound..bound)).collect();
    let mut ctx: Vec<f32> = vec![0.0; n * dim];

    // Pre-generate walks.
    let mut walks = Vec::with_capacity(n * cfg.walks_per_node);
    for _ in 0..cfg.walks_per_node {
        for start in net.ids() {
            walks.push(biased_walk(net, start, cfg.walk_length, cfg.p, cfg.q, &mut rng));
        }
    }

    let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
    let mut grad_center = vec![0.0f32; dim];
    for epoch in 0..cfg.epochs {
        let lr = cfg.lr * (1.0 - epoch as f32 / cfg.epochs as f32).max(0.1);
        for walk in &walks {
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    grad_center.fill(0.0);
                    // Positive + negative samples, standard SGNS update.
                    for neg in 0..=cfg.negatives {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            (SegmentId(rng.gen_range(0..n) as u32), 0.0f32)
                        };
                        let (c0, t0) = (center.index() * dim, target.index() * dim);
                        let dot: f32 = (0..dim).map(|d| emb[c0 + d] * ctx[t0 + d]).sum();
                        let g = (sigmoid(dot) - label) * lr;
                        for d in 0..dim {
                            grad_center[d] += g * ctx[t0 + d];
                            ctx[t0 + d] -= g * emb[c0 + d];
                        }
                    }
                    let c0 = center.index() * dim;
                    for d in 0..dim {
                        emb[c0 + d] -= grad_center[d];
                    }
                }
            }
        }
    }
    NodeEmbeddings { dim, data: emb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_city, CityConfig};

    #[test]
    fn walks_follow_edges() {
        let city = generate_city("tiny", &CityConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        for start in city.net.ids().take(10) {
            let walk = biased_walk(&city.net, start, 12, 1.0, 0.5, &mut rng);
            assert!(city.net.is_path(&walk), "walk leaves the graph");
        }
    }

    #[test]
    fn adjacent_roads_more_similar_than_distant() {
        let city = generate_city("tiny", &CityConfig::tiny());
        let cfg = Node2VecConfig { dim: 32, epochs: 2, ..Default::default() };
        let emb = node2vec(&city.net, &cfg);
        assert_eq!(emb.num_nodes(), city.net.num_segments());

        // Average similarity of connected pairs should exceed that of random
        // distant pairs — the basic locality property of node2vec.
        let mut rng = StdRng::seed_from_u64(9);
        let mut adj_sim = 0.0;
        let mut adj_n = 0;
        for id in city.net.ids() {
            for &next in city.net.successors(id) {
                adj_sim += emb.cosine(id, next);
                adj_n += 1;
            }
        }
        adj_sim /= adj_n as f32;
        let n = city.net.num_segments();
        let mut rand_sim = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let a = SegmentId(rng.gen_range(0..n) as u32);
            let b = SegmentId(rng.gen_range(0..n) as u32);
            rand_sim += emb.cosine(a, b);
        }
        rand_sim /= trials as f32;
        assert!(
            adj_sim > rand_sim + 0.05,
            "adjacent {adj_sim} vs random {rand_sim}: embeddings not local"
        );
    }
}
