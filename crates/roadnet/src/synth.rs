//! Synthetic city generator — the substitution for the OSM extracts of
//! Beijing and Porto (see DESIGN.md §1 and §4).
//!
//! Cities are grids of intersections with a road-kind hierarchy (arterials
//! every few blocks, a trunk ring, residential fill), each physical road
//! realized as two directed segments. The Porto-like variant removes a
//! coastal corner and random interior roads to produce a *heterogeneous*
//! network, which is what the cross-city transfer experiment (Table III)
//! needs. After edits the network is reduced to its largest strongly
//! connected component so every OD pair used by the simulator is routable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Point, RoadKind, RoadNetwork, RoadSegment, SegmentId};

/// Configuration for the grid-city generator.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Intersections along x.
    pub width: usize,
    /// Intersections along y.
    pub height: usize,
    /// Block edge length in meters.
    pub spacing_m: f64,
    /// Every n-th row/column is an arterial (Primary).
    pub arterial_every: usize,
    /// Fraction of interior physical roads randomly removed.
    pub removal_rate: f64,
    /// Remove intersections with `x_idx + y_idx < cut` (the Porto "coast").
    pub corner_cut: usize,
    pub seed: u64,
}

impl CityConfig {
    /// A Beijing-like city: large regular grid, trunk ring, dense arterials.
    pub fn beijing_like() -> Self {
        Self {
            width: 16,
            height: 16,
            spacing_m: 250.0,
            arterial_every: 4,
            removal_rate: 0.0,
            corner_cut: 0,
            seed: 20151101,
        }
    }

    /// A Porto-like city: smaller, irregular, with a coastal cut.
    pub fn porto_like() -> Self {
        Self {
            width: 12,
            height: 10,
            spacing_m: 200.0,
            arterial_every: 3,
            removal_rate: 0.12,
            corner_cut: 6,
            seed: 20130701,
        }
    }

    /// A tiny city for unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            width: 5,
            height: 5,
            spacing_m: 200.0,
            arterial_every: 2,
            removal_rate: 0.0,
            corner_cut: 0,
            seed: 7,
        }
    }
}

/// A generated city: a named road network.
#[derive(Debug, Clone)]
pub struct City {
    pub name: String,
    pub net: RoadNetwork,
}

/// Generate a city from a config.
pub fn generate_city(name: &str, cfg: &CityConfig) -> City {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (w, h) = (cfg.width, cfg.height);
    let alive = |x: usize, y: usize| -> bool { x + y >= cfg.corner_cut };

    // Physical roads between adjacent alive intersections.
    struct Physical {
        a: (usize, usize),
        b: (usize, usize),
        kind: RoadKind,
    }
    let mut physicals = Vec::new();
    let kind_for = |x0: usize, y0: usize, x1: usize, y1: usize| -> RoadKind {
        let on_ring = |x: usize, y: usize| x == 0 || y == 0 || x == w - 1 || y == h - 1;
        if on_ring(x0, y0) && on_ring(x1, y1) {
            RoadKind::Trunk
        } else if (x0 == x1 && x0.is_multiple_of(cfg.arterial_every))
            || (y0 == y1 && y0.is_multiple_of(cfg.arterial_every))
        {
            RoadKind::Primary
        } else if (x0 == x1 && x0.is_multiple_of(2)) || (y0 == y1 && y0.is_multiple_of(2)) {
            RoadKind::Secondary
        } else {
            RoadKind::Residential
        }
    };
    for y in 0..h {
        for x in 0..w {
            if !alive(x, y) {
                continue;
            }
            if x + 1 < w && alive(x + 1, y) {
                physicals.push(Physical {
                    a: (x, y),
                    b: (x + 1, y),
                    kind: kind_for(x, y, x + 1, y),
                });
            }
            if y + 1 < h && alive(x, y + 1) {
                physicals.push(Physical {
                    a: (x, y),
                    b: (x, y + 1),
                    kind: kind_for(x, y, x, y + 1),
                });
            }
        }
    }

    // Random interior removal (never remove trunk/primary, keeps the skeleton).
    physicals.retain(|p| {
        p.kind == RoadKind::Trunk
            || p.kind == RoadKind::Primary
            || rng.gen::<f64>() >= cfg.removal_rate
    });

    // Two directed segments per physical road.
    let mut net = RoadNetwork::new();
    let pt =
        |(x, y): (usize, usize)| Point::new(x as f64 * cfg.spacing_m, y as f64 * cfg.spacing_m);
    // node -> (incoming segment ends here, outgoing segment starts here)
    let mut starts_at: Vec<Vec<SegmentId>> = vec![Vec::new(); w * h];
    let mut ends_at: Vec<Vec<SegmentId>> = vec![Vec::new(); w * h];
    let node_idx = |(x, y): (usize, usize)| y * w + x;

    for p in &physicals {
        let (a, b) = (pt(p.a), pt(p.b));
        let length = a.distance(b) as f32;
        // Slight per-road variation so features are not constant per class.
        let jitter = 1.0 + rng.gen_range(-0.1..0.1f32);
        let mk = |start: Point, end: Point, rng: &mut StdRng| RoadSegment {
            kind: p.kind,
            length_m: length * (1.0 + rng.gen_range(-0.02..0.02f32)),
            lanes: p.kind.default_lanes(),
            max_speed_kmh: p.kind.default_speed_kmh() * jitter,
            start,
            end,
        };
        let fwd = net.add_segment(mk(a, b, &mut rng));
        let bwd = net.add_segment(mk(b, a, &mut rng));
        starts_at[node_idx(p.a)].push(fwd);
        ends_at[node_idx(p.b)].push(fwd);
        starts_at[node_idx(p.b)].push(bwd);
        ends_at[node_idx(p.a)].push(bwd);
    }

    // Segment connectivity: at each intersection, every incoming segment may
    // continue onto every outgoing one except its own reverse (no U-turns).
    for node in 0..w * h {
        for &inc in &ends_at[node] {
            for &out in &starts_at[node] {
                let rev = net.segment(inc).start == net.segment(out).end
                    && net.segment(inc).end == net.segment(out).start;
                if !rev {
                    net.connect(inc, out);
                }
            }
        }
    }

    City { name: name.to_owned(), net: largest_scc(&net) }
}

/// Convenience constructors mirroring the paper's datasets.
pub fn beijing_like() -> City {
    generate_city("BJ-mini", &CityConfig::beijing_like())
}

pub fn porto_like() -> City {
    generate_city("Porto-mini", &CityConfig::porto_like())
}

/// Reduce a network to its largest strongly connected component
/// (Kosaraju's algorithm), remapping segment ids densely.
pub fn largest_scc(net: &RoadNetwork) -> RoadNetwork {
    let n = net.num_segments();
    if n == 0 {
        return RoadNetwork::new();
    }
    // First pass: finish order on the forward graph.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative DFS with an explicit phase marker.
        let mut stack = vec![(SegmentId(start as u32), false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                order.push(v);
                continue;
            }
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            stack.push((v, true));
            for &next in net.successors(v) {
                if !visited[next.index()] {
                    stack.push((next, false));
                }
            }
        }
    }
    // Second pass: components on the reverse graph in reverse finish order.
    let mut component = vec![usize::MAX; n];
    let mut num_components = 0;
    for &v in order.iter().rev() {
        if component[v.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        component[v.index()] = num_components;
        while let Some(u) = stack.pop() {
            for &p in net.predecessors(u) {
                if component[p.index()] == usize::MAX {
                    component[p.index()] = num_components;
                    stack.push(p);
                }
            }
        }
        num_components += 1;
    }
    let mut sizes = vec![0usize; num_components];
    for &c in &component {
        sizes[c] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .expect("at least one component");

    // Rebuild with dense ids.
    let mut remap = vec![None; n];
    let mut out = RoadNetwork::new();
    for i in 0..n {
        if component[i] == largest {
            remap[i] = Some(out.add_segment(net.segment(SegmentId(i as u32)).clone()));
        }
    }
    for (from, to) in net.edges() {
        if let (Some(f), Some(t)) = (remap[from.index()], remap[to.index()]) {
            out.connect(f, t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::dijkstra;

    #[test]
    fn beijing_like_is_strongly_connected_and_sizeable() {
        let city = beijing_like();
        let n = city.net.num_segments();
        assert!(n >= 500, "BJ-mini too small: {n}");
        // Strong connectivity: route from segment 0 to a far segment and back.
        let far = SegmentId((n - 1) as u32);
        let cost = |_: SegmentId, b: SegmentId| city.net.segment(b).free_flow_secs() as f64;
        assert!(dijkstra(&city.net, SegmentId(0), far, cost).is_some());
        assert!(dijkstra(&city.net, far, SegmentId(0), cost).is_some());
    }

    #[test]
    fn porto_like_is_smaller_and_heterogeneous() {
        let bj = beijing_like();
        let porto = porto_like();
        assert!(porto.net.num_segments() < bj.net.num_segments());
        // The corner cut must actually remove the corner region.
        assert!(porto.net.num_segments() > 100);
    }

    #[test]
    fn no_immediate_u_turns() {
        let city = generate_city("tiny", &CityConfig::tiny());
        for id in city.net.ids() {
            let s = city.net.segment(id);
            for &next in city.net.successors(id) {
                let t = city.net.segment(next);
                assert!(!(s.start == t.end && s.end == t.start), "U-turn edge {id:?} -> {next:?}");
            }
        }
    }

    #[test]
    fn road_kinds_form_a_hierarchy() {
        let city = beijing_like();
        let mut kinds = std::collections::HashSet::new();
        for s in city.net.segments() {
            kinds.insert(s.kind);
        }
        assert!(kinds.contains(&RoadKind::Trunk));
        assert!(kinds.contains(&RoadKind::Primary));
        assert!(kinds.contains(&RoadKind::Residential));
    }

    #[test]
    fn scc_of_two_islands_keeps_larger() {
        use crate::graph::{Point, RoadSegment};
        let mut net = RoadNetwork::new();
        let mk = |i: f64| RoadSegment {
            kind: RoadKind::Primary,
            length_m: 100.0,
            lanes: 2,
            max_speed_kmh: 50.0,
            start: Point::new(i, 0.0),
            end: Point::new(i + 1.0, 0.0),
        };
        // Island A: 0 <-> 1 <-> 2 (cycle of 3)
        let a0 = net.add_segment(mk(0.0));
        let a1 = net.add_segment(mk(1.0));
        let a2 = net.add_segment(mk(2.0));
        net.connect(a0, a1);
        net.connect(a1, a2);
        net.connect(a2, a0);
        // Island B: 3 <-> 4 (cycle of 2), plus a one-way bridge A -> B.
        let b0 = net.add_segment(mk(10.0));
        let b1 = net.add_segment(mk(11.0));
        net.connect(b0, b1);
        net.connect(b1, b0);
        net.connect(a0, b0);
        let reduced = largest_scc(&net);
        assert_eq!(reduced.num_segments(), 3);
    }
}
