//! Shortest-path machinery: Dijkstra and Yen's k-shortest loopless paths [24].
//!
//! Yen's algorithm generates the top-k detour candidates the paper uses to
//! build ground truth for the similarity-search experiments (§IV-D4), and
//! Dijkstra (with perturbable edge weights) is the route-choice engine of the
//! trajectory simulator.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::graph::{RoadNetwork, SegmentId};

/// A path through the segment graph with its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    pub segments: Vec<SegmentId>,
    pub cost: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    seg: SegmentId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` to `target` over segment transitions.
///
/// `cost` is charged for *entering* a segment (e.g. its expected travel
/// time), so the returned cost is `sum(cost(v))` over `path[1..]`; banned
/// transitions/segments are expressed by returning `f64::INFINITY`.
pub fn dijkstra(
    net: &RoadNetwork,
    source: SegmentId,
    target: SegmentId,
    mut cost: impl FnMut(SegmentId, SegmentId) -> f64,
) -> Option<Path> {
    let n = net.num_segments();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, seg: source });

    while let Some(HeapEntry { cost: d, seg }) = heap.pop() {
        if seg == target {
            let mut segments = vec![target];
            let mut cur = target;
            while let Some(p) = prev[cur.index()] {
                segments.push(p);
                cur = p;
            }
            segments.reverse();
            return Some(Path { segments, cost: d });
        }
        if d > dist[seg.index()] {
            continue;
        }
        for &next in net.successors(seg) {
            let w = cost(seg, next);
            if !w.is_finite() {
                continue;
            }
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev[next.index()] = Some(seg);
                heap.push(HeapEntry { cost: nd, seg: next });
            }
        }
    }
    None
}

/// Yen's k-shortest loopless paths between two segments.
///
/// Returns up to `k` simple paths sorted by ascending cost; the first is the
/// Dijkstra optimum. `cost(from, to)` is charged for the transition.
pub fn yen_ksp(
    net: &RoadNetwork,
    source: SegmentId,
    target: SegmentId,
    k: usize,
    cost: impl Fn(SegmentId, SegmentId) -> f64,
) -> Vec<Path> {
    let Some(best) = dijkstra(net, source, target, &cost) else {
        return Vec::new();
    };
    let mut shortest: Vec<Path> = vec![best];
    let mut candidates: Vec<Path> = Vec::new();

    for _ in 1..k {
        let prev_path = shortest.last().expect("non-empty").segments.clone();
        for spur_idx in 0..prev_path.len() - 1 {
            let spur_node = prev_path[spur_idx];
            let root = &prev_path[..=spur_idx];

            // Edges removed: the next hop of every accepted path sharing this root.
            let mut banned_edges: HashSet<(SegmentId, SegmentId)> = HashSet::new();
            for p in shortest.iter().chain(candidates.iter()) {
                if p.segments.len() > spur_idx + 1 && p.segments[..=spur_idx] == *root {
                    banned_edges.insert((p.segments[spur_idx], p.segments[spur_idx + 1]));
                }
            }
            // Nodes removed: the root except the spur node (loopless-ness).
            let banned_nodes: HashSet<SegmentId> = root[..spur_idx].iter().copied().collect();

            let spur = dijkstra(net, spur_node, target, |a, b| {
                if banned_edges.contains(&(a, b)) || banned_nodes.contains(&b) {
                    f64::INFINITY
                } else {
                    cost(a, b)
                }
            });

            if let Some(spur_path) = spur {
                let mut segments = root[..spur_idx].to_vec();
                segments.extend_from_slice(&spur_path.segments);
                let total_cost: f64 = segments.windows(2).map(|w| cost(w[0], w[1])).sum();
                let candidate = Path { segments, cost: total_cost };
                if !shortest.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.cost.total_cmp(&a.cost));
        shortest.push(candidates.pop().expect("non-empty"));
    }
    shortest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Point, RoadKind, RoadSegment};

    /// Diamond: 0 -> {1 (cheap), 2 (expensive)} -> 3, plus a long chain 0->4->5->3.
    fn diamond() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        for i in 0..6 {
            let p = Point::new(i as f64, 0.0);
            net.add_segment(RoadSegment {
                kind: RoadKind::Primary,
                length_m: 100.0,
                lanes: 2,
                max_speed_kmh: 50.0,
                start: p,
                end: Point::new(i as f64 + 1.0, 0.0),
            });
        }
        let s = SegmentId;
        net.connect(s(0), s(1));
        net.connect(s(0), s(2));
        net.connect(s(1), s(3));
        net.connect(s(2), s(3));
        net.connect(s(0), s(4));
        net.connect(s(4), s(5));
        net.connect(s(5), s(3));
        net
    }

    fn costs(a: SegmentId, b: SegmentId) -> f64 {
        match (a.0, b.0) {
            (0, 1) => 1.0,
            (1, 3) => 1.0,
            (0, 2) => 2.0,
            (2, 3) => 2.0,
            (0, 4) => 3.0,
            (4, 5) => 3.0,
            (5, 3) => 3.0,
            _ => f64::INFINITY,
        }
    }

    #[test]
    fn dijkstra_finds_cheapest() {
        let net = diamond();
        let p = dijkstra(&net, SegmentId(0), SegmentId(3), costs).unwrap();
        assert_eq!(p.segments, vec![SegmentId(0), SegmentId(1), SegmentId(3)]);
        assert!((p.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let net = diamond();
        assert!(dijkstra(&net, SegmentId(3), SegmentId(0), costs).is_none());
    }

    #[test]
    fn yen_returns_sorted_distinct_simple_paths() {
        let net = diamond();
        let paths = yen_ksp(&net, SegmentId(0), SegmentId(3), 3, costs);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].segments, vec![SegmentId(0), SegmentId(1), SegmentId(3)]);
        assert_eq!(paths[1].segments, vec![SegmentId(0), SegmentId(2), SegmentId(3)]);
        assert_eq!(paths[2].segments, vec![SegmentId(0), SegmentId(4), SegmentId(5), SegmentId(3)]);
        // Sorted by cost.
        assert!(paths.windows(2).all(|w| w[0].cost <= w[1].cost));
        // Loopless.
        for p in &paths {
            let set: HashSet<_> = p.segments.iter().collect();
            assert_eq!(set.len(), p.segments.len());
        }
    }

    #[test]
    fn yen_k_larger_than_path_count() {
        let net = diamond();
        let paths = yen_ksp(&net, SegmentId(0), SegmentId(3), 10, costs);
        assert_eq!(paths.len(), 3, "only 3 simple paths exist");
    }
}
