//! The directed road network `G = (V, E, F_V, A)` of Definition 1.
//!
//! Vertices are *road segments*; a directed edge `(v_i, v_j)` means a vehicle
//! can continue from segment `v_i` onto segment `v_j` at the shared
//! intersection. Geometry (segment endpoints) is kept for map matching and
//! for the synthetic GPS simulator.

use serde::{Deserialize, Serialize};

/// Index of a road segment in its [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// OSM-style highway classification, one of the six road features (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadKind {
    Motorway,
    Trunk,
    Primary,
    Secondary,
    Tertiary,
    Residential,
}

impl RoadKind {
    pub const ALL: [RoadKind; 6] = [
        RoadKind::Motorway,
        RoadKind::Trunk,
        RoadKind::Primary,
        RoadKind::Secondary,
        RoadKind::Tertiary,
        RoadKind::Residential,
    ];

    /// Index used for one-hot feature encoding.
    pub fn one_hot_index(self) -> usize {
        match self {
            RoadKind::Motorway => 0,
            RoadKind::Trunk => 1,
            RoadKind::Primary => 2,
            RoadKind::Secondary => 3,
            RoadKind::Tertiary => 4,
            RoadKind::Residential => 5,
        }
    }

    /// Typical free-flow speed in km/h used by the synthetic generator.
    pub fn default_speed_kmh(self) -> f32 {
        match self {
            RoadKind::Motorway => 100.0,
            RoadKind::Trunk => 80.0,
            RoadKind::Primary => 60.0,
            RoadKind::Secondary => 50.0,
            RoadKind::Tertiary => 40.0,
            RoadKind::Residential => 30.0,
        }
    }

    pub fn default_lanes(self) -> u8 {
        match self {
            RoadKind::Motorway => 4,
            RoadKind::Trunk => 3,
            RoadKind::Primary => 3,
            RoadKind::Secondary => 2,
            RoadKind::Tertiary => 2,
            RoadKind::Residential => 1,
        }
    }
}

/// A planar point in meters (local projected coordinates of the synthetic
/// city; real deployments would use a projected CRS the same way).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

/// One directed road segment with the paper's static features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadSegment {
    pub kind: RoadKind,
    pub length_m: f32,
    pub lanes: u8,
    pub max_speed_kmh: f32,
    /// Geometric start/end, used by map matching and GPS simulation.
    pub start: Point,
    pub end: Point,
}

impl RoadSegment {
    /// Free-flow traversal time in seconds.
    pub fn free_flow_secs(&self) -> f32 {
        self.length_m / (self.max_speed_kmh / 3.6)
    }

    pub fn midpoint(&self) -> Point {
        self.start.lerp(self.end, 0.5)
    }

    /// Closest point on the segment to `p` and its distance.
    pub fn project(&self, p: Point) -> (Point, f64) {
        let dx = self.end.x - self.start.x;
        let dy = self.end.y - self.start.y;
        let len2 = dx * dx + dy * dy;
        let t = if len2 == 0.0 {
            0.0
        } else {
            (((p.x - self.start.x) * dx + (p.y - self.start.y) * dy) / len2).clamp(0.0, 1.0)
        };
        let proj = self.start.lerp(self.end, t);
        let dist = proj.distance(p);
        (proj, dist)
    }
}

/// Directed road-segment graph with CSR-style adjacency.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
    out_edges: Vec<Vec<SegmentId>>,
    in_edges: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_segment(&mut self, segment: RoadSegment) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(segment);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Add the directed edge `from -> to` (traffic may continue from `from`
    /// onto `to`). Duplicate edges are ignored.
    pub fn connect(&mut self, from: SegmentId, to: SegmentId) {
        assert!(from.index() < self.segments.len() && to.index() < self.segments.len());
        if !self.out_edges[from.index()].contains(&to) {
            self.out_edges[from.index()].push(to);
            self.in_edges[to.index()].push(from);
        }
    }

    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    pub fn segment(&self, id: SegmentId) -> &RoadSegment {
        &self.segments[id.index()]
    }

    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    pub fn successors(&self, id: SegmentId) -> &[SegmentId] {
        &self.out_edges[id.index()]
    }

    pub fn predecessors(&self, id: SegmentId) -> &[SegmentId] {
        &self.in_edges[id.index()]
    }

    pub fn out_degree(&self, id: SegmentId) -> usize {
        self.out_edges[id.index()].len()
    }

    pub fn in_degree(&self, id: SegmentId) -> usize {
        self.in_edges[id.index()].len()
    }

    pub fn ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Whether a sequence of segments is a connected path in the graph.
    pub fn is_path(&self, path: &[SegmentId]) -> bool {
        path.windows(2).all(|w| self.out_edges[w[0].index()].contains(&w[1]))
    }

    /// All directed edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (SegmentId, SegmentId)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&j| (SegmentId(i as u32), j)))
    }

    /// Segments within `radius` meters of a point (linear scan; the synthetic
    /// networks are small enough that a spatial index would be overkill, and
    /// the map matcher batches its queries).
    pub fn segments_near(&self, p: Point, radius: f64) -> Vec<(SegmentId, f64)> {
        let mut out: Vec<(SegmentId, f64)> = self
            .segments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let (_, d) = s.project(p);
                (d <= radius).then_some((SegmentId(i as u32), d))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> RoadSegment {
        let start = Point::new(x0, y0);
        let end = Point::new(x1, y1);
        RoadSegment {
            kind: RoadKind::Residential,
            length_m: start.distance(end) as f32,
            lanes: 1,
            max_speed_kmh: 30.0,
            start,
            end,
        }
    }

    #[test]
    fn connectivity_and_degrees() {
        let mut net = RoadNetwork::new();
        let a = net.add_segment(seg(0., 0., 100., 0.));
        let b = net.add_segment(seg(100., 0., 200., 0.));
        let c = net.add_segment(seg(100., 0., 100., 100.));
        net.connect(a, b);
        net.connect(a, c);
        net.connect(a, c); // duplicate ignored
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.out_degree(a), 2);
        assert_eq!(net.in_degree(c), 1);
        assert!(net.is_path(&[a, b]));
        assert!(!net.is_path(&[b, a]));
    }

    #[test]
    fn projection_clamps_to_segment() {
        let s = seg(0., 0., 100., 0.);
        let (p, d) = s.project(Point::new(50., 10.));
        assert!((p.x - 50.).abs() < 1e-9 && p.y.abs() < 1e-9);
        assert!((d - 10.0).abs() < 1e-9);
        let (p2, d2) = s.project(Point::new(-30., 0.));
        assert!((p2.x).abs() < 1e-9);
        assert!((d2 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn free_flow_time_is_length_over_speed() {
        let mut s = seg(0., 0., 100., 0.);
        s.max_speed_kmh = 36.0; // 10 m/s
        assert!((s.free_flow_secs() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn segments_near_sorted_by_distance() {
        let mut net = RoadNetwork::new();
        net.add_segment(seg(0., 0., 100., 0.));
        net.add_segment(seg(0., 50., 100., 50.));
        net.add_segment(seg(0., 500., 100., 500.));
        let near = net.segments_near(Point::new(50., 10.), 100.0);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0, SegmentId(0));
        assert!(near[0].1 <= near[1].1);
    }
}
