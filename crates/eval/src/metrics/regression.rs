//! Regression metrics for travel time estimation (§IV-C3): MAE, MAPE, RMSE.

/// Mean absolute error.
pub fn mae(truth: &[f32], pred: &[f32]) -> f32 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f32>() / truth.len() as f32
}

/// Mean absolute percentage error, in percent. Zero-valued truths are
/// skipped (they would blow the ratio up).
pub fn mape(truth: &[f32], pred: &[f32]) -> f32 {
    assert_eq!(truth.len(), pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > f32::EPSILON {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    assert!(n > 0, "all truths are zero");
    100.0 * sum / n as f32
}

/// Root mean squared error.
pub fn rmse(truth: &[f32], pred: &[f32]) -> f32 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    (truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum::<f32>() / truth.len() as f32)
        .sqrt()
}

/// All three at once, in the paper's Table II order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionReport {
    pub mae: f32,
    pub mape: f32,
    pub rmse: f32,
}

pub fn regression_report(truth: &[f32], pred: &[f32]) -> RegressionReport {
    RegressionReport { mae: mae(truth, pred), mape: mape(truth, pred), rmse: rmse(truth, pred) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_are_zero_error() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
    }

    #[test]
    fn hand_computed_values() {
        let truth = [10.0, 20.0];
        let pred = [12.0, 16.0];
        assert!((mae(&truth, &pred) - 3.0).abs() < 1e-6);
        assert!((mape(&truth, &pred) - 20.0).abs() < 1e-4); // (20% + 20%) / 2
        assert!((rmse(&truth, &pred) - (10.0f32).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let truth = [0.0, 0.0, 0.0, 0.0];
        let pred = [0.0, 0.0, 0.0, 8.0];
        assert!(rmse(&truth, &pred) > mae(&truth, &pred));
    }

    #[test]
    fn mape_skips_zero_truths() {
        let truth = [0.0, 10.0];
        let pred = [5.0, 11.0];
        assert!((mape(&truth, &pred) - 10.0).abs() < 1e-4);
    }
}
