//! Ranking metrics for similarity search (§IV-C3): Mean Rank, Hit Ratio@k,
//! and Precision for the k-nearest search task.

/// Rank (1-based) of the ground-truth item for each query, given embedding
/// vectors and Euclidean distance: rank 1 means the truth is the nearest
/// database entry.
pub fn truth_ranks(
    query_embs: &[Vec<f32>],
    db_embs: &[Vec<f32>],
    truth: impl Fn(usize) -> usize,
) -> Vec<usize> {
    query_embs
        .iter()
        .enumerate()
        .map(|(q, qe)| {
            let t = truth(q);
            let td = euclidean_sq(qe, &db_embs[t]);
            // Count database entries strictly closer than the truth.
            let closer = db_embs
                .iter()
                .enumerate()
                .filter(|(i, e)| *i != t && euclidean_sq(qe, e) < td)
                .count();
            closer + 1
        })
        .collect()
}

#[inline]
fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Mean rank (MR), lower is better.
pub fn mean_rank(ranks: &[usize]) -> f32 {
    assert!(!ranks.is_empty());
    ranks.iter().sum::<usize>() as f32 / ranks.len() as f32
}

/// Hit ratio @ k: fraction of queries whose truth ranks within the top k.
pub fn hit_ratio(ranks: &[usize], k: usize) -> f32 {
    assert!(!ranks.is_empty());
    ranks.iter().filter(|&&r| r <= k).count() as f32 / ranks.len() as f32
}

/// Indexes of the k nearest database entries for one query embedding.
pub fn knn_indices(query: &[f32], db_embs: &[Vec<f32>], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..db_embs.len()).collect();
    idx.sort_by(|&a, &b| {
        euclidean_sq(query, &db_embs[a]).total_cmp(&euclidean_sq(query, &db_embs[b]))
    });
    idx.truncate(k);
    idx
}

/// Precision of the k-nearest search task (§IV-D4b): overlap between the
/// k-NN sets retrieved for the original and the transformed queries.
pub fn knn_precision(
    original_query_embs: &[Vec<f32>],
    transformed_query_embs: &[Vec<f32>],
    db_embs: &[Vec<f32>],
    k: usize,
) -> f32 {
    assert_eq!(original_query_embs.len(), transformed_query_embs.len());
    assert!(!original_query_embs.is_empty());
    let mut total = 0.0;
    for (orig, trans) in original_query_embs.iter().zip(transformed_query_embs) {
        let truth_set = knn_indices(orig, db_embs, k);
        let found = knn_indices(trans, db_embs, k);
        let overlap = found.iter().filter(|i| truth_set.contains(i)).count();
        total += overlap as f32 / k as f32;
    }
    total / original_query_embs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_when_truth_is_identical() {
        let queries = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let db = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![5.0, 5.0]];
        let ranks = truth_ranks(&queries, &db, |q| q);
        assert_eq!(ranks, vec![1, 1]);
        assert_eq!(mean_rank(&ranks), 1.0);
        assert_eq!(hit_ratio(&ranks, 1), 1.0);
    }

    #[test]
    fn rank_counts_closer_entries() {
        let queries = vec![vec![0.0]];
        // db[0] is the truth but db[1] and db[2] are closer to the query.
        let db = vec![vec![3.0], vec![1.0], vec![2.0], vec![10.0]];
        let ranks = truth_ranks(&queries, &db, |_| 0);
        assert_eq!(ranks, vec![3]);
        assert_eq!(hit_ratio(&ranks, 1), 0.0);
        assert_eq!(hit_ratio(&ranks, 3), 1.0);
    }

    #[test]
    fn knn_precision_is_one_for_identical_queries() {
        let db: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let q = vec![vec![2.2], vec![7.9]];
        assert_eq!(knn_precision(&q, &q, &db, 3), 1.0);
    }

    #[test]
    fn knn_precision_degrades_with_perturbation() {
        let db: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let orig = vec![vec![10.0], vec![50.0]];
        let near = vec![vec![11.0], vec![51.0]];
        let far = vec![vec![90.0], vec![5.0]];
        let p_near = knn_precision(&orig, &near, &db, 5);
        let p_far = knn_precision(&orig, &far, &db, 5);
        assert!(p_near > p_far);
        assert_eq!(p_far, 0.0);
    }
}
