//! Classification metrics (§IV-C3): ACC / F1 / AUC for binary tasks,
//! Micro-F1 / Macro-F1 / Recall@k for multi-class tasks.

/// Argmax of a probability row.
fn argmax(probs: &[f32]) -> usize {
    probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty probabilities")
}

/// Accuracy from predicted class probabilities.
pub fn accuracy(truth: &[usize], probs: &[Vec<f32>]) -> f32 {
    assert_eq!(truth.len(), probs.len());
    assert!(!truth.is_empty());
    let hits = truth.iter().zip(probs).filter(|(&t, p)| argmax(p) == t).count();
    hits as f32 / truth.len() as f32
}

/// Binary F1 (positive class = 1) from probabilities.
pub fn f1_binary(truth: &[usize], probs: &[Vec<f32>]) -> f32 {
    let (mut tp, mut fp, mut fn_) = (0f32, 0f32, 0f32);
    for (&t, p) in truth.iter().zip(probs) {
        let pred = argmax(p);
        match (t, pred) {
            (1, 1) => tp += 1.0,
            (0, 1) => fp += 1.0,
            (1, 0) => fn_ += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Area under the ROC curve via the rank statistic (Mann-Whitney U).
/// `score` is the predicted probability of class 1.
pub fn auc(truth: &[usize], probs: &[Vec<f32>]) -> f32 {
    assert_eq!(truth.len(), probs.len());
    let mut scored: Vec<(f32, usize)> =
        probs.iter().map(|p| p[1]).zip(truth.iter().copied()).collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rank_sum = 0.0f64;
    let mut i = 0;
    // Average ranks over ties.
    while i < scored.len() {
        let mut j = i;
        while j + 1 < scored.len() && scored[j + 1].0 == scored[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &scored[i..=j] {
            if item.1 == 1 {
                rank_sum += avg_rank;
            }
        }
        i = j + 1;
    }
    let pos = truth.iter().filter(|&&t| t == 1).count() as f64;
    let neg = truth.len() as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return 0.5;
    }
    ((rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)) as f32
}

/// Micro-averaged F1 — equals accuracy in single-label classification.
pub fn micro_f1(truth: &[usize], probs: &[Vec<f32>]) -> f32 {
    accuracy(truth, probs)
}

/// Macro-averaged F1 over `num_classes` classes.
pub fn macro_f1(truth: &[usize], probs: &[Vec<f32>], num_classes: usize) -> f32 {
    let mut tp = vec![0f32; num_classes];
    let mut fp = vec![0f32; num_classes];
    let mut fn_ = vec![0f32; num_classes];
    for (&t, p) in truth.iter().zip(probs) {
        let pred = argmax(p);
        if pred == t {
            tp[t] += 1.0;
        } else {
            fp[pred] += 1.0;
            fn_[t] += 1.0;
        }
    }
    let mut sum = 0.0;
    for c in 0..num_classes {
        let f1 = if tp[c] == 0.0 {
            0.0
        } else {
            let prec = tp[c] / (tp[c] + fp[c]);
            let rec = tp[c] / (tp[c] + fn_[c]);
            2.0 * prec * rec / (prec + rec)
        };
        sum += f1;
    }
    sum / num_classes as f32
}

/// Recall@k: fraction of samples whose true class is among the k most
/// probable predictions.
pub fn recall_at_k(truth: &[usize], probs: &[Vec<f32>], k: usize) -> f32 {
    assert!(!truth.is_empty());
    let hits = truth
        .iter()
        .zip(probs)
        .filter(|(&t, p)| {
            let mut idx: Vec<usize> = (0..p.len()).collect();
            idx.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
            idx[..k.min(idx.len())].contains(&t)
        })
        .count();
    hits as f32 / truth.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(c: usize, n: usize) -> Vec<f32> {
        let mut v = vec![0.0; n];
        v[c] = 1.0;
        v
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let truth = vec![0, 1, 1, 0];
        let probs: Vec<Vec<f32>> = truth.iter().map(|&t| one_hot(t, 2)).collect();
        assert_eq!(accuracy(&truth, &probs), 1.0);
        assert_eq!(f1_binary(&truth, &probs), 1.0);
        assert!((auc(&truth, &probs) - 1.0).abs() < 1e-6);
        assert_eq!(micro_f1(&truth, &probs), 1.0);
        assert_eq!(macro_f1(&truth, &probs, 2), 1.0);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Constant scores: AUC must be exactly 0.5 by tie averaging.
        let truth = vec![0, 1, 0, 1, 1, 0];
        let probs = vec![vec![0.5, 0.5]; 6];
        assert!((auc(&truth, &probs) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_matches_hand_example() {
        // scores: pos {0.9, 0.6}, neg {0.4, 0.7} -> pairs won: (0.9>0.4),(0.9>0.7),(0.6>0.4); lost (0.6<0.7)
        let truth = vec![1, 1, 0, 0];
        let probs = vec![vec![0.1, 0.9], vec![0.4, 0.6], vec![0.6, 0.4], vec![0.3, 0.7]];
        assert!((auc(&truth, &probs) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn macro_f1_punishes_minority_failure() {
        // Classifier always predicts class 0; class 1 is 25% of data.
        let truth = vec![0, 0, 0, 1];
        let probs = vec![one_hot(0, 2); 4];
        let micro = micro_f1(&truth, &probs);
        let macro_ = macro_f1(&truth, &probs, 2);
        assert!((micro - 0.75).abs() < 1e-6);
        assert!(macro_ < micro, "macro {macro_} must dip below micro {micro}");
    }

    #[test]
    fn recall_at_k_widens_with_k() {
        let truth = vec![2, 0];
        let probs = vec![
            vec![0.5, 0.3, 0.2], // truth 2 ranked 3rd
            vec![0.6, 0.3, 0.1], // truth 0 ranked 1st
        ];
        assert_eq!(recall_at_k(&truth, &probs, 1), 0.5);
        assert_eq!(recall_at_k(&truth, &probs, 3), 1.0);
    }
}
