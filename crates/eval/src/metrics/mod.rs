//! Evaluation metrics of §IV-C3, one module per task family.

pub mod classification;
pub mod ranking;
pub mod regression;

pub use classification::{accuracy, auc, f1_binary, macro_f1, micro_f1, recall_at_k};
pub use ranking::{hit_ratio, knn_indices, knn_precision, mean_rank, truth_ranks};
pub use regression::{mae, mape, regression_report, rmse, RegressionReport};
