//! `start-eval`: evaluation machinery for the START reproduction.
//!
//! - [`metrics`] — the paper's §IV-C3 metric suite: MAE/MAPE/RMSE for travel
//!   time estimation, ACC/F1/AUC and Micro-/Macro-F1/Recall@k for
//!   classification, Mean Rank / Hit Ratio@k / k-NN Precision for similarity
//!   search;
//! - [`classic`] — the traditional `O(L²)` similarity algorithms of the
//!   efficiency study (§IV-H): DTW, LCSS, discrete Fréchet, EDR.

pub mod classic;
pub mod metrics;

pub use classic::{dtw, edr, frechet, lcss, midpoints};
pub use metrics::*;
