//! Classical trajectory similarity measures used in the efficiency study
//! (§IV-H, Fig. 10): DTW [30], LCSS [28], discrete Fréchet distance [31],
//! and EDR [29]. All are `O(L²)` dynamic programs over point sequences —
//! exactly the cost profile the paper contrasts with `O(d)` embedding
//! distances.

use start_roadnet::{Point, RoadNetwork};
use start_traj::Trajectory;

/// Render a road-constrained trajectory as the polyline of segment midpoints
/// (the shared input representation for the classical measures).
pub fn midpoints(net: &RoadNetwork, traj: &Trajectory) -> Vec<Point> {
    traj.roads.iter().map(|&r| net.segment(r).midpoint()).collect()
}

/// Dynamic Time Warping distance with squared-free Euclidean ground metric.
pub fn dtw(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = f64::INFINITY;
        for j in 1..=m {
            let cost = a[i - 1].distance(b[j - 1]);
            cur[j] = cost + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Longest Common SubSequence *similarity* converted to a distance:
/// `1 - LCSS / min(n, m)`, with spatial matching threshold `eps` meters.
pub fn lcss(a: &[Point], b: &[Point], eps: f64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if a[i - 1].distance(b[j - 1]) <= eps {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    1.0 - prev[m] as f64 / n.min(m) as f64
}

/// Discrete Fréchet distance (the classic coupled-walk DP).
pub fn frechet(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let (n, m) = (a.len(), b.len());
    let mut ca = vec![vec![-1.0f64; m]; n];
    // Iterative fill (row-major works because dependencies point back/left).
    for i in 0..n {
        for j in 0..m {
            let d = a[i].distance(b[j]);
            ca[i][j] = match (i, j) {
                (0, 0) => d,
                (0, _) => ca[0][j - 1].max(d),
                (_, 0) => ca[i - 1][0].max(d),
                _ => ca[i - 1][j].min(ca[i - 1][j - 1]).min(ca[i][j - 1]).max(d),
            };
        }
    }
    ca[n - 1][m - 1]
}

/// Edit Distance on Real sequence, normalized by the longer length.
/// A pair of points "matches" when within `eps` meters.
pub fn edr(a: &[Point], b: &[Point], eps: f64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = if a[i - 1].distance(b[j - 1]) <= eps { 0 } else { 1 };
            cur[j] = (prev[j - 1] + sub).min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64 / n.max(m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(xs: &[(f64, f64)]) -> Vec<Point> {
        xs.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = pts(&[(0., 0.), (1., 0.), (2., 0.)]);
        assert_eq!(dtw(&a, &a), 0.0);
        assert_eq!(lcss(&a, &a, 0.5), 0.0);
        assert_eq!(frechet(&a, &a), 0.0);
        assert_eq!(edr(&a, &a, 0.5), 0.0);
    }

    #[test]
    fn dtw_handles_time_warping() {
        // Same shape, different sampling rates: DTW stays small.
        let a = pts(&[(0., 0.), (1., 0.), (2., 0.), (3., 0.)]);
        let b = pts(&[(0., 0.), (0.5, 0.), (1., 0.), (1.5, 0.), (2., 0.), (3., 0.)]);
        let warped = dtw(&a, &b);
        let shifted = dtw(&a, &pts(&[(0., 5.), (1., 5.), (2., 5.), (3., 5.)]));
        assert!(warped < shifted);
    }

    #[test]
    fn frechet_is_max_of_matched_distance() {
        let a = pts(&[(0., 0.), (1., 0.)]);
        let b = pts(&[(0., 3.), (1., 4.)]);
        // Best coupling matches index-wise: max(3, 4) = 4.
        assert!((frechet(&a, &b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frechet_at_least_endpoint_distance() {
        let a = pts(&[(0., 0.), (5., 0.), (10., 0.)]);
        let b = pts(&[(0., 1.), (10., 1.)]);
        assert!(frechet(&a, &b) >= 1.0);
    }

    #[test]
    fn lcss_and_edr_are_threshold_sensitive() {
        let a = pts(&[(0., 0.), (1., 0.), (2., 0.)]);
        let b = pts(&[(0., 0.4), (1., 0.4), (2., 0.4)]);
        // With a generous threshold everything matches.
        assert_eq!(lcss(&a, &b, 1.0), 0.0);
        assert_eq!(edr(&a, &b, 1.0), 0.0);
        // With a tight threshold nothing matches.
        assert_eq!(lcss(&a, &b, 0.1), 1.0);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = pts(&[(0., 0.), (3., 1.), (5., 2.)]);
        let b = pts(&[(1., 1.), (2., 2.)]);
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
        assert_eq!(frechet(&a, &b), frechet(&b, &a));
        assert_eq!(edr(&a, &b, 0.5), edr(&b, &a, 0.5));
        assert_eq!(lcss(&a, &b, 0.5), lcss(&b, &a, 0.5));
    }
}
