//! Property tests pinning the HNSW index to the exact reference.
//!
//! The brute-force scan is the recall ground truth (ISSUE/ROADMAP item 2);
//! these properties assert that with an exhaustive beam the approximate
//! index *is* the exact index — same ids, same order, same tie-breaks —
//! and that deletion tombstones and overwrites can never leak a stale id
//! back into an answer.

use proptest::prelude::*;
use start_ann::{Hnsw, HnswConfig, Neighbor, VectorIndex};

/// Exact reference: full scan over `(id, vector)` pairs with the
/// workspace tie-break (ascending distance, then ascending id), distances
/// accumulated in the same sequential order as the index kernel so equal
/// inputs give bit-equal distances.
fn exact_knn(rows: &[(u64, Vec<f32>)], query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = rows
        .iter()
        .map(|(id, v)| {
            let d2: f32 = v.iter().zip(query).map(|(x, y)| (x - y) * (x - y)).sum();
            Neighbor { id: *id, distance: d2.sqrt() }
        })
        .collect();
    all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// Build an index whose beam is exhaustive for stores of up to 10k rows.
fn exhaustive_index(dim: usize) -> Hnsw {
    Hnsw::new(dim, HnswConfig::builder().ef_search(10_000).build().unwrap())
}

const DIM: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// recall@k == 1.0: with an exhaustive `ef_search`, HNSW answers are
    /// the exact answers on every store, query, and k — including exact
    /// distance ties, which the tiny integer alphabet makes common.
    #[test]
    fn exhaustive_ef_search_has_recall_one(
        rows in prop::collection::vec(prop::collection::vec(-3..4i32, DIM..DIM + 1), 1..60usize),
        query in prop::collection::vec(-3..4i32, DIM..DIM + 1),
        k in 0..15usize,
    ) {
        let data: Vec<(u64, Vec<f32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r.iter().map(|&x| x as f32).collect()))
            .collect();
        let q: Vec<f32> = query.iter().map(|&x| x as f32).collect();
        let mut index = exhaustive_index(DIM);
        for (id, v) in &data {
            index.insert(*id, v).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        }
        let got = index.knn(&q, k).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        let expected = exact_knn(&data, &q, k);
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.id, e.id, "id order diverged (tie-break?)");
            prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits(), "distance bits diverged");
        }
    }

    /// Tombstoned ids never come back, every live id stays reachable, and
    /// the live answers equal the exact answers over the live set only.
    #[test]
    fn tombstoned_ids_never_return_and_live_ids_stay_exact(
        rows in prop::collection::vec(prop::collection::vec(-3..4i32, DIM..DIM + 1), 2..50usize),
        kill_mask in prop::collection::vec(any::<bool>(), 2..50usize),
        query in prop::collection::vec(-3..4i32, DIM..DIM + 1),
    ) {
        let data: Vec<(u64, Vec<f32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r.iter().map(|&x| x as f32).collect()))
            .collect();
        let q: Vec<f32> = query.iter().map(|&x| x as f32).collect();
        let mut index = exhaustive_index(DIM);
        for (id, v) in &data {
            index.insert(*id, v).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        }
        let killed: Vec<u64> = data
            .iter()
            .zip(kill_mask.iter().chain(std::iter::repeat(&false)))
            .filter(|&(_, &kill)| kill)
            .map(|((id, _), _)| *id)
            .collect();
        for id in &killed {
            prop_assert!(index.remove(*id));
        }
        let live: Vec<(u64, Vec<f32>)> =
            data.iter().filter(|(id, _)| !killed.contains(id)).cloned().collect();
        prop_assert_eq!(index.len(), live.len());
        let got = index.knn(&q, data.len()).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        for n in &got {
            prop_assert!(!killed.contains(&n.id), "tombstoned id {} resurfaced", n.id);
        }
        let expected = exact_knn(&live, &q, data.len());
        prop_assert_eq!(got.len(), expected.len(), "a live id went missing");
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
        }
    }

    /// Insert-after-delete: re-inserting a removed (or live) id serves the
    /// *new* vector — the stale row can never answer again.
    #[test]
    fn insert_after_delete_serves_the_new_vector(
        rows in prop::collection::vec(prop::collection::vec(-3..4i32, DIM..DIM + 1), 2..30usize),
        victim in 0..30usize,
        delete_first in any::<bool>(),
    ) {
        let data: Vec<(u64, Vec<f32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r.iter().map(|&x| x as f32).collect()))
            .collect();
        let victim = (victim % data.len()) as u64;
        let mut index = exhaustive_index(DIM);
        for (id, v) in &data {
            index.insert(*id, v).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        }
        if delete_first {
            prop_assert!(index.remove(victim));
        }
        // The replacement sits far outside the data alphabet, so it is
        // unambiguously the victim id's nearest vector.
        let replacement: Vec<f32> = (0..DIM).map(|j| 100.0 + j as f32).collect();
        index.insert(victim, &replacement).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        prop_assert_eq!(index.len(), data.len());
        prop_assert_eq!(index.get(victim), Some(replacement.clone()));
        let hits = index.knn(&replacement, 1).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        prop_assert_eq!(hits[0].id, victim);
        prop_assert_eq!(hits[0].distance, 0.0, "stale vector answered for the re-inserted id");
        // And the old vector's location no longer answers under that id
        // unless the data genuinely contains an identical row.
        let old = &data[victim as usize].1;
        let near_old = index.knn(old, data.len()).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        let live: Vec<(u64, Vec<f32>)> = data
            .iter()
            .filter(|(id, _)| *id != victim)
            .cloned()
            .chain(std::iter::once((victim, replacement)))
            .collect();
        let expected = exact_knn(&live, old, data.len());
        let got_ids: Vec<u64> = near_old.iter().map(|n| n.id).collect();
        let expected_ids: Vec<u64> = expected.iter().map(|n| n.id).collect();
        prop_assert_eq!(got_ids, expected_ids);
    }
}

/// Default (non-exhaustive) beam on a clustered store: recall against the
/// exact reference must be high even without the exhaustive fallback —
/// the graph, not the fallback, carries the accuracy.
#[test]
fn default_beam_recall_is_high_on_a_real_sized_store() {
    let dim = 16;
    let n = 2000;
    let mut state = 0xabcd_ef01_2345_6789u64;
    let mut unit = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) as f32
    };
    let data: Vec<(u64, Vec<f32>)> =
        (0..n).map(|i| (i as u64, (0..dim).map(|_| unit() - 0.5).collect())).collect();
    let mut index = Hnsw::new(dim, HnswConfig::default());
    for (id, v) in &data {
        index.insert(*id, v).expect("insert");
    }
    let k = 10;
    let queries = 50;
    let mut hits = 0usize;
    for qi in 0..queries {
        let q: Vec<f32> = (0..dim).map(|_| unit() - 0.5).collect();
        let truth: Vec<u64> = exact_knn(&data, &q, k).into_iter().map(|n| n.id).collect();
        let got = index.knn(&q, k).expect("knn");
        hits += got.iter().filter(|n| truth.contains(&n.id)).count();
        assert!(got.len() == k, "query {qi} returned {} of {k}", got.len());
    }
    let recall = hits as f64 / (queries * k) as f64;
    assert!(recall >= 0.9, "default-beam recall too low: {recall:.3}");
}
