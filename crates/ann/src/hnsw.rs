//! Hierarchical Navigable Small World index over a [`VectorStore`].
//!
//! The classic layered-graph ANN structure (Malkov & Yashunin): every
//! vector becomes a node with a geometrically-sampled top layer; upper
//! layers form an expressway of long links for greedy descent, layer 0
//! holds the dense neighbourhood graph searched with a bounded best-first
//! beam (`ef`). Tunables and their trade-offs:
//!
//! - `m` — links per node per layer (layer 0 gets `2m`). More links: better
//!   recall and connectivity, more memory, slower inserts.
//! - `ef_construction` — beam width while inserting. Wider: better graph
//!   quality (recall), slower builds.
//! - `ef_search` — beam width while querying. Wider: higher recall, lower
//!   QPS. `ef_search >= n` makes the search exhaustive over the reachable
//!   graph, which is what the recall tests pin to 1.0.
//!
//! Deletions are tombstones: the node stays in the graph as a traversal
//! waypoint (removing it would tear routing holes), but is never returned.
//! Re-inserting an id tombstones the old row and inserts a fresh node.
//! When tombstones leave a query short of `k` live answers, the search
//! falls back once to an exhaustive beam — small stores stay exact no
//! matter the delete pattern, and the fallback cannot trigger on a
//! tombstone-free index.
//!
//! Determinism: level draws come from a SplitMix64 seeded by
//! [`HnswConfig::seed`], every heap orders by `(distance, id)` under
//! `total_cmp`, and neighbour iteration follows stored link order — the
//! same insert sequence always builds the same graph and the same query
//! always returns the same answer.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::store::{Precision, VectorStore};
use crate::{AnnError, Neighbor, VectorIndex};

/// Tunables for [`Hnsw`]. See the module docs for the trade-offs.
#[derive(Debug, Clone, PartialEq)]
pub struct HnswConfig {
    /// Max links per node on layers above 0; layer 0 keeps `2m`.
    pub m: usize,
    /// Beam width during insertion.
    pub ef_construction: usize,
    /// Default beam width during queries (raised to `k` when `k` is larger).
    pub ef_search: usize,
    /// Row representation of the backing [`VectorStore`].
    pub precision: Precision,
    /// Seed for the level-sampling RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 128,
            ef_search: 64,
            precision: Precision::F32,
            seed: 0x5354_4152_5441_4e4e, // "STARTANN"
        }
    }
}

impl HnswConfig {
    /// Builder seeded from [`HnswConfig::default`]; `build()` validates.
    pub fn builder() -> HnswConfigBuilder {
        HnswConfigBuilder { cfg: Self::default() }
    }

    /// Builder seeded from this config (tweak-and-revalidate).
    pub fn to_builder(&self) -> HnswConfigBuilder {
        HnswConfigBuilder { cfg: self.clone() }
    }

    /// Check the invariants [`Hnsw::new`] would otherwise silently clamp
    /// into range: `2 ≤ m ≤ 128`, `ef_construction ≥ m`, `ef_search ≥ 1`.
    pub fn validate(&self) -> Result<(), HnswConfigError> {
        if !(2..=128).contains(&self.m) {
            return Err(HnswConfigError::MOutOfRange { got: self.m });
        }
        if self.ef_construction < self.m {
            return Err(HnswConfigError::EfConstructionBelowM {
                ef_construction: self.ef_construction,
                m: self.m,
            });
        }
        if self.ef_search == 0 {
            return Err(HnswConfigError::ZeroEfSearch);
        }
        Ok(())
    }
}

/// Why an [`HnswConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HnswConfigError {
    /// `m` outside `2..=128` — below, the graph degenerates to a chain;
    /// above, link lists dominate memory for no recall gain.
    MOutOfRange { got: usize },
    /// Insertion beam narrower than the link budget it must fill.
    EfConstructionBelowM { ef_construction: usize, m: usize },
    /// A zero-width query beam can never surface a neighbour.
    ZeroEfSearch,
}

impl std::fmt::Display for HnswConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MOutOfRange { got } => {
                write!(f, "hnsw config: m = {got} outside the supported range 2..=128")
            }
            Self::EfConstructionBelowM { ef_construction, m } => write!(
                f,
                "hnsw config: ef_construction = {ef_construction} is below m = {m}; \
                 the insertion beam must cover the link budget"
            ),
            Self::ZeroEfSearch => write!(f, "hnsw config: ef_search must be at least 1"),
        }
    }
}

impl std::error::Error for HnswConfigError {}

/// Chainable builder for [`HnswConfig`] — the only construction path the
/// workspace lint accepts outside this file (rule 5 `no-config-literal`).
#[derive(Debug, Clone)]
pub struct HnswConfigBuilder {
    cfg: HnswConfig,
}

impl HnswConfigBuilder {
    pub fn m(mut self, m: usize) -> Self {
        self.cfg.m = m;
        self
    }

    pub fn ef_construction(mut self, ef: usize) -> Self {
        self.cfg.ef_construction = ef;
        self
    }

    pub fn ef_search(mut self, ef: usize) -> Self {
        self.cfg.ef_search = ef;
        self
    }

    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<HnswConfig, HnswConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One graph node: link lists for layers `0..=level`.
struct Node {
    links: Vec<Vec<u32>>,
}

/// Search-frontier entry ordered by `(dist2, id)`, so a max-heap's root is
/// the worst retained result and ties always rank by ascending id.
#[derive(Debug, Clone, Copy)]
struct Cand {
    dist2: f32,
    id: u64,
    node: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist2.total_cmp(&other.dist2).then_with(|| self.id.cmp(&other.id))
    }
}

/// Dense visited set over node indices; one word per 64 nodes, so clearing
/// between layer searches is a short memset rather than a hash-set drain.
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn for_nodes(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)] }
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Mark `i`; returns true when it was not yet visited.
    fn insert(&mut self, i: u32) -> bool {
        let word = &mut self.words[i as usize / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }
}

/// The HNSW index. See the module docs for structure and semantics.
pub struct Hnsw {
    cfg: HnswConfig,
    /// 1 / ln(m): the level-sampling temperature.
    level_mult: f64,
    store: VectorStore,
    nodes: Vec<Node>,
    /// Node index → external id (parallel to `nodes`).
    ids: Vec<u64>,
    /// Node index → tombstoned?
    dead: Vec<bool>,
    /// Live external id → node index.
    slots: HashMap<u64, u32>,
    live: usize,
    entry: Option<u32>,
    top_level: usize,
    rng: u64,
}

impl Hnsw {
    pub fn new(dim: usize, cfg: HnswConfig) -> Self {
        let cfg = HnswConfig {
            m: cfg.m.clamp(2, 128),
            ef_construction: cfg.ef_construction.max(cfg.m.clamp(2, 128)),
            ef_search: cfg.ef_search.max(1),
            ..cfg
        };
        Self {
            level_mult: 1.0 / (cfg.m as f64).ln(),
            store: VectorStore::new(dim, cfg.precision),
            rng: cfg.seed,
            cfg,
            nodes: Vec::new(),
            ids: Vec::new(),
            dead: Vec::new(),
            slots: HashMap::new(),
            live: 0,
            entry: None,
            top_level: 0,
        }
    }

    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Override the query beam width (e.g. for recall/latency sweeps).
    pub fn set_ef_search(&mut self, ef_search: usize) {
        self.cfg.ef_search = ef_search.max(1);
    }

    /// Total nodes ever inserted, tombstoned or not.
    pub fn graph_len(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes: vector arena + link lists + id tables.
    pub fn memory_bytes(&self) -> usize {
        let links: usize =
            self.nodes.iter().map(|n| n.links.iter().map(|l| l.len() * 4).sum::<usize>()).sum();
        self.store.data_bytes() + links + self.nodes.len() * (8 + 1 + 4)
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: tiny, seedable, and plenty for geometric level draws.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn sample_level(&mut self) -> usize {
        let unit = ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64); // [0, 1)
        let u = 1.0 - unit; // (0, 1]: ln never sees zero
        ((-u.ln() * self.level_mult) as usize).min(31)
    }

    fn cand(&self, node: u32, query: &[f32]) -> Cand {
        Cand { dist2: self.store.dist2(node, query), id: self.ids[node as usize], node }
    }

    /// One-at-a-time greedy descent on `layer`: hop to the best neighbour
    /// until no link improves on the current position.
    fn greedy_descend(&self, query: &[f32], mut ep: Cand, layer: usize) -> Cand {
        loop {
            let mut improved = false;
            for &nb in &self.nodes[ep.node as usize].links[layer] {
                let cand = self.cand(nb, query);
                if cand < ep {
                    ep = cand;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Bounded best-first beam on `layer`, returning up to `ef` nearest
    /// reachable nodes in ascending `(dist2, id)` order. Tombstoned nodes
    /// are traversed and returned — the caller filters.
    fn search_layer(
        &self,
        query: &[f32],
        ep: Cand,
        ef: usize,
        layer: usize,
        visited: &mut BitSet,
    ) -> Vec<Cand> {
        let ef = ef.max(1);
        visited.insert(ep.node);
        let mut frontier = BinaryHeap::new();
        let mut results: BinaryHeap<Cand> = BinaryHeap::new();
        frontier.push(Reverse(ep));
        results.push(ep);
        while let Some(Reverse(closest)) = frontier.pop() {
            if results.len() >= ef {
                if let Some(worst) = results.peek() {
                    if closest > *worst {
                        break; // every remaining candidate is farther still
                    }
                }
            }
            for &nb in &self.nodes[closest.node as usize].links[layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let cand = self.cand(nb, query);
                if results.len() < ef || results.peek().is_some_and(|worst| cand < *worst) {
                    frontier.push(Reverse(cand));
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results.into_sorted_vec()
    }

    /// Diversified neighbour selection (Malkov & Yashunin, Alg. 4): walk
    /// `cands` in ascending `(dist2, id)` order and keep one only when it
    /// is closer to the base point than to every neighbour already kept.
    /// Plain closest-`m` truncation clumps every link inside the local
    /// cluster and severs inter-cluster bridges — recall then collapses as
    /// clustered stores grow — while the dominance test spreads links
    /// across directions. May keep fewer than `m`; always keeps the
    /// closest candidate.
    fn select_diverse(&self, cands: &[Cand], m: usize, scratch: &mut Vec<f32>) -> Vec<Cand> {
        let mut kept: Vec<Cand> = Vec::with_capacity(m.min(cands.len()));
        for &c in cands {
            if kept.len() == m {
                break;
            }
            self.store.copy_row(c.node, scratch);
            let dominated = kept.iter().any(|s| self.store.dist2(s.node, scratch) < c.dist2);
            if !dominated {
                kept.push(c);
            }
        }
        kept
    }

    /// Re-select `node`'s layer-`layer` links down to `keep` via the
    /// diversity heuristic — the overflow path after a reverse link lands.
    fn prune_links(&mut self, node: u32, layer: usize, keep: usize, scratch: &mut Vec<f32>) {
        let mut base = Vec::with_capacity(self.store.dim());
        self.store.copy_row(node, &mut base);
        let mut ranked: Vec<Cand> = self.nodes[node as usize].links[layer]
            .iter()
            .map(|&nb| Cand {
                dist2: self.store.dist2(nb, &base),
                id: self.ids[nb as usize],
                node: nb,
            })
            .collect();
        ranked.sort_unstable();
        let kept = self.select_diverse(&ranked, keep, scratch);
        let links = &mut self.nodes[node as usize].links[layer];
        links.clear();
        links.extend(kept.into_iter().map(|c| c.node));
    }

    fn insert_vector(&mut self, id: u64, vector: &[f32]) -> Result<(), AnnError> {
        if vector.len() != self.store.dim() {
            return Err(AnnError::DimensionMismatch {
                expected: self.store.dim(),
                got: vector.len(),
            });
        }
        // Overwrite semantics: tombstone the old row, insert a fresh node.
        self.remove_id(id);

        let node = self.store.push(vector);
        let level = self.sample_level();
        self.nodes.push(Node { links: vec![Vec::new(); level + 1] });
        self.ids.push(id);
        self.dead.push(false);
        self.slots.insert(id, node);
        self.live += 1;

        let Some(entry) = self.entry else {
            self.entry = Some(node);
            self.top_level = level;
            return Ok(());
        };

        let mut ep = self.cand(entry, vector);
        let mut layer = self.top_level;
        while layer > level {
            ep = self.greedy_descend(vector, ep, layer);
            layer -= 1;
        }

        let mut visited = BitSet::for_nodes(self.nodes.len());
        let mut scratch = Vec::new();
        for l in (0..=level.min(self.top_level)).rev() {
            visited.clear();
            let found = self.search_layer(vector, ep, self.cfg.ef_construction, l, &mut visited);
            let max_links = if l == 0 { self.cfg.m * 2 } else { self.cfg.m };
            for cand in self.select_diverse(&found, self.cfg.m, &mut scratch) {
                self.nodes[node as usize].links[l].push(cand.node);
                self.nodes[cand.node as usize].links[l].push(node);
                if self.nodes[cand.node as usize].links[l].len() > max_links {
                    self.prune_links(cand.node, l, max_links, &mut scratch);
                }
            }
            if let Some(best) = found.first() {
                ep = *best;
            }
        }

        if level > self.top_level {
            self.top_level = level;
            self.entry = Some(node);
        }
        Ok(())
    }

    fn remove_id(&mut self, id: u64) -> bool {
        let Some(node) = self.slots.remove(&id) else {
            return false;
        };
        self.dead[node as usize] = true;
        self.live -= 1;
        true
    }

    /// Keep the closest `k` live results of an ascending beam.
    fn pick_live(&self, found: &[Cand], k: usize) -> Vec<Neighbor> {
        found
            .iter()
            .filter(|c| !self.dead[c.node as usize])
            .take(k)
            .map(|c| Neighbor { id: c.id, distance: c.dist2.sqrt() })
            .collect()
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        if query.len() != self.store.dim() {
            return Err(AnnError::DimensionMismatch {
                expected: self.store.dim(),
                got: query.len(),
            });
        }
        let Some(entry) = self.entry else {
            return Ok(Vec::new());
        };
        if k == 0 || self.live == 0 {
            return Ok(Vec::new());
        }
        let mut ep = self.cand(entry, query);
        for layer in (1..=self.top_level).rev() {
            ep = self.greedy_descend(query, ep, layer);
        }
        let mut visited = BitSet::for_nodes(self.nodes.len());
        let ef = self.cfg.ef_search.max(k);
        let found = self.search_layer(query, ep, ef, 0, &mut visited);
        let picked = self.pick_live(&found, k);
        if picked.len() >= k.min(self.live) || ef >= self.nodes.len() {
            return Ok(picked);
        }
        // Tombstones crowded the beam below k live answers: re-run once,
        // exhaustively. Unreachable on a tombstone-free index (every beam
        // entry is live, so `picked.len()` is `min(k, ef, reachable)` and
        // `ef >= k`).
        visited.clear();
        let found = self.search_layer(query, ep, self.nodes.len(), 0, &mut visited);
        Ok(self.pick_live(&found, k))
    }
}

impl VectorIndex for Hnsw {
    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), AnnError> {
        self.insert_vector(id, vector)
    }

    fn remove(&mut self, id: u64) -> bool {
        self.remove_id(id)
    }

    fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        self.search(query, k)
    }

    fn get(&self, id: u64) -> Option<Vec<f32>> {
        let node = *self.slots.get(&id)?;
        let mut out = Vec::with_capacity(self.store.dim());
        self.store.copy_row(node, &mut out);
        Some(out)
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, &[f32])) {
        // Node order, not HashMap order: iteration (and therefore any
        // rebuild built from it) is deterministic for a given history.
        let mut row = Vec::with_capacity(self.store.dim());
        for node in 0..self.nodes.len() {
            if self.dead[node] {
                continue;
            }
            self.store.copy_row(node as u32, &mut row);
            f(self.ids[node], &row);
        }
    }

    fn memory_bytes(&self) -> usize {
        Hnsw::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Deterministic spread-out synthetic vectors.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
        };
        (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect()
    }

    #[test]
    fn empty_and_zero_k_queries_are_empty() {
        let index = Hnsw::new(4, HnswConfig::default());
        assert!(index.knn(&[0.0; 4], 5).is_ok_and(|r| r.is_empty()));
        let mut index = Hnsw::new(4, HnswConfig::default());
        index.insert(1, &[0.0; 4]).expect("insert");
        assert!(index.knn(&[0.0; 4], 0).is_ok_and(|r| r.is_empty()));
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error_and_leaves_the_index_usable() {
        let mut index = Hnsw::new(4, HnswConfig::default());
        assert_eq!(
            index.insert(1, &[0.0; 3]),
            Err(AnnError::DimensionMismatch { expected: 4, got: 3 })
        );
        assert_eq!(
            index.knn(&[0.0; 5], 1),
            Err(AnnError::DimensionMismatch { expected: 4, got: 5 })
        );
        index.insert(1, &[0.0; 4]).expect("good insert after bad one");
        assert_eq!(index.len(), 1);
        let hits = index.knn(&[0.0; 4], 1).expect("knn after errors");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn exhaustive_search_is_exact_on_a_small_store() {
        let dim = 8;
        let data = vecs(200, dim);
        let cfg = HnswConfig::builder().ef_search(400).build().unwrap();
        let mut index = Hnsw::new(dim, cfg);
        for (i, v) in data.iter().enumerate() {
            index.insert(i as u64, v).expect("insert");
        }
        let query = &data[17];
        let hits = index.knn(query, 10).expect("knn");
        // Exact reference: full scan with the same tie-break.
        let mut all: Vec<(f32, u64)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d2: f32 = v.iter().zip(query).map(|(x, y)| (x - y) * (x - y)).sum();
                (d2.sqrt(), i as u64)
            })
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let expected: Vec<u64> = all.iter().take(10).map(|&(_, id)| id).collect();
        let got: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn overwrite_replaces_the_vector() {
        let mut index = Hnsw::new(2, HnswConfig::default());
        index.insert(7, &[0.0, 0.0]).expect("insert");
        index.insert(7, &[5.0, 5.0]).expect("overwrite");
        assert_eq!(index.len(), 1);
        assert_eq!(index.get(7), Some(vec![5.0, 5.0]));
        let hits = index.knn(&[5.0, 5.0], 1).expect("knn");
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn quantized_index_still_finds_close_neighbours() {
        let dim = 8;
        let data = vecs(100, dim);
        let cfg = HnswConfig::builder().precision(Precision::I8).ef_search(200).build().unwrap();
        let mut index = Hnsw::new(dim, cfg);
        for (i, v) in data.iter().enumerate() {
            index.insert(i as u64, v).expect("insert");
        }
        // The query IS a stored vector; quantization error is far smaller
        // than inter-point distances at this density, so it must come back.
        let hits = index.knn(&data[42], 1).expect("knn");
        assert_eq!(hits[0].id, 42);
    }
}
