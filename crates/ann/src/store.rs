//! Arena-backed, row-major vector storage with optional int8 scalar
//! quantization.
//!
//! Rows live in fixed-size chunks (~1 MiB each), so growing the store never
//! copies existing vectors and a million-row store is a handful of stable
//! allocations instead of a million boxed rows. Rows are append-only —
//! higher layers (the HNSW index) tombstone instead of compacting, which
//! keeps row ids stable for the life of the store.
//!
//! Quantization is per-row symmetric int8: each row stores `round(x/s)` in
//! `[-127, 127]` with scale `s = max|x| / 127`. Distances dequantize on the
//! fly (`code * s`), so a quantized store trades ~4× memory for a bounded
//! distance error — the `bench_search` sweep records the measured recall
//! cost next to the f32 baseline.

/// Element representation of a [`VectorStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Exact f32 rows: 4 bytes/component.
    F32,
    /// Per-row symmetric scalar-quantized int8: 1 byte/component + one
    /// f32 scale per row.
    I8,
}

enum Arena {
    F32(Vec<Box<[f32]>>),
    I8 { chunks: Vec<Box<[i8]>>, scales: Vec<f32> },
}

/// Append-only row-major vector arena. See the module docs.
pub struct VectorStore {
    dim: usize,
    len: usize,
    rows_per_chunk: usize,
    arena: Arena,
}

impl VectorStore {
    pub fn new(dim: usize, precision: Precision) -> Self {
        assert!(dim > 0, "vector store dimension must be positive");
        let bytes_per_row = dim
            * match precision {
                Precision::F32 => 4,
                Precision::I8 => 1,
            };
        // ~1 MiB chunks: big enough that chunk bookkeeping vanishes, small
        // enough that a tiny store doesn't commit megabytes up front.
        let rows_per_chunk = ((1 << 20) / bytes_per_row).max(1);
        let arena = match precision {
            Precision::F32 => Arena::F32(Vec::new()),
            Precision::I8 => Arena::I8 { chunks: Vec::new(), scales: Vec::new() },
        };
        Self { dim, len: 0, rows_per_chunk, arena }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows ever pushed (tombstoning is the caller's concern).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn precision(&self) -> Precision {
        match self.arena {
            Arena::F32(_) => Precision::F32,
            Arena::I8 { .. } => Precision::I8,
        }
    }

    /// Append one row; returns its stable row id.
    ///
    /// The caller (the index) validates dimensions at its API boundary, so
    /// a mismatch here is an internal invariant violation, not user input.
    pub fn push(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector store row has the wrong dimension");
        assert!(self.len < u32::MAX as usize, "vector store row ids exhausted");
        let row = self.len;
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        match &mut self.arena {
            Arena::F32(chunks) => {
                if chunk_idx == chunks.len() {
                    chunks.push(vec![0.0; self.rows_per_chunk * self.dim].into_boxed_slice());
                }
                chunks[chunk_idx][offset..offset + self.dim].copy_from_slice(vector);
            }
            Arena::I8 { chunks, scales } => {
                if chunk_idx == chunks.len() {
                    chunks.push(vec![0i8; self.rows_per_chunk * self.dim].into_boxed_slice());
                }
                let max_abs = vector.iter().fold(0.0f32, |m, x| m.max(x.abs()));
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                let out = &mut chunks[chunk_idx][offset..offset + self.dim];
                if scale > 0.0 {
                    for (c, &x) in out.iter_mut().zip(vector) {
                        *c = (x / scale).round().clamp(-127.0, 127.0) as i8;
                    }
                } else {
                    out.fill(0);
                }
                scales.push(scale);
            }
        }
        self.len += 1;
        row as u32
    }

    /// Squared Euclidean distance from `query` to stored row `row`.
    ///
    /// The f32 path accumulates in the same sequential order as the
    /// workspace `euclidean` kernel, so `dist2(...).sqrt()` is bit-for-bit
    /// the brute-force distance — backends agree on ties exactly.
    pub fn dist2(&self, row: u32, query: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        let row = row as usize;
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        match &self.arena {
            Arena::F32(chunks) => {
                let stored = &chunks[chunk_idx][offset..offset + self.dim];
                stored.iter().zip(query).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
            }
            Arena::I8 { chunks, scales } => {
                let stored = &chunks[chunk_idx][offset..offset + self.dim];
                let scale = scales[row];
                stored
                    .iter()
                    .zip(query)
                    .map(|(&c, y)| {
                        let x = c as f32 * scale;
                        (x - y) * (x - y)
                    })
                    .sum::<f32>()
            }
        }
    }

    /// Copy row `row` (dequantized) into `out`, replacing its contents.
    pub fn copy_row(&self, row: u32, out: &mut Vec<f32>) {
        let row = row as usize;
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        out.clear();
        match &self.arena {
            Arena::F32(chunks) => {
                out.extend_from_slice(&chunks[chunk_idx][offset..offset + self.dim]);
            }
            Arena::I8 { chunks, scales } => {
                let scale = scales[row];
                out.extend(
                    chunks[chunk_idx][offset..offset + self.dim].iter().map(|&c| c as f32 * scale),
                );
            }
        }
    }

    /// Resident bytes of the vector data (chunks + scales), for reporting.
    pub fn data_bytes(&self) -> usize {
        match &self.arena {
            Arena::F32(chunks) => chunks.len() * self.rows_per_chunk * self.dim * 4,
            Arena::I8 { chunks, scales } => {
                chunks.len() * self.rows_per_chunk * self.dim + scales.len() * 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_is_exact_across_chunks() {
        // dim large enough that a chunk holds few rows, forcing growth.
        let dim = 70_000; // > 1 MiB / 4 bytes per row → multiple chunks fast
        let mut store = VectorStore::new(dim, Precision::F32);
        let rows: Vec<Vec<f32>> =
            (0..5).map(|r| (0..dim).map(|j| (r * dim + j) as f32 * 0.25).collect()).collect();
        for r in &rows {
            store.push(r);
        }
        let mut out = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            store.copy_row(i as u32, &mut out);
            assert_eq!(&out, r);
        }
    }

    #[test]
    fn f32_dist2_matches_reference() {
        let mut store = VectorStore::new(3, Precision::F32);
        store.push(&[1.0, 2.0, 3.0]);
        let d2 = store.dist2(0, &[1.0, 0.0, 0.0]);
        assert_eq!(d2, 4.0 + 9.0);
    }

    #[test]
    fn i8_quantization_bounds_the_error() {
        let dim = 16;
        let mut store = VectorStore::new(dim, Precision::I8);
        let v: Vec<f32> = (0..dim).map(|j| (j as f32 - 7.5) * 0.3).collect();
        store.push(&v);
        let mut out = Vec::new();
        store.copy_row(0, &mut out);
        let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = max_abs / 127.0;
        for (x, y) in v.iter().zip(&out) {
            assert!((x - y).abs() <= step * 0.5 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn i8_zero_vector_roundtrips_to_zero() {
        let mut store = VectorStore::new(4, Precision::I8);
        store.push(&[0.0; 4]);
        let mut out = Vec::new();
        store.copy_row(0, &mut out);
        assert_eq!(out, [0.0; 4]);
        assert_eq!(store.dist2(0, &[0.0; 4]), 0.0);
    }

    #[test]
    fn i8_store_is_about_4x_smaller() {
        let dim = 64;
        let mut f = VectorStore::new(dim, Precision::F32);
        let mut q = VectorStore::new(dim, Precision::I8);
        let v: Vec<f32> = (0..dim).map(|j| j as f32).collect();
        // Fill past one chunk so both stores have committed real arenas.
        for _ in 0..40_000 {
            f.push(&v);
            q.push(&v);
        }
        assert!(f.data_bytes() > 3 * q.data_bytes(), "{} vs {}", f.data_bytes(), q.data_bytes());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dimension_push_is_an_internal_invariant() {
        let mut store = VectorStore::new(3, Precision::F32);
        store.push(&[0.0]);
    }
}
