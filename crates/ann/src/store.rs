//! Arena-backed, row-major vector storage with optional int8 scalar
//! quantization.
//!
//! Rows live in fixed-size chunks (~1 MiB each), so growing the store never
//! copies existing vectors and a million-row store is a handful of stable
//! allocations instead of a million boxed rows. Rows are append-only —
//! higher layers (the HNSW index) tombstone instead of compacting, which
//! keeps row ids stable for the life of the store.
//!
//! Reduced precision comes in two flavours. `F16` stores IEEE binary16
//! (round-to-nearest-even) for a 2× memory cut at ~3 decimal digits of
//! per-component accuracy — the serving default, because kNN recall is
//! statistically indistinguishable from f32. `I8` is per-row symmetric
//! int8: each row stores `round(x/s)` in `[-127, 127]` with scale
//! `s = max|x| / 127`, a 4× cut with a bounded distance error. Both
//! dequantize on the fly in `dist2`; the `bench_search` sweep records the
//! measured recall cost of each next to the f32 baseline.

/// Element representation of a [`VectorStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Exact f32 rows: 4 bytes/component.
    F32,
    /// IEEE binary16 rows: 2 bytes/component, round-to-nearest-even.
    F16,
    /// Per-row symmetric scalar-quantized int8: 1 byte/component + one
    /// f32 scale per row.
    I8,
}

enum Arena {
    F32(Vec<Box<[f32]>>),
    F16(Vec<Box<[u16]>>),
    I8 { chunks: Vec<Box<[i8]>>, scales: Vec<f32> },
}

/// f32 → IEEE binary16 bits with round-to-nearest-even, the same rounding
/// hardware `vcvtps2ph` performs. Handles subnormals, overflow-to-inf and
/// NaN payloads explicitly — embeddings never hit those edges, but the
/// codec must not corrupt them silently if they ever appear.
pub(crate) fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp32 = ((x >> 23) & 0xff) as i32;
    let man = x & 0x007f_ffff;
    if exp32 == 0xff {
        // Inf / NaN: keep the top mantissa bits, force quiet on a payload
        // that would otherwise truncate to infinity.
        let payload = (man >> 13) as u16;
        return sign | 0x7c00 | if man != 0 && payload == 0 { 0x200 } else { payload };
    }
    let exp = exp32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if exp <= 0 {
        if exp < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal half: shift the (implicit-1) mantissa into place.
        let full = man | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let half = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let midpoint = 1u32 << (shift - 1);
        let round_up = rem > midpoint || (rem == midpoint && half & 1 == 1);
        return sign | (half + round_up as u32) as u16;
    }
    let half = ((exp as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && half & 1 == 1);
    // The carry from rounding may bump the exponent (and reach infinity);
    // both are exactly the RNE result.
    sign | (half + round_up as u32) as u16
}

/// IEEE binary16 bits → f32, exact (every half value is representable).
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    if exp == 0 {
        // ±0 and subnormals: value = man · 2⁻²⁴, exact in f32.
        let mag = man as f32 * (1.0 / 16_777_216.0);
        return if sign != 0 { -mag } else { mag };
    }
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Append-only row-major vector arena. See the module docs.
pub struct VectorStore {
    dim: usize,
    len: usize,
    rows_per_chunk: usize,
    arena: Arena,
}

impl VectorStore {
    pub fn new(dim: usize, precision: Precision) -> Self {
        assert!(dim > 0, "vector store dimension must be positive");
        let bytes_per_row = dim
            * match precision {
                Precision::F32 => 4,
                Precision::F16 => 2,
                Precision::I8 => 1,
            };
        // ~1 MiB chunks: big enough that chunk bookkeeping vanishes, small
        // enough that a tiny store doesn't commit megabytes up front.
        let rows_per_chunk = ((1 << 20) / bytes_per_row).max(1);
        let arena = match precision {
            Precision::F32 => Arena::F32(Vec::new()),
            Precision::F16 => Arena::F16(Vec::new()),
            Precision::I8 => Arena::I8 { chunks: Vec::new(), scales: Vec::new() },
        };
        Self { dim, len: 0, rows_per_chunk, arena }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows ever pushed (tombstoning is the caller's concern).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn precision(&self) -> Precision {
        match self.arena {
            Arena::F32(_) => Precision::F32,
            Arena::F16(_) => Precision::F16,
            Arena::I8 { .. } => Precision::I8,
        }
    }

    /// Append one row; returns its stable row id.
    ///
    /// The caller (the index) validates dimensions at its API boundary, so
    /// a mismatch here is an internal invariant violation, not user input.
    pub fn push(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector store row has the wrong dimension");
        assert!(self.len < u32::MAX as usize, "vector store row ids exhausted");
        let row = self.len;
        let chunk_idx = row / self.rows_per_chunk;
        let dim = self.dim;
        let rows_per_chunk = self.rows_per_chunk;
        match &mut self.arena {
            Arena::F32(chunks) => {
                if chunk_idx == chunks.len() {
                    chunks.push(vec![0.0; rows_per_chunk * dim].into_boxed_slice());
                }
            }
            Arena::F16(chunks) => {
                if chunk_idx == chunks.len() {
                    chunks.push(vec![0u16; rows_per_chunk * dim].into_boxed_slice());
                }
            }
            Arena::I8 { chunks, scales } => {
                if chunk_idx == chunks.len() {
                    chunks.push(vec![0i8; rows_per_chunk * dim].into_boxed_slice());
                }
                scales.push(0.0);
            }
        }
        self.len += 1;
        self.encode_row(row, vector);
        row as u32
    }

    /// Re-encode an existing row in place with the store's codec — the
    /// overwrite/compaction primitive higher layers (the brute-force
    /// embedding index) build id-stable updates on.
    pub fn overwrite(&mut self, row: u32, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector store row has the wrong dimension");
        assert!((row as usize) < self.len, "vector store overwrite past the end");
        self.encode_row(row as usize, vector);
    }

    /// Drop every row at index `new_len` and beyond (no-op when already
    /// shorter). Fully-vacated tail chunks are freed so `data_bytes`
    /// tracks the live rows; row ids below `new_len` are untouched.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.len = new_len;
        let needed = new_len.div_ceil(self.rows_per_chunk);
        match &mut self.arena {
            Arena::F32(chunks) => chunks.truncate(needed),
            Arena::F16(chunks) => chunks.truncate(needed),
            Arena::I8 { chunks, scales } => {
                chunks.truncate(needed);
                scales.truncate(new_len);
            }
        }
    }

    fn encode_row(&mut self, row: usize, vector: &[f32]) {
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        match &mut self.arena {
            Arena::F32(chunks) => {
                chunks[chunk_idx][offset..offset + self.dim].copy_from_slice(vector);
            }
            Arena::F16(chunks) => {
                let out = &mut chunks[chunk_idx][offset..offset + self.dim];
                for (c, &x) in out.iter_mut().zip(vector) {
                    *c = f32_to_f16_bits(x);
                }
            }
            Arena::I8 { chunks, scales } => {
                let max_abs = vector.iter().fold(0.0f32, |m, x| m.max(x.abs()));
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                let out = &mut chunks[chunk_idx][offset..offset + self.dim];
                if scale > 0.0 {
                    for (c, &x) in out.iter_mut().zip(vector) {
                        *c = (x / scale).round().clamp(-127.0, 127.0) as i8;
                    }
                } else {
                    out.fill(0);
                }
                scales[row] = scale;
            }
        }
    }

    /// Squared Euclidean distance from `query` to stored row `row`.
    ///
    /// The f32 path accumulates in the same sequential order as the
    /// workspace `euclidean` kernel, so `dist2(...).sqrt()` is bit-for-bit
    /// the brute-force distance — backends agree on ties exactly.
    pub fn dist2(&self, row: u32, query: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        let row = row as usize;
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        match &self.arena {
            Arena::F32(chunks) => {
                let stored = &chunks[chunk_idx][offset..offset + self.dim];
                stored.iter().zip(query).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
            }
            Arena::F16(chunks) => {
                let stored = &chunks[chunk_idx][offset..offset + self.dim];
                stored
                    .iter()
                    .zip(query)
                    .map(|(&h, y)| {
                        let x = f16_bits_to_f32(h);
                        (x - y) * (x - y)
                    })
                    .sum::<f32>()
            }
            Arena::I8 { chunks, scales } => {
                let stored = &chunks[chunk_idx][offset..offset + self.dim];
                let scale = scales[row];
                stored
                    .iter()
                    .zip(query)
                    .map(|(&c, y)| {
                        let x = c as f32 * scale;
                        (x - y) * (x - y)
                    })
                    .sum::<f32>()
            }
        }
    }

    /// Copy row `row` (dequantized) into `out`, replacing its contents.
    pub fn copy_row(&self, row: u32, out: &mut Vec<f32>) {
        let row = row as usize;
        let chunk_idx = row / self.rows_per_chunk;
        let offset = (row % self.rows_per_chunk) * self.dim;
        out.clear();
        match &self.arena {
            Arena::F32(chunks) => {
                out.extend_from_slice(&chunks[chunk_idx][offset..offset + self.dim]);
            }
            Arena::F16(chunks) => {
                out.extend(
                    chunks[chunk_idx][offset..offset + self.dim]
                        .iter()
                        .map(|&h| f16_bits_to_f32(h)),
                );
            }
            Arena::I8 { chunks, scales } => {
                let scale = scales[row];
                out.extend(
                    chunks[chunk_idx][offset..offset + self.dim].iter().map(|&c| c as f32 * scale),
                );
            }
        }
    }

    /// Resident bytes of the vector data (chunks + scales), for reporting.
    pub fn data_bytes(&self) -> usize {
        match &self.arena {
            Arena::F32(chunks) => chunks.len() * self.rows_per_chunk * self.dim * 4,
            Arena::F16(chunks) => chunks.len() * self.rows_per_chunk * self.dim * 2,
            Arena::I8 { chunks, scales } => {
                chunks.len() * self.rows_per_chunk * self.dim + scales.len() * 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_is_exact_across_chunks() {
        // dim large enough that a chunk holds few rows, forcing growth.
        let dim = 70_000; // > 1 MiB / 4 bytes per row → multiple chunks fast
        let mut store = VectorStore::new(dim, Precision::F32);
        let rows: Vec<Vec<f32>> =
            (0..5).map(|r| (0..dim).map(|j| (r * dim + j) as f32 * 0.25).collect()).collect();
        for r in &rows {
            store.push(r);
        }
        let mut out = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            store.copy_row(i as u32, &mut out);
            assert_eq!(&out, r);
        }
    }

    #[test]
    fn f32_dist2_matches_reference() {
        let mut store = VectorStore::new(3, Precision::F32);
        store.push(&[1.0, 2.0, 3.0]);
        let d2 = store.dist2(0, &[1.0, 0.0, 0.0]);
        assert_eq!(d2, 4.0 + 9.0);
    }

    #[test]
    fn i8_quantization_bounds_the_error() {
        let dim = 16;
        let mut store = VectorStore::new(dim, Precision::I8);
        let v: Vec<f32> = (0..dim).map(|j| (j as f32 - 7.5) * 0.3).collect();
        store.push(&v);
        let mut out = Vec::new();
        store.copy_row(0, &mut out);
        let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = max_abs / 127.0;
        for (x, y) in v.iter().zip(&out) {
            assert!((x - y).abs() <= step * 0.5 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn i8_zero_vector_roundtrips_to_zero() {
        let mut store = VectorStore::new(4, Precision::I8);
        store.push(&[0.0; 4]);
        let mut out = Vec::new();
        store.copy_row(0, &mut out);
        assert_eq!(out, [0.0; 4]);
        assert_eq!(store.dist2(0, &[0.0; 4]), 0.0);
    }

    #[test]
    fn i8_store_is_about_4x_smaller() {
        let dim = 64;
        let mut f = VectorStore::new(dim, Precision::F32);
        let mut q = VectorStore::new(dim, Precision::I8);
        let v: Vec<f32> = (0..dim).map(|j| j as f32).collect();
        // Fill past one chunk so both stores have committed real arenas.
        for _ in 0..40_000 {
            f.push(&v);
            q.push(&v);
        }
        assert!(f.data_bytes() > 3 * q.data_bytes(), "{} vs {}", f.data_bytes(), q.data_bytes());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dimension_push_is_an_internal_invariant() {
        let mut store = VectorStore::new(3, Precision::F32);
        store.push(&[0.0]);
    }

    #[test]
    fn f16_codec_is_exact_on_halves_and_rne_elsewhere() {
        // Exactly representable values round-trip bit-for-bit.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 6.1035156e-5] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v, "{v}");
        }
        // Relative error of normal halves is ≤ 2⁻¹¹ (ties-to-even).
        let mut state = 0x1234_5678u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 8.0;
            let r = f16_bits_to_f32(f32_to_f16_bits(v));
            assert!((r - v).abs() <= v.abs() * 4.9e-4 + 6e-8, "{v} -> {r}");
        }
        // Edge behavior: overflow saturates to inf, NaN stays NaN.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), f32::INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_store_roundtrips_and_halves_the_bytes() {
        let dim = 64;
        let mut f = VectorStore::new(dim, Precision::F32);
        let mut h = VectorStore::new(dim, Precision::F16);
        let v: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.37).sin()).collect();
        for _ in 0..40_000 {
            f.push(&v);
            h.push(&v);
        }
        let mut out = Vec::new();
        h.copy_row(17, &mut out);
        for (x, y) in v.iter().zip(&out) {
            assert!((x - y).abs() <= x.abs() * 4.9e-4 + 6.2e-5, "{x} vs {y}");
        }
        assert!(f.data_bytes() > (2 * h.data_bytes()).saturating_sub(f.data_bytes() / 8));
        assert!(h.data_bytes() * 2 <= f.data_bytes() + f.data_bytes() / 8);
    }

    #[test]
    fn overwrite_and_truncate_update_rows_in_place() {
        for precision in [Precision::F32, Precision::F16, Precision::I8] {
            let mut store = VectorStore::new(4, precision);
            store.push(&[1.0, 2.0, 3.0, 4.0]);
            store.push(&[5.0, 6.0, 7.0, 8.0]);
            store.push(&[9.0, 10.0, 11.0, 12.0]);
            // Overwrite re-encodes (including the I8 per-row scale).
            store.overwrite(0, &[120.0, 0.0, -120.0, 60.0]);
            let mut out = Vec::new();
            store.copy_row(0, &mut out);
            for (x, y) in [120.0f32, 0.0, -120.0, 60.0].iter().zip(&out) {
                assert!((x - y).abs() <= 0.5, "{precision:?}: {x} vs {y}");
            }
            store.truncate(1);
            assert_eq!(store.len(), 1);
            // Push after truncate reuses the id space from the cut point.
            let id = store.push(&[0.5, 0.5, 0.5, 0.5]);
            assert_eq!(id, 1);
            store.copy_row(1, &mut out);
            assert!((out[0] - 0.5).abs() <= 0.01, "{precision:?}");
        }
    }

    #[test]
    fn truncate_frees_vacated_chunks() {
        let dim = 70_000; // few rows per chunk
        let mut store = VectorStore::new(dim, Precision::F16);
        let v = vec![0.25f32; dim];
        for _ in 0..8 {
            store.push(&v);
        }
        let full = store.data_bytes();
        store.truncate(1);
        assert!(store.data_bytes() < full);
        let mut out = Vec::new();
        store.copy_row(0, &mut out);
        assert_eq!(out[0], 0.25);
    }
}
