//! `start-ann`: the similarity-search layer under the serving tier.
//!
//! The paper's own efficiency story (Fig. 4/10) is a similarity-search
//! workload — embed every trajectory once, answer queries by nearest
//! neighbour in embedding space. At the scale the service is meant to hold
//! (ROADMAP item 2: millions of embeddings) a brute-force scan is dead on
//! arrival, so this crate provides the two pieces the service swaps between:
//!
//! - [`VectorIndex`] — the capability every kNN backend implements:
//!   incremental insert, removal, deterministic k-nearest queries, and
//!   iteration (for rebuilds). The serving crate's brute-force
//!   `EmbeddingStore` implements it as the *exactness reference*; the
//!   [`hnsw::Hnsw`] index implements it as the *scaling path*.
//! - [`store::VectorStore`] — an arena-backed, row-major vector arena with
//!   optional int8 scalar quantization, so a million 64-d embeddings cost
//!   ~64 MB (f32) or ~17 MB (int8) with no per-row allocation.
//! - [`TopK`] — bounded max-heap k-smallest selection with the workspace's
//!   deterministic tie-break (distance, then smaller id), shared by the
//!   brute-force scan and the HNSW result stage so both backends rank ties
//!   identically.
//!
//! Everything here is deterministic: HNSW level draws come from a seeded
//! SplitMix64, heaps order by `(f32::total_cmp, id)`, and no iteration
//! order depends on hashing.

use std::collections::BinaryHeap;

pub mod hnsw;
pub mod store;

pub use hnsw::{Hnsw, HnswConfig, HnswConfigBuilder, HnswConfigError};
pub use store::{Precision, VectorStore};

/// One kNN answer: an indexed id and its (Euclidean) distance to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    pub id: u64,
    pub distance: f32,
}

/// Typed failures of the index layer.
///
/// Indexes validate every vector at the API boundary instead of asserting,
/// so one malformed request can never take down a service holding the
/// index — the caller gets the error, the index stays usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnError {
    /// The vector's length does not match the index dimension.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for AnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, got } => {
                write!(f, "vector dimension mismatch: index holds {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for AnnError {}

/// The capability contract of a kNN backend.
///
/// Implementations must be deterministic: equal-distance results rank by
/// ascending id, and `knn` on the same index state always returns the same
/// answer. `insert` on an already-present id overwrites it.
pub trait VectorIndex: Send + Sync {
    /// The vector dimensionality every call must match.
    fn dim(&self) -> usize;

    /// Number of live (queryable) vectors.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or overwrite the vector for `id`.
    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), AnnError>;

    /// Remove `id`; returns whether it was present.
    fn remove(&mut self, id: u64) -> bool;

    /// The `k` nearest live vectors to `query` by Euclidean distance,
    /// closest first; ties break toward the smaller id.
    fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError>;

    /// The stored vector for `id` (dequantized copy), if live.
    fn get(&self, id: u64) -> Option<Vec<f32>>;

    /// Visit every live `(id, vector)` pair, in unspecified order — the
    /// rebuild path when the service swaps one index kind for another.
    fn for_each(&self, f: &mut dyn FnMut(u64, &[f32]));

    /// Approximate resident bytes of the index's vector payload (and graph,
    /// where one exists) — what the serving tier reports when comparing
    /// precision configurations.
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Heap key ordered by `(distance, id)` under `total_cmp`, so a max-heap's
/// root is the *worst* retained neighbour and equal distances rank by id.
#[derive(Debug, Clone, Copy)]
struct WorstFirst {
    distance: f32,
    id: u64,
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.total_cmp(&other.distance).then_with(|| self.id.cmp(&other.id))
    }
}

/// Bounded k-smallest selection: O(N log k) instead of sorting all N
/// candidates, with the same deterministic order a full
/// sort-by-`(distance, id)` would produce.
///
/// This is the selection kernel behind every brute-force scan and the HNSW
/// result stage; keeping it in one place keeps the tie-break rule in one
/// place too.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k.min(1 << 16).saturating_add(1)) }
    }

    /// Offer one candidate; kept only while it beats the current worst.
    pub fn push(&mut self, id: u64, distance: f32) {
        let key = WorstFirst { distance, id };
        if self.heap.len() < self.k {
            self.heap.push(key);
        } else if let Some(worst) = self.heap.peek() {
            if key < *worst {
                self.heap.pop();
                self.heap.push(key);
            }
        }
    }

    /// Current worst retained key, if the heap is full — candidates that
    /// don't beat it can be skipped without pushing.
    pub fn worst(&self) -> Option<(u64, f32)> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|w| (w.id, w.distance))
        }
    }

    /// The retained neighbours, closest first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|w| Neighbor { id: w.id, distance: w.distance })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sort(mut cands: Vec<(u64, f32)>, k: usize) -> Vec<Neighbor> {
        cands.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        cands.truncate(k);
        cands.into_iter().map(|(id, distance)| Neighbor { id, distance }).collect()
    }

    #[test]
    fn topk_matches_full_sort_with_ties() {
        let cands: Vec<(u64, f32)> =
            vec![(5, 1.0), (2, 1.0), (9, 0.5), (1, 2.0), (7, 0.5), (3, 1.0)];
        for k in 0..=cands.len() + 1 {
            let mut top = TopK::new(k);
            for &(id, d) in &cands {
                top.push(id, d);
            }
            assert_eq!(top.into_sorted(), full_sort(cands.clone(), k), "k={k}");
        }
    }

    #[test]
    fn topk_zero_k_is_empty() {
        let mut top = TopK::new(0);
        top.push(1, 0.0);
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn worst_reports_only_when_full() {
        let mut top = TopK::new(2);
        assert_eq!(top.worst(), None);
        top.push(1, 1.0);
        assert_eq!(top.worst(), None);
        top.push(2, 3.0);
        assert_eq!(top.worst(), Some((2, 3.0)));
        top.push(3, 0.5);
        assert_eq!(top.worst(), Some((1, 1.0)));
    }
}
