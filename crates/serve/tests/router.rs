//! End-to-end tests of the sharded `Router`: fingerprint shard purity, the
//! bitwise contract against a single `EmbeddingService` for any replica
//! count, scatter-gather kNN agreement, checkpoint hot-swap (version-tagged
//! replies, atomic refusal, stale-index tagging), the live
//! trainer-to-router publish flow, and the sweep orchestrator round trip.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use start_core::encoder::{fingerprint_view, EncodeOptions};
use start_core::{pretrain_with_publish, PretrainConfig, StartConfig, StartModel};
use start_nn::PublishCadence;
use start_roadnet::synth::{generate_city, City, CityConfig};
use start_serve::{
    emit_result, run_sweep, EmbeddingService, Router, RouterConfig, ServeConfig, ServeError,
    SweepError, SweepJob,
};
use start_traj::{PreprocessConfig, SimConfig, Simulator, TrajDataset, TrajView, Trajectory};

struct Fixture {
    city: City,
    model: Arc<StartModel>,
    data: Vec<Trajectory>,
    /// `Encoder::encode` with default options — the bits every router
    /// configuration must reproduce exactly.
    reference: Vec<Vec<f32>>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let city = generate_city("router-test", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 24, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let model = Arc::new(StartModel::new(StartConfig::test_scale(), &city.net, None, None, 41));
        let reference = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        Fixture { city, model, data, reference }
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: component {i} diverged ({x} vs {y})");
    }
}

fn router_config(replicas: usize, serve: ServeConfig) -> RouterConfig {
    RouterConfig::builder().replicas(replicas).serve(serve).build().unwrap()
}

fn cache_off(workers: usize) -> ServeConfig {
    ServeConfig::builder().workers(workers).cache_capacity(0).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A trajectory's shard is a pure content function: stable across
    /// router instances and per-replica worker counts, always below the
    /// replica count, and exactly the folded 128-bit fingerprint mod
    /// replicas (folded so replica selection stays independent of the
    /// cache's internal low-bit sharding — see `fold_fingerprint`).
    #[test]
    fn shard_assignment_is_pure_and_stable(
        idx in 0..24usize,
        replicas in 1..6usize,
        workers in 1..4usize,
    ) {
        let fix = fixture();
        let t = &fix.data[idx];
        let a = Router::start(Arc::clone(&fix.model), router_config(replicas, cache_off(1)));
        let b = Router::start(Arc::clone(&fix.model), router_config(replicas, cache_off(workers)));
        let shard = a.shard_for(t);
        prop_assert!(shard < replicas);
        prop_assert_eq!(shard, b.shard_for(t), "shard moved between router instances");
        let expected = (start_serve::fold_fingerprint(fingerprint_view(&TrajView::identity(t)))
            % replicas as u64) as usize;
        prop_assert_eq!(shard, expected, "shard is not the folded fingerprint mod replicas");
        a.shutdown();
        b.shutdown();
    }
}

/// The router is a scheduler over replicas, not a different encoder: for
/// every replica count its answers are bit-for-bit the offline encoder's —
/// and each request really lands on its fingerprint shard.
#[test]
fn router_encode_is_bitwise_the_encoder_answer_for_any_replica_count() {
    let fix = fixture();
    for replicas in 1..=5usize {
        let router = Router::start(Arc::clone(&fix.model), router_config(replicas, cache_off(2)));
        let mut expected_per_shard = vec![0u64; replicas];
        for t in &fix.data {
            expected_per_shard[router.shard_for(t)] += 1;
        }
        let served = router.encode(&fix.data).unwrap();
        for (i, (s, r)) in served.iter().zip(&fix.reference).enumerate() {
            assert_bits_eq(s, r, &format!("replicas={replicas} trajectory {i}"));
        }
        let stats = router.shutdown();
        assert_eq!(stats.completed(), fix.data.len() as u64);
        assert_eq!(stats.failed(), 0);
        let per_shard: Vec<u64> = stats.replicas.iter().map(|s| s.submitted).collect();
        assert_eq!(per_shard, expected_per_shard, "replicas={replicas}: requests left their shard");
    }
}

/// Scatter-gather kNN reproduces the single-service answer exactly: same
/// ids, same order, same distance bits — including the `(distance, id)`
/// tie-break.
#[test]
fn router_knn_matches_the_single_service_bitwise() {
    let fix = fixture();
    let single =
        EmbeddingService::start(Arc::clone(&fix.model), ServeConfig::builder().build().unwrap());
    let router = Router::start(
        Arc::clone(&fix.model),
        router_config(3, ServeConfig::builder().build().unwrap()),
    );
    for (i, t) in fix.data.iter().enumerate() {
        single.index(i as u64, t).unwrap();
        router.index(i as u64, t).unwrap();
    }
    assert_eq!(router.indexed_len(), fix.data.len());
    for t in fix.data.iter().take(8) {
        let expected = single.knn(t, 5).unwrap();
        let got = router.knn(t, 5).unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.id, e.id, "kNN ids diverged from the single service");
            assert_eq!(g.distance.to_bits(), e.distance.to_bits(), "distance bits diverged");
        }
    }
    let _ = single.shutdown();
    let _ = router.shutdown();
}

/// `Router::publish` with queued (not yet in-flight) requests: nothing is
/// dropped, every reply carries the post-swap version, and the bits are
/// exactly the new checkpoint's offline encode.
#[test]
fn publish_with_queued_requests_drops_nothing_and_versions_every_reply() {
    let fix = fixture();
    let next = Arc::new(StartModel::new(StartConfig::test_scale(), &fix.city.net, None, None, 43));
    let next_reference = next.encoder().encode(&fix.data, &EncodeOptions::default()).unwrap();

    // Workers sleep past the publish, so the whole stream is still queued
    // at swap time and must be answered — on the new version.
    let serve = ServeConfig::builder()
        .workers(1)
        .cache_capacity(0)
        .worker_warmup(Duration::from_millis(150))
        .build()
        .unwrap();
    let router = Router::start(Arc::clone(&fix.model), router_config(2, serve));
    let handles: Vec<_> = fix.data.iter().map(|t| router.submit(t).unwrap()).collect();

    let reports = router.publish(Arc::clone(&next)).unwrap();
    assert_eq!(reports.len(), 2);
    for r in &reports {
        assert_eq!(r.previous_version, 0);
        assert_eq!(r.version, 1);
    }
    assert_eq!(router.model_version(), 1);

    for (i, h) in handles.into_iter().enumerate() {
        let (emb, version) = h
            .wait_versioned()
            .unwrap_or_else(|e| panic!("request {i} dropped across the swap: {e}"));
        assert_eq!(version, 1, "request {i} answered by a retired version");
        assert_bits_eq(&emb, &next_reference[i], &format!("post-swap request {i}"));
    }
    let stats = router.shutdown();
    assert_eq!(stats.completed(), fix.data.len() as u64);
    assert_eq!(stats.failed(), 0);
}

/// A wrong-dimension checkpoint is refused atomically: a typed error, no
/// replica swapped, and the router keeps serving version 0 afterwards.
#[test]
fn wrong_dimension_checkpoint_is_refused_atomically() {
    let fix = fixture();
    let dim = fix.model.cfg.dim;
    let bad_cfg = fix.model.cfg.to_builder().dim(dim * 2).build().unwrap();
    let bad = Arc::new(StartModel::new(bad_cfg, &fix.city.net, None, None, 44));

    let router = Router::start(Arc::clone(&fix.model), router_config(3, cache_off(1)));
    let err = router.publish(bad).unwrap_err();
    assert_eq!(err, ServeError::DimensionMismatch { expected: dim, got: dim * 2 });
    assert_eq!(router.model_version(), 0, "a refused publish must not bump any replica");
    for s in &router.stats().replicas {
        assert_eq!(s.model_version, 0);
    }

    // A matching checkpoint still goes through afterwards, in lockstep.
    let good = Arc::new(StartModel::new(StartConfig::test_scale(), &fix.city.net, None, None, 45));
    router.publish(good).unwrap();
    assert_eq!(router.model_version(), 1);
    let _ = router.shutdown();
}

/// Hot swaps tag the kNN entries indexed under retired versions; the
/// re-indexing worklist shrinks as ids are re-indexed or removed.
#[test]
fn hot_swap_tags_stale_index_entries_until_reindexed() {
    let fix = fixture();
    let router = Router::start(Arc::clone(&fix.model), router_config(2, cache_off(1)));
    for (i, t) in fix.data.iter().take(10).enumerate() {
        router.index(i as u64, t).unwrap();
    }
    assert_eq!(router.stats().stale_index_entries(), 0);

    let next = Arc::new(StartModel::new(StartConfig::test_scale(), &fix.city.net, None, None, 46));
    router.publish(next).unwrap();
    assert_eq!(router.stats().stale_index_entries(), 10);
    assert_eq!(router.stale_indexed_ids(), (0..10).collect::<Vec<u64>>());

    // Re-indexing under the new version clears the tag; removal drops it.
    router.index(3, &fix.data[3]).unwrap();
    assert!(router.remove_index(7));
    let stale = router.stale_indexed_ids();
    assert_eq!(stale.len(), 8);
    assert!(!stale.contains(&3) && !stale.contains(&7));
    let _ = router.shutdown();
}

fn tiny_dataset(n: usize, seed: u64) -> TrajDataset {
    let city = generate_city("rt", &CityConfig { width: 8, height: 8, ..CityConfig::tiny() });
    let sim = SimConfig { num_trajectories: n, num_drivers: 8, seed, ..Default::default() };
    TrajDataset::build(city, sim, &PreprocessConfig::default())
}

fn tiny_model(ds: &TrajDataset, seed: u64) -> StartModel {
    let cfg = StartConfig::builder()
        .dim(32)
        .gat_heads(vec![2])
        .encoder_layers(2)
        .encoder_heads(2)
        .ffn_hidden(32)
        .build()
        .expect("router-test config is valid");
    StartModel::new(cfg, &ds.city.net, Some(&ds.transfer), None, seed)
}

/// The real trainer-to-router flow: `pretrain_with_publish` snapshots the
/// weights on a cadence (via `adopt_weights`) into a *live* router that is
/// answering requests throughout. Every reply must be tagged with exactly
/// one published version and bitwise match that version's offline encode —
/// zero drops, zero stale bits, no `ModelPoisoned`.
#[test]
fn training_publishes_into_a_live_router_with_every_reply_pre_or_post_swap() {
    let ds = tiny_dataset(120, 21);
    let mut model = tiny_model(&ds, 22);
    let queries: Vec<Trajectory> = ds.test().iter().take(8).cloned().collect();
    let opts = EncodeOptions::default();

    // Version-0 serving snapshot of the untrained weights.
    let snapshot = |src: &StartModel| {
        let mut snap = tiny_model(&ds, 999);
        let adopted = snap.adopt_weights(src);
        assert!(adopted > 0, "checkpoint snapshot adopted no tensors");
        Arc::new(snap)
    };
    let router = Router::start(snapshot(&model), router_config(2, cache_off(1)));

    // references[v] = offline encode of `queries` under version-v weights.
    let mut references: Vec<Vec<Vec<f32>>> = vec![model.encoder().encode(&queries, &opts).unwrap()];
    let in_flight: Mutex<Vec<(usize, start_serve::EmbeddingHandle)>> = Mutex::new(Vec::new());

    let submit_round =
        |router: &Router, sink: &Mutex<Vec<(usize, start_serve::EmbeddingHandle)>>| {
            let mut sink = sink.lock().unwrap();
            for (qi, q) in queries.iter().enumerate() {
                sink.push((qi, router.submit(q).unwrap()));
            }
        };

    submit_round(&router, &in_flight);
    pretrain_with_publish(
        &mut model,
        ds.train(),
        &ds.historical,
        &PretrainConfig {
            epochs: 1,
            batch_size: 8,
            max_steps_per_epoch: Some(6),
            ..Default::default()
        },
        PublishCadence::every(2),
        &mut |trained, _step| {
            // Keep requests in flight across the swap, then publish the
            // fresh checkpoint and record its offline reference.
            submit_round(&router, &in_flight);
            let snap = snapshot(trained);
            references.push(snap.encoder().encode(&queries, &opts).unwrap());
            router.publish(snap).unwrap();
        },
    );
    submit_round(&router, &in_flight);

    let published = references.len() as u64 - 1;
    assert!(published >= 3, "cadence every(2) over 6 steps must publish at least 3 times");
    assert_eq!(router.model_version(), published);

    let handles = in_flight.into_inner().unwrap();
    let mut seen_versions = vec![0u64; references.len()];
    for (qi, h) in handles {
        let (emb, version) = h
            .wait_versioned()
            .unwrap_or_else(|e| panic!("query {qi} dropped during training publishes: {e}"));
        let reference = references
            .get(version as usize)
            .unwrap_or_else(|| panic!("reply tagged with unpublished version {version}"));
        assert_bits_eq(&emb, &reference[qi], &format!("query {qi} at version {version}"));
        seen_versions[version as usize] += 1;
    }
    let total: u64 = seen_versions.iter().sum();
    assert_eq!(total, (published + 2) * queries.len() as u64, "a reply went missing");
    let stats = router.shutdown();
    assert_eq!(stats.failed(), 0, "no reply may fail across hot swaps");
}

// ---------------------------------------------------------------------------
// Sweep orchestrator round trip (parent/child over this very test binary)
// ---------------------------------------------------------------------------

/// Child half of the round trip: only does anything when re-invoked by
/// `sweep_round_trip_merges_results_in_job_order` with the payload env var.
#[test]
fn sweep_child_helper() {
    let Ok(payload) = std::env::var("ROUTER_TEST_SWEEP_PAYLOAD") else { return };
    println!("child progress line (forwarded, not a result)");
    emit_result(&payload);
}

#[test]
fn sweep_round_trip_merges_results_in_job_order() {
    let exe = std::env::current_exe().unwrap();
    let child_args = ["sweep_child_helper", "--exact", "--nocapture"];
    let jobs: Vec<SweepJob> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|name| {
            SweepJob::new(*name, child_args)
                .env("ROUTER_TEST_SWEEP_PAYLOAD", format!("payload-{name}"))
        })
        .collect();
    let runs = run_sweep(&exe, &jobs).unwrap();
    let got: Vec<(String, String)> = runs.into_iter().map(|r| (r.name, r.payload)).collect();
    assert_eq!(
        got,
        vec![
            ("alpha".to_string(), "payload-alpha".to_string()),
            ("beta".to_string(), "payload-beta".to_string()),
            ("gamma".to_string(), "payload-gamma".to_string()),
        ]
    );

    // A child that exits cleanly without emitting a result is a typed
    // protocol error naming the job.
    let silent = vec![SweepJob::new("silent", child_args)];
    match run_sweep(&exe, &silent) {
        Err(SweepError::MissingResult { job }) => assert_eq!(job, "silent"),
        other => panic!("expected MissingResult, got {other:?}"),
    }
}
