//! End-to-end tests of the embedding service: the bitwise contract against
//! the offline `Encoder` facade, cache semantics, backpressure, panic
//! containment, and graceful shutdown.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use start_core::encoder::{EncodeError, EncodeOptions};
use start_core::{StartConfig, StartModel};
use start_roadnet::synth::{generate_city, CityConfig};
use start_roadnet::SegmentId;
use start_serve::{EmbeddingService, ServeConfig, ServeError};
use start_traj::{SimConfig, Simulator, TrajView, Trajectory};

struct Fixture {
    model: Arc<StartModel>,
    data: Vec<Trajectory>,
    /// `Encoder::encode` with default options — the bits every service
    /// configuration must reproduce exactly.
    reference: Vec<Vec<f32>>,
    num_segments: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let city = generate_city("serve-test", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 24, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let model = Arc::new(StartModel::new(StartConfig::test_scale(), &city.net, None, None, 41));
        let reference = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        Fixture { model, data, reference, num_segments: city.net.num_segments() }
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: component {i} diverged ({x} vs {y})");
    }
}

#[test]
fn service_output_bitwise_matches_the_encoder_for_any_worker_count() {
    let fix = fixture();
    for workers in [1usize, 4] {
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig {
                workers,
                max_batch: 5,
                max_wait: Duration::from_millis(1),
                cache_capacity: 0, // cache off: every request really encodes
                ..ServeConfig::default()
            },
        );
        let served = service.encode(&fix.data).unwrap();
        let stats = service.shutdown();
        assert_eq!(served.len(), fix.reference.len());
        for (i, (s, r)) in served.iter().zip(&fix.reference).enumerate() {
            assert_bits_eq(s, r, &format!("workers={workers} trajectory {i}"));
        }
        assert_eq!(stats.completed, fix.data.len() as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, 0, "cache was disabled");
    }
}

#[test]
fn cache_hit_returns_the_identical_vector() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    let first = service.submit(&fix.data[0]).unwrap().wait().unwrap();
    let second = service.submit(&fix.data[0]).unwrap().wait().unwrap();
    assert_bits_eq(&first, &second, "cache round trip");
    assert_bits_eq(&first, &fix.reference[0], "cached vs reference");
    let stats = service.shutdown();
    assert!(stats.cache.hits >= 1, "second request should hit the cache: {:?}", stats.cache);
    assert!(stats.cache.entries >= 1);
}

#[test]
fn graceful_shutdown_drains_every_queued_request() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            // Workers wake only after everything is queued and shutdown has
            // been requested, so the drain path is what answers.
            worker_warmup: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = (0..8).map(|i| service.submit(&fix.data[i]).unwrap()).collect();
    let stats = service.shutdown();
    for (i, h) in handles.into_iter().enumerate() {
        let emb = h.wait().unwrap_or_else(|e| panic!("request {i} lost in shutdown: {e}"));
        assert_bits_eq(&emb, &fix.reference[i], &format!("drained request {i}"));
    }
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn submitting_after_shutdown_is_a_typed_error() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig {
            workers: 1,
            worker_warmup: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    );
    let h = service.submit(&fix.data[0]).unwrap();
    service.begin_shutdown();
    // New work is refused — including blocking submits — but the request
    // that made it in still drains.
    let err = service.submit(&fix.data[1]).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    assert!(h.wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn try_submit_reports_queue_full() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            worker_warmup: Some(Duration::from_millis(300)),
            ..ServeConfig::default()
        },
    );
    let h1 = service.try_submit(&fix.data[0]).unwrap();
    let h2 = service.try_submit(&fix.data[1]).unwrap();
    let err = service.try_submit(&fix.data[2]).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    // The accepted pair still completes once the worker wakes.
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
}

#[test]
fn empty_submission_is_rejected_at_the_door() {
    let fix = fixture();
    let service = EmbeddingService::start(Arc::clone(&fix.model), ServeConfig::default());
    let empty = TrajView { roads: vec![], times: vec![], masked: vec![], embed_dropout: 0.0 };
    let err = service.submit_view(empty).unwrap_err();
    assert_eq!(err, ServeError::Invalid(EncodeError::EmptyView { index: 0 }));
    assert_eq!(service.stats().rejected, 1);
}

#[test]
fn overlong_submission_is_rejected_when_clamping_is_off() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig { clamp: false, ..ServeConfig::default() },
    );
    let max_len = fix.model.cfg.max_len;
    let mut view = TrajView::identity(&fix.data[0]);
    while view.roads.len() <= max_len {
        view.roads.extend_from_slice(&TrajView::identity(&fix.data[0]).roads);
        view.times.extend_from_slice(&TrajView::identity(&fix.data[0]).times);
        view.masked.extend_from_slice(&TrajView::identity(&fix.data[0]).masked);
    }
    let len = view.roads.len();
    let err = service.submit_view(view).unwrap_err();
    assert_eq!(err, ServeError::Invalid(EncodeError::TooLong { index: 0, len, max_len }));
}

#[test]
fn worker_panic_is_typed_and_poisons_the_service() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig { workers: 1, cache_capacity: 0, ..ServeConfig::default() },
    );
    // A road id far outside the network: passes length validation, then
    // blows up inside the model's embedding gather — a genuine worker panic.
    let mut view = TrajView::identity(&fix.data[0]);
    view.roads[0] = SegmentId(fix.num_segments as u32 + 10_000);
    let err = service.submit_view(view).unwrap().wait().unwrap_err();
    assert!(
        matches!(err, ServeError::WorkerPanicked { .. }),
        "expected WorkerPanicked, got {err:?}"
    );
    // The panic poisons the whole service: future submissions are refused.
    let err = service.submit(&fix.data[0]).unwrap_err();
    assert_eq!(err, ServeError::ModelPoisoned);
    let stats = service.shutdown();
    assert!(stats.failed >= 1);
}

#[test]
fn knn_finds_the_indexed_trajectory_itself() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    );
    for (i, t) in fix.data.iter().enumerate() {
        service.index(i as u64, t).unwrap();
    }
    assert_eq!(service.indexed_len(), fix.data.len());
    // With the cache on, the query encode returns the identical bits that
    // were indexed, so the self-distance is exactly zero.
    let hits = service.knn(&fix.data[3], 5).unwrap();
    assert_eq!(hits.len(), 5);
    assert_eq!(hits[0].id, 3);
    assert_eq!(hits[0].distance, 0.0);
    for pair in hits.windows(2) {
        assert!(pair[0].distance <= pair[1].distance, "kNN results must be sorted");
    }
    let _ = service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Micro-batch composition under random arrival patterns (duplicates,
    /// arbitrary order, odd lengths) never swaps answers between requests:
    /// response `j` is always the embedding of submission `j`.
    #[test]
    fn random_arrival_patterns_preserve_request_response_correspondence(
        idxs in prop::collection::vec(0..24usize, 1..40),
        workers in 1..4usize,
        max_batch in 1..7usize,
    ) {
        let fix = fixture();
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig {
                workers,
                max_batch,
                max_wait: Duration::from_micros(500),
                ..ServeConfig::default()
            },
        );
        let handles: Vec<_> = idxs
            .iter()
            .map(|&i| service.submit(&fix.data[i]).map_err(|e| TestCaseError::Fail(e.to_string())))
            .collect::<Result<_, _>>()?;
        for (handle, &i) in handles.into_iter().zip(&idxs) {
            let emb = handle.wait().map_err(|e| TestCaseError::Fail(e.to_string()))?;
            let reference = &fix.reference[i];
            prop_assert_eq!(emb.len(), reference.len());
            for (x, y) in emb.iter().zip(reference) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "answer for slot of trajectory {} diverged", i);
            }
        }
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed, idxs.len() as u64);
        prop_assert_eq!(stats.failed, 0u64);
    }
}
