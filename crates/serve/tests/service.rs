//! End-to-end tests of the embedding service: the bitwise contract against
//! the offline `Encoder` facade, cache semantics, backpressure, panic
//! containment, and graceful shutdown.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use start_core::encoder::{EncodeError, EncodeOptions};
use start_core::{StartConfig, StartModel};
use start_roadnet::synth::{generate_city, CityConfig};
use start_roadnet::SegmentId;
use start_serve::{EmbeddingService, HnswConfig, IndexKind, ServeConfig, ServeError};
use start_traj::{SimConfig, Simulator, TrajView, Trajectory};

struct Fixture {
    model: Arc<StartModel>,
    data: Vec<Trajectory>,
    /// `Encoder::encode` with default options — the bits every service
    /// configuration must reproduce exactly.
    reference: Vec<Vec<f32>>,
    num_segments: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let city = generate_city("serve-test", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 24, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let model = Arc::new(StartModel::new(StartConfig::test_scale(), &city.net, None, None, 41));
        let reference = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        Fixture { model, data, reference, num_segments: city.net.num_segments() }
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: component {i} diverged ({x} vs {y})");
    }
}

#[test]
fn service_output_bitwise_matches_the_encoder_for_any_worker_count() {
    let fix = fixture();
    for workers in [1usize, 4] {
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig::builder()
                .workers(workers)
                .max_batch(5)
                .max_wait(Duration::from_millis(1))
                .cache_capacity(0) // cache off: every request really encodes
                .build()
                .unwrap(),
        );
        let served = service.encode(&fix.data).unwrap();
        let stats = service.shutdown();
        assert_eq!(served.len(), fix.reference.len());
        for (i, (s, r)) in served.iter().zip(&fix.reference).enumerate() {
            assert_bits_eq(s, r, &format!("workers={workers} trajectory {i}"));
        }
        assert_eq!(stats.completed, fix.data.len() as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, 0, "cache was disabled");
    }
}

#[test]
fn cache_hit_returns_the_identical_vector() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().workers(1).build().unwrap(),
    );
    let first = service.submit(&fix.data[0]).unwrap().wait().unwrap();
    let second = service.submit(&fix.data[0]).unwrap().wait().unwrap();
    assert_bits_eq(&first, &second, "cache round trip");
    assert_bits_eq(&first, &fix.reference[0], "cached vs reference");
    let stats = service.shutdown();
    assert!(stats.cache.hits >= 1, "second request should hit the cache: {:?}", stats.cache);
    assert!(stats.cache.entries >= 1);
}

#[test]
fn graceful_shutdown_drains_every_queued_request() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder()
            .workers(2)
            .cache_capacity(0)
            // Workers wake only after everything is queued and shutdown has
            // been requested, so the drain path is what answers.
            .worker_warmup(Duration::from_millis(150))
            .build()
            .unwrap(),
    );
    let handles: Vec<_> = (0..8).map(|i| service.submit(&fix.data[i]).unwrap()).collect();
    let stats = service.shutdown();
    for (i, h) in handles.into_iter().enumerate() {
        let emb = h.wait().unwrap_or_else(|e| panic!("request {i} lost in shutdown: {e}"));
        assert_bits_eq(&emb, &fix.reference[i], &format!("drained request {i}"));
    }
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn submitting_after_shutdown_is_a_typed_error() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder()
            .workers(1)
            .worker_warmup(Duration::from_millis(150))
            .build()
            .unwrap(),
    );
    let h = service.submit(&fix.data[0]).unwrap();
    service.begin_shutdown();
    // New work is refused — including blocking submits — but the request
    // that made it in still drains.
    let err = service.submit(&fix.data[1]).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    assert!(h.wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn try_submit_reports_queue_full() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder()
            .workers(1)
            .queue_cap(2)
            .worker_warmup(Duration::from_millis(300))
            .build()
            .unwrap(),
    );
    let h1 = service.try_submit(&fix.data[0]).unwrap();
    let h2 = service.try_submit(&fix.data[1]).unwrap();
    let err = service.try_submit(&fix.data[2]).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    // The accepted pair still completes once the worker wakes.
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
}

#[test]
fn empty_submission_is_rejected_at_the_door() {
    let fix = fixture();
    let service = EmbeddingService::start(Arc::clone(&fix.model), ServeConfig::default());
    let empty = TrajView { roads: vec![], times: vec![], masked: vec![], embed_dropout: 0.0 };
    let err = service.submit_view(empty).unwrap_err();
    assert_eq!(err, ServeError::Invalid(EncodeError::EmptyView { index: 0 }));
    assert_eq!(service.stats().rejected, 1);
}

#[test]
fn overlong_submission_is_rejected_when_clamping_is_off() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().clamp(false).build().unwrap(),
    );
    let max_len = fix.model.cfg.max_len;
    let mut view = TrajView::identity(&fix.data[0]);
    while view.roads.len() <= max_len {
        view.roads.extend_from_slice(&TrajView::identity(&fix.data[0]).roads);
        view.times.extend_from_slice(&TrajView::identity(&fix.data[0]).times);
        view.masked.extend_from_slice(&TrajView::identity(&fix.data[0]).masked);
    }
    let len = view.roads.len();
    let err = service.submit_view(view).unwrap_err();
    assert_eq!(err, ServeError::Invalid(EncodeError::TooLong { index: 0, len, max_len }));
}

#[test]
fn worker_panic_is_typed_and_poisons_the_service() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().workers(1).cache_capacity(0).build().unwrap(),
    );
    // A road id far outside the network: passes length validation, then
    // blows up inside the model's embedding gather — a genuine worker panic.
    let mut view = TrajView::identity(&fix.data[0]);
    view.roads[0] = SegmentId(fix.num_segments as u32 + 10_000);
    let err = service.submit_view(view).unwrap().wait().unwrap_err();
    assert!(
        matches!(err, ServeError::WorkerPanicked { .. }),
        "expected WorkerPanicked, got {err:?}"
    );
    // The panic poisons the whole service: future submissions are refused.
    let err = service.submit(&fix.data[0]).unwrap_err();
    assert_eq!(err, ServeError::ModelPoisoned);
    let stats = service.shutdown();
    assert!(stats.failed >= 1);
}

#[test]
fn knn_finds_the_indexed_trajectory_itself() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().workers(2).build().unwrap(),
    );
    for (i, t) in fix.data.iter().enumerate() {
        service.index(i as u64, t).unwrap();
    }
    assert_eq!(service.indexed_len(), fix.data.len());
    // With the cache on, the query encode returns the identical bits that
    // were indexed, so the self-distance is exactly zero.
    let hits = service.knn(&fix.data[3], 5).unwrap();
    assert_eq!(hits.len(), 5);
    assert_eq!(hits[0].id, 3);
    assert_eq!(hits[0].distance, 0.0);
    for pair in hits.windows(2) {
        assert!(pair[0].distance <= pair[1].distance, "kNN results must be sorted");
    }
    let _ = service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Micro-batch composition under random arrival patterns (duplicates,
    /// arbitrary order, odd lengths) never swaps answers between requests:
    /// response `j` is always the embedding of submission `j`.
    #[test]
    fn random_arrival_patterns_preserve_request_response_correspondence(
        idxs in prop::collection::vec(0..24usize, 1..40),
        workers in 1..4usize,
        max_batch in 1..7usize,
    ) {
        let fix = fixture();
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig::builder()
                .workers(workers)
                .max_batch(max_batch)
                .max_wait(Duration::from_micros(500))
                .build()
                .unwrap(),
        );
        let handles: Vec<_> = idxs
            .iter()
            .map(|&i| service.submit(&fix.data[i]).map_err(|e| TestCaseError::Fail(e.to_string())))
            .collect::<Result<_, _>>()?;
        for (handle, &i) in handles.into_iter().zip(&idxs) {
            let emb = handle.wait().map_err(|e| TestCaseError::Fail(e.to_string()))?;
            let reference = &fix.reference[i];
            prop_assert_eq!(emb.len(), reference.len());
            for (x, y) in emb.iter().zip(reference) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "answer for slot of trajectory {} diverged", i);
            }
        }
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed, idxs.len() as u64);
        prop_assert_eq!(stats.failed, 0u64);
    }
}

// ---------------------------------------------------------------------------
// kNN index hardening + the VectorIndex seam (brute force vs HNSW)
// ---------------------------------------------------------------------------

/// Regression for the kNN-path panic: a dimension-mismatched `index`/`knn`
/// request used to `assert_eq!` inside the service and, via panic
/// containment, poison it for every later caller. It must now be a typed
/// error, and the service must keep answering afterwards.
#[test]
fn dimension_mismatch_is_typed_and_the_service_stays_healthy() {
    let fix = fixture();
    let dim = fix.reference[0].len();
    for kind in [IndexKind::BruteForce, IndexKind::Hnsw(HnswConfig::default())] {
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig::builder().workers(1).index(kind.clone()).build().unwrap(),
        );
        service.index(0, &fix.data[0]).unwrap();

        let bad = vec![0.0f32; dim + 3];
        assert_eq!(
            service.index_embedding(1, &bad),
            Err(ServeError::DimensionMismatch { expected: dim, got: dim + 3 }),
            "{kind:?}"
        );
        assert_eq!(
            service.knn_embedding(&bad, 1),
            Err(ServeError::DimensionMismatch { expected: dim, got: dim + 3 }),
            "{kind:?}"
        );

        // The bad requests left no trace: the store is intact and both the
        // encode path and the kNN path still answer.
        assert_eq!(service.indexed_len(), 1, "{kind:?}");
        service.index(2, &fix.data[2]).unwrap();
        let hits = service.knn(&fix.data[0], 1).unwrap();
        assert_eq!(hits[0].id, 0, "{kind:?}");
        assert_eq!(hits[0].distance, 0.0, "{kind:?}");
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 2, "{kind:?}: both bad vectors counted as rejected");
    }
}

/// On a small store with an exhaustive beam, the HNSW-backed service must
/// return exactly the brute-force answers — same ids, same order, same
/// distance bits (both backends accumulate distances in the same order).
#[test]
fn hnsw_backed_service_matches_brute_force_exactly_on_small_stores() {
    let fix = fixture();
    let brute = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().workers(1).build().unwrap(),
    );
    let hnsw = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder()
            .workers(1)
            .index(IndexKind::Hnsw(
                // Exhaustive beam at this scale: exact answers.
                HnswConfig::builder().ef_search(10_000).build().unwrap(),
            ))
            .build()
            .unwrap(),
    );
    for (i, t) in fix.data.iter().enumerate() {
        brute.index(i as u64, t).unwrap();
        hnsw.index(i as u64, t).unwrap();
    }
    for t in fix.data.iter().take(6) {
        let expected = brute.knn(t, 5).unwrap();
        let got = hnsw.knn(t, 5).unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.id, e.id);
            assert_eq!(g.distance.to_bits(), e.distance.to_bits(), "distance bits diverged");
        }
    }
    let _ = brute.shutdown();
    let _ = hnsw.shutdown();
}

/// Exact distance ties (identical vectors under different ids) rank by
/// ascending id in both backends.
#[test]
fn both_backends_break_ties_toward_smaller_ids() {
    let fix = fixture();
    let dim = fix.reference[0].len();
    let tied: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.1).sin()).collect();
    let far: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.1).sin() + 10.0).collect();
    for kind in [
        IndexKind::BruteForce,
        IndexKind::Hnsw(HnswConfig::builder().ef_search(1000).build().unwrap()),
    ] {
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig::builder().workers(1).index(kind.clone()).build().unwrap(),
        );
        for id in [9u64, 2, 5] {
            service.index_embedding(id, &tied).unwrap();
        }
        service.index_embedding(1, &far).unwrap();
        let hits = service.knn_embedding(&tied, 4).unwrap();
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, [2, 5, 9, 1], "{kind:?}: ties must rank by ascending id");
        let _ = service.shutdown();
    }
}

/// `remove_index` drops an id from both backends; HNSW tombstones must
/// never resurface through `knn`.
#[test]
fn removed_ids_are_never_returned_by_either_backend() {
    let fix = fixture();
    for kind in [IndexKind::BruteForce, IndexKind::Hnsw(HnswConfig::default())] {
        let service = EmbeddingService::start(
            Arc::clone(&fix.model),
            ServeConfig::builder().workers(1).index(kind.clone()).build().unwrap(),
        );
        for (i, t) in fix.data.iter().enumerate() {
            service.index(i as u64, t).unwrap();
        }
        assert!(service.remove_index(3), "{kind:?}");
        assert!(!service.remove_index(3), "{kind:?}: second remove reports absence");
        assert_eq!(service.indexed_len(), fix.data.len() - 1, "{kind:?}");
        let hits = service.knn(&fix.data[3], fix.data.len()).unwrap();
        assert!(hits.iter().all(|n| n.id != 3), "{kind:?}: tombstoned id resurfaced");
        assert_eq!(hits.len(), fix.data.len() - 1, "{kind:?}: every live id still reachable");
        let _ = service.shutdown();
    }
}

/// `rebuild_index` migrates every live embedding between backends without
/// re-encoding; answers survive the swap exactly (exhaustive beam).
#[test]
fn rebuilding_from_brute_force_to_hnsw_preserves_answers() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder().workers(1).build().unwrap(),
    );
    for (i, t) in fix.data.iter().enumerate() {
        service.index(i as u64, t).unwrap();
    }
    let before: Vec<_> = fix.data.iter().take(4).map(|t| service.knn(t, 3).unwrap()).collect();
    service
        .rebuild_index(IndexKind::Hnsw(HnswConfig::builder().ef_search(10_000).build().unwrap()));
    assert_eq!(service.indexed_len(), fix.data.len());
    for (t, expected) in fix.data.iter().take(4).zip(&before) {
        let got = service.knn(t, 3).unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected) {
            assert_eq!(g.id, e.id);
            assert_eq!(g.distance.to_bits(), e.distance.to_bits());
        }
    }
    let _ = service.shutdown();
}

/// Counter-coherence contract (see `Shared::stats`): `submitted` rises
/// before a request is visible and outcomes are read first in a snapshot,
/// so `submitted >= completed + failed` in every point-in-time read, and a
/// drained shutdown reports exact equality.
#[test]
fn drained_shutdown_reports_submitted_equals_completed_plus_failed() {
    let fix = fixture();
    let service = EmbeddingService::start(
        Arc::clone(&fix.model),
        ServeConfig::builder()
            .workers(3)
            .max_batch(4)
            .max_wait(Duration::from_micros(200))
            .build()
            .unwrap(),
    );
    let handles: Vec<_> = fix.data.iter().map(|t| service.submit(t).unwrap()).collect();
    // Mid-flight snapshots may lag but can never over-report outcomes.
    let mid = service.stats();
    assert!(mid.submitted >= mid.completed + mid.failed, "incoherent mid-flight snapshot: {mid:?}");
    for h in handles {
        h.wait().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, fix.data.len() as u64);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "drained shutdown must account for every accepted request: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);
}
