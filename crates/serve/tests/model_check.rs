//! Executable concurrency models for the serving layer, explored by the
//! `start_sync` model checker: the submit/flush/shutdown/poison-drain queue
//! protocol (a faithful skeleton of `service.rs`) and the real [`Histogram`]
//! under concurrent recording.
//!
//! Each model must stay clean across at least 1,000 distinct schedules —
//! the CI floor pinned by `ci.yml`. Seeds come from `ModelConfig::default`
//! and are fixed, so a failure here replays deterministically.

use std::collections::VecDeque;

use start_serve::Histogram;
use start_sync::atomic::{AtomicU64, Ordering};
use start_sync::model::{check, spawn_named, ModelConfig};
use start_sync::{Arc, Condvar, Mutex, PoisonError};

const MIN_SCHEDULES: usize = 1_000;

fn cfg() -> ModelConfig {
    ModelConfig { max_schedules: 1_500, random_iters: 200, ..ModelConfig::default() }
}

/// A poison marker in the queue: the worker "panics" on it, mirroring the
/// encode-panic path of the real worker loop.
const POISON: u32 = u32::MAX;

struct Q {
    queue: VecDeque<u32>,
    shutdown: bool,
    poisoned: bool,
}

/// Skeleton of `service.rs`'s `Shared`: same lock/condvar/counter protocol,
/// with the encode call reduced to "count the item".
struct QueueModel {
    state: Mutex<Q>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    max_batch: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
}

impl QueueModel {
    fn new(cap: usize, max_batch: usize) -> Self {
        Self {
            state: Mutex::new(Q { queue: VecDeque::new(), shutdown: false, poisoned: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            max_batch,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> start_sync::MutexGuard<'_, Q> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirror of `EmbeddingService::enqueue` with `block = true`.
    fn submit(&self, item: u32) -> Result<(), ()> {
        let mut st = self.lock();
        loop {
            if st.poisoned || st.shutdown {
                self.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test tally
                return Err(());
            }
            if st.queue.len() < self.cap {
                break;
            }
            st = self.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Same discipline as the service: submitted goes up (Release) before
        // the request is visible, while the queue lock is held.
        self.submitted.fetch_add(1, Ordering::Release);
        st.queue.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Mirror of `collect_batch`: pop one, absorb up to `max_batch` with a
    /// timed wait standing in for the `max_wait` budget.
    fn collect_batch(&self) -> Option<Vec<u32>> {
        let mut st = self.lock();
        loop {
            if st.poisoned {
                return None;
            }
            if let Some(first) = st.queue.pop_front() {
                let mut batch = vec![first];
                loop {
                    while batch.len() < self.max_batch {
                        match st.queue.pop_front() {
                            Some(r) => batch.push(r),
                            None => break,
                        }
                    }
                    if batch.len() >= self.max_batch || st.shutdown || st.poisoned {
                        break;
                    }
                    let (guard, timeout) = self
                        .not_empty
                        .wait_timeout(st, std::time::Duration::from_millis(1))
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.shutdown {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mirror of `worker_loop` including the poison-drain protocol.
    fn worker(&self) {
        while let Some(batch) = self.collect_batch() {
            if batch.contains(&POISON) {
                let drained: Vec<u32> = {
                    let mut st = self.lock();
                    st.poisoned = true;
                    st.queue.drain(..).collect()
                };
                self.not_empty.notify_all();
                self.not_full.notify_all();
                for _ in &batch {
                    self.failed.fetch_add(1, Ordering::Release);
                }
                for _ in &drained {
                    self.failed.fetch_add(1, Ordering::Release);
                }
                return;
            }
            for _ in &batch {
                self.completed.fetch_add(1, Ordering::Release);
            }
        }
    }

    fn begin_shutdown(&self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Submit/flush/shutdown: two submitters race a worker through a capacity-1
/// queue (real blocking backpressure), then the service drains and shuts
/// down. Every schedule must drain every accepted request:
/// `submitted == completed + failed` and the queue empty.
#[test]
fn serve_queue_submit_flush_shutdown_model_is_clean() {
    let report = check(&cfg(), || {
        let m = Arc::new(QueueModel::new(1, 2));
        let w = {
            let m = Arc::clone(&m);
            spawn_named("worker", move || m.worker())
        };
        let s1 = {
            let m = Arc::clone(&m);
            spawn_named("submit-1", move || {
                let _ = m.submit(1);
            })
        };
        let s2 = {
            let m = Arc::clone(&m);
            spawn_named("submit-2", move || {
                let _ = m.submit(2);
            })
        };
        let _ = s1.join();
        let _ = s2.join();
        m.begin_shutdown();
        let _ = w.join();
        let submitted = m.submitted.load(Ordering::Acquire);
        let completed = m.completed.load(Ordering::Acquire);
        let failed = m.failed.load(Ordering::Acquire);
        assert_eq!(submitted, completed + failed, "accepted request lost in the drain");
        assert_eq!(submitted + m.rejected.load(Ordering::Acquire), 2);
        assert!(m.lock().queue.is_empty(), "shutdown must drain the queue");
    });
    report.assert_clean();
    assert!(
        report.distinct_schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.distinct_schedules
    );
}

/// Poison-drain: one submission is a poison marker (the worker "panics" on
/// it). Whatever the interleaving, every accepted request is answered
/// exactly once — completed, failed-with-panic, or failed-in-drain — and
/// late submissions are rejected, never wedged.
#[test]
fn serve_queue_poison_drain_model_is_clean() {
    let report = check(&cfg(), || {
        let m = Arc::new(QueueModel::new(1, 2));
        let w = {
            let m = Arc::clone(&m);
            spawn_named("worker", move || m.worker())
        };
        let s1 = {
            let m = Arc::clone(&m);
            spawn_named("submit-poison", move || {
                let _ = m.submit(POISON);
            })
        };
        let s2 = {
            let m = Arc::clone(&m);
            spawn_named("submit-2", move || {
                let _ = m.submit(2);
            })
        };
        let _ = s1.join();
        let _ = s2.join();
        m.begin_shutdown();
        let _ = w.join();
        let submitted = m.submitted.load(Ordering::Acquire);
        let completed = m.completed.load(Ordering::Acquire);
        let failed = m.failed.load(Ordering::Acquire);
        assert_eq!(submitted, completed + failed, "poison drain lost a request");
        assert!(failed >= 1, "the poison batch itself must be failed");
        assert!(m.lock().queue.is_empty());
    });
    report.assert_clean();
    assert!(
        report.distinct_schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.distinct_schedules
    );
}

/// The real [`Histogram`] under concurrent `record_us`: after both recorders
/// join, the snapshot must be exact — no lost counts, max correct, quantiles
/// monotone — in every interleaving of the lock-free update sequence.
#[test]
fn histogram_concurrent_record_model_is_clean() {
    let report = check(&cfg(), || {
        let h = Arc::new(Histogram::new());
        let a = {
            let h = Arc::clone(&h);
            spawn_named("rec-a", move || {
                h.record_us(10);
                h.record_us(0);
            })
        };
        let b = {
            let h = Arc::clone(&h);
            spawn_named("rec-b", move || {
                h.record_us(10_000);
                h.record_us(10);
            })
        };
        let _ = a.join();
        let _ = b.join();
        let s = h.snapshot();
        assert_eq!(s.count, 4, "lost a concurrent record");
        assert_eq!(s.max_us, 10_000);
        assert!(s.p50_us <= s.p99_us, "quantiles must be monotone");
        assert!(s.p99_us <= s.max_us.max(1 << 14));
        let sum = (s.mean_us * s.count as f64).round() as u64;
        assert_eq!(sum, 10 + 10_000 + 10, "sum drifted under contention");
    });
    report.assert_clean();
    assert!(
        report.distinct_schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.distinct_schedules
    );
}
