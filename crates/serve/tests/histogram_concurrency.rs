//! Property tests for [`Histogram`] under real concurrent recording: after
//! every recorder joins, the snapshot is exact — no lost counts, exact sum
//! and max, monotone quantiles — and the saturating sum stays pinned under
//! contention instead of wrapping.

use std::thread;

use proptest::prelude::*;
use start_serve::Histogram;
use start_sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary samples sharded across 1–4 recorder threads: the joined
    /// snapshot must account for every sample exactly, whatever the
    /// interleaving of the lock-free bucket/count/sum/max updates.
    #[test]
    fn concurrent_recording_is_exact_after_join(
        samples in prop::collection::vec(0..1_000_000usize, 1..64),
        threads in 1..4usize,
    ) {
        let h = Arc::new(Histogram::new());
        let chunk = samples.len().div_ceil(threads);
        thread::scope(|s| {
            for shard in samples.chunks(chunk) {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for &us in shard {
                        h.record_us(us as u64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64, "lost a concurrent record");
        let max = samples.iter().copied().max().unwrap_or(0) as u64;
        prop_assert_eq!(snap.max_us, max);
        // Sums stay far below 2^53, so the f64 mean is exact.
        let sum: u64 = samples.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(snap.mean_us, sum as f64 / samples.len() as f64);
        prop_assert!(snap.p50_us <= snap.p99_us, "quantiles must be monotone");
    }

    /// Hammering `u64::MAX` from several threads at once: every CAS in the
    /// running sum must saturate, never wrap, and no count may be lost —
    /// the regression that motivated the CAS loop, now under real
    /// contention instead of a sequential test.
    #[test]
    fn sum_saturates_not_wraps_under_contention(
        threads in 2..5usize,
        per_thread in 1..8usize,
    ) {
        let h = Arc::new(Histogram::new());
        thread::scope(|s| {
            for _ in 0..threads {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        h.record_us(u64::MAX);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let expected = (threads * per_thread) as u64;
        prop_assert_eq!(snap.count, expected, "lost a concurrent record");
        prop_assert_eq!(snap.max_us, u64::MAX);
        // The saturated sum is pinned at u64::MAX; a wrapped sum would
        // collapse the mean toward zero.
        prop_assert_eq!(snap.mean_us, u64::MAX as f64 / expected as f64);
    }
}
