//! The parent/child sweep orchestrator (ROADMAP item 2).
//!
//! A sweep fans train/eval configurations out to child processes — one
//! per [`SweepJob`] — and merges their results in job order. The protocol
//! is the serverless-lambda parent/child pattern: the parent re-invokes a
//! program (typically its own executable, dispatching on a flag argument)
//! with per-job arguments and environment overrides; the child does its
//! work and prints exactly one `SWEEP_RESULT <payload>` line to stdout
//! via [`emit_result`]; the parent captures stdout, extracts the marked
//! line, and returns the payloads as [`SweepRun`]s. Everything else a
//! child prints is forwarded as ordinary log output, so progress lines
//! coexist with the protocol.
//!
//! Children run as real OS processes, so each job gets its own address
//! space, its own allocator arena, and — for serving benchmarks — its own
//! cold caches, which is what makes multi-replica scaling measurements
//! honest: no job warms another's state.
//!
//! `bench_serve` uses this to run its 1/2/4-replica scaling matrix as
//! isolated child runs; the same harness fans out any
//! configuration sweep whose child can serialize its result into one
//! line (JSON, CSV, a single number).

use std::path::Path;
use std::process::{Command, Stdio};

/// The stdout marker a child prefixes its result payload with.
pub const RESULT_MARKER: &str = "SWEEP_RESULT ";

/// One child configuration: a display name, the argv tail passed to the
/// program, and environment overrides applied on top of the parent's
/// environment.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Label carried into the matching [`SweepRun`] and error messages.
    pub name: String,
    /// Arguments appended to the program invocation.
    pub args: Vec<String>,
    /// `(key, value)` environment overrides for this child.
    pub envs: Vec<(String, String)>,
}

impl SweepJob {
    /// A job with no environment overrides.
    pub fn new(name: impl Into<String>, args: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            envs: Vec::new(),
        }
    }

    /// Add one environment override.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// One child's merged result: its job name and the payload it emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRun {
    pub name: String,
    /// The text after [`RESULT_MARKER`] on the child's last marked line.
    pub payload: String,
}

/// Why a sweep failed. Child stderr rides along for diagnosis.
#[derive(Debug)]
pub enum SweepError {
    /// The child process could not be spawned at all.
    Spawn { job: String, message: String },
    /// The child exited non-zero.
    Child { job: String, code: Option<i32>, stderr: String },
    /// The child exited zero but never printed a `SWEEP_RESULT` line.
    MissingResult { job: String },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spawn { job, message } => write!(f, "sweep job `{job}`: spawn failed: {message}"),
            Self::Child { job, code, stderr } => write!(
                f,
                "sweep job `{job}`: child exited with {} — stderr:\n{stderr}",
                code.map_or_else(|| "signal".to_string(), |c| format!("code {c}"))
            ),
            Self::MissingResult { job } => {
                write!(f, "sweep job `{job}`: child succeeded but emitted no {RESULT_MARKER}line")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Child side of the protocol: print one result payload for the parent to
/// merge. Call at most once; the parent keeps the **last** marked line, so
/// a late correction wins.
pub fn emit_result(payload: &str) {
    println!("{RESULT_MARKER}{payload}");
}

/// Extract the payload of the last `SWEEP_RESULT` line in `stdout`.
pub fn parse_result(stdout: &str) -> Option<String> {
    stdout.lines().rev().find_map(|l| l.strip_prefix(RESULT_MARKER)).map(str::to_string)
}

/// Parent side: spawn every job as a child of `program`, then collect in
/// job order. All children are spawned before any is waited on, so jobs
/// overlap; results and errors are nevertheless deterministic in job
/// order (the first failing job in order is reported).
pub fn run_sweep(program: &Path, jobs: &[SweepJob]) -> Result<Vec<SweepRun>, SweepError> {
    let mut children = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut cmd = Command::new(program);
        cmd.args(&job.args).stdout(Stdio::piped()).stderr(Stdio::piped());
        for (k, v) in &job.envs {
            cmd.env(k, v);
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                // Reap the already-spawned children before reporting, so a
                // mid-sweep spawn failure never leaks processes.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(SweepError::Spawn { job: job.name.clone(), message: e.to_string() });
            }
        }
    }
    let mut runs = Vec::with_capacity(jobs.len());
    let mut first_err: Option<SweepError> = None;
    for (job, child) in jobs.iter().zip(children) {
        let out = match child.wait_with_output() {
            Ok(out) => out,
            Err(e) => {
                first_err.get_or_insert(SweepError::Spawn {
                    job: job.name.clone(),
                    message: e.to_string(),
                });
                continue;
            }
        };
        let stdout = String::from_utf8_lossy(&out.stdout);
        // Forward child logs (everything except protocol lines) so sweep
        // progress is visible at the parent.
        for line in stdout.lines().filter(|l| !l.starts_with(RESULT_MARKER)) {
            println!("[sweep:{}] {line}", job.name);
        }
        if !out.status.success() {
            first_err.get_or_insert(SweepError::Child {
                job: job.name.clone(),
                code: out.status.code(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            });
            continue;
        }
        match parse_result(&stdout) {
            Some(payload) => runs.push(SweepRun { name: job.name.clone(), payload }),
            None => {
                first_err.get_or_insert(SweepError::MissingResult { job: job.name.clone() });
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_takes_the_last_marked_line() {
        let out = "log line\nSWEEP_RESULT first\nmore logs\nSWEEP_RESULT second\n";
        assert_eq!(parse_result(out).as_deref(), Some("second"));
        assert_eq!(parse_result("no markers here\n"), None);
    }

    #[test]
    fn job_builder_collects_args_and_envs() {
        let job = SweepJob::new("j", ["--flag", "3"]).env("K", "v");
        assert_eq!(job.args, vec!["--flag".to_string(), "3".to_string()]);
        assert_eq!(job.envs, vec![("K".to_string(), "v".to_string())]);
    }
}
