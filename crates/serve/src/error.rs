//! The typed error surface of the serving layer.
//!
//! Every failure a caller can observe is a [`ServeError`] variant; worker
//! panics are caught at the batch boundary and converted — `resume_unwind`
//! never crosses the service API.

use start_ann::AnnError;
use start_core::encoder::EncodeError;

/// Everything that can go wrong between `submit` and `wait`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `try_submit` found the bounded queue at capacity.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request itself is malformed (empty view, over-length with
    /// clamping disabled); rejected before it reaches the queue.
    Invalid(EncodeError),
    /// An `index`/`knn` vector does not match the index dimension. The
    /// request is refused; the service and its index stay fully usable.
    DimensionMismatch {
        /// The dimension the index was built with.
        expected: usize,
        /// The dimension the request carried.
        got: usize,
    },
    /// An encode worker panicked while this request was in flight.
    WorkerPanicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A previous worker panic poisoned the service; it no longer accepts
    /// or processes work.
    ModelPoisoned,
    /// The worker side dropped the response channel without answering —
    /// an internal invariant violation surfaced as an error, not a hang.
    ResponseDropped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Invalid(e) => write!(f, "invalid request: {e}"),
            Self::DimensionMismatch { expected, got } => {
                write!(f, "vector dimension mismatch: index holds {expected}, got {got}")
            }
            Self::WorkerPanicked { message } => {
                write!(f, "encode worker panicked: {message}")
            }
            Self::ModelPoisoned => {
                write!(f, "service poisoned by an earlier worker panic")
            }
            Self::ResponseDropped => write!(f, "response channel dropped without an answer"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EncodeError> for ServeError {
    fn from(e: EncodeError) -> Self {
        Self::Invalid(e)
    }
}

impl From<AnnError> for ServeError {
    fn from(e: AnnError) -> Self {
        match e {
            AnnError::DimensionMismatch { expected, got } => {
                Self::DimensionMismatch { expected, got }
            }
        }
    }
}
