//! [`Router`]: the sharded serving front-end — N [`EmbeddingService`]
//! replicas behind one facade with the same `submit`/`knn`/`index`/`stats`
//! surface, so callers migrate from a single service by constructor swap.
//!
//! ## Fingerprint partitioning
//!
//! A request's shard is a pure function of its content: the 128-bit
//! trajectory [`Fingerprint`](start_core::Fingerprint) from
//! [`fingerprint_view`], folded through [`fold_fingerprint`] (a nonlinear
//! 64-bit finalizer — see its docs for why raw FNV bits would alias the
//! cache's internal sharding) and reduced mod the replica count. The same
//! trajectory therefore always lands on the same replica — across router
//! restarts,
//! across differing per-replica worker counts, across processes — which is
//! what makes per-replica caches *partitions* of the working set rather
//! than copies: each replica's sharded-LRU [`EmbeddingCache`] holds only
//! its own shard's trajectories, so aggregate cache capacity scales
//! linearly with the replica count with zero duplication. (The fingerprint
//! covers the view as submitted; config-dependent clamping happens later,
//! inside the replica, and does not influence placement.)
//!
//! kNN placement uses `id % replicas` for inserts; queries scatter to
//! every replica and merge through [`TopK`], which reproduces the
//! single-service `(distance, id)` tie-break bit for bit.
//!
//! ## Hot swap
//!
//! [`Router::publish`] pushes a new checkpoint into every replica in
//! shard order; each replica double-buffers the model behind its
//! versioned slot, drains in-flight micro-batches on the old version, and
//! starts a fresh cache pinned to the new version epoch (see the
//! `service` module docs). Because every replica performs the same
//! `version + 1` bump, replica versions stay in lockstep and
//! [`Router::model_version`] is well defined.
//!
//! [`EmbeddingCache`]: start_core::EmbeddingCache

use start_core::encoder::fingerprint_view;
use start_core::{Embedding, StartModel};
use start_sync::Arc;
use start_traj::{TrajView, Trajectory};

use start_ann::TopK;

use crate::config::RouterConfig;
use crate::error::ServeError;
use crate::service::{EmbeddingHandle, EmbeddingService, PublishReport};
use crate::stats::ServiceStats;
use crate::store::Neighbor;

/// Fold a 128-bit fingerprint into the 64-bit value replica selection
/// reduces mod the replica count: the halves are xor-combined and pushed
/// through the 64-bit murmur3 finalizer.
///
/// Raw fingerprint bits must NOT be used here. Bit 0 of an FNV-1a stream
/// is a *linear* function of the input bytes (xor preserves parity and the
/// odd-prime multiply never changes it), and the fingerprint's two halves
/// feed identical bytes — their parities differ only by a constant. Shard
/// by raw low (or high) bits and every trajectory on a replica shares a
/// parity class, which is exactly the bit the replica's sharded-LRU
/// [`EmbeddingCache`](start_core::EmbeddingCache) uses to pick an internal
/// shard: half (at 2 replicas; more at 4) of each replica's cache slots
/// would sit permanently empty. The finalizer's shift-xor-multiply rounds
/// make every output bit a nonlinear mix of all 128 input bits, so replica
/// selection is independent of the cache's internal sharding.
pub fn fold_fingerprint(fp: start_core::Fingerprint) -> u64 {
    let mut x = (fp.0 >> 64) as u64 ^ fp.0 as u64;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A sharded, hot-reloadable serving tier. See the module docs.
pub struct Router {
    replicas: Vec<EmbeddingService>,
}

/// Per-replica snapshots plus the aggregates callers actually chart.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// One [`ServiceStats`] per replica, in shard order.
    pub replicas: Vec<ServiceStats>,
}

impl RouterStats {
    pub fn submitted(&self) -> u64 {
        self.replicas.iter().map(|s| s.submitted).sum()
    }

    pub fn completed(&self) -> u64 {
        self.replicas.iter().map(|s| s.completed).sum()
    }

    pub fn rejected(&self) -> u64 {
        self.replicas.iter().map(|s| s.rejected).sum()
    }

    pub fn failed(&self) -> u64 {
        self.replicas.iter().map(|s| s.failed).sum()
    }

    pub fn stale_index_entries(&self) -> usize {
        self.replicas.iter().map(|s| s.stale_index_entries).sum()
    }

    /// Aggregate cache hit rate: total hits over total lookups across all
    /// replica caches, `0.0` when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.replicas.iter().map(|s| s.cache.hits).sum();
        let lookups: u64 = self.replicas.iter().map(|s| s.cache.hits + s.cache.misses).sum();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

impl Router {
    /// Spawn `cfg.replicas` services over a shared model (each replica
    /// clones the `Arc`, not the weights) and return the running router.
    /// Defensive like `EmbeddingService::start`: a zero replica count is
    /// normalized to 1 — build configs through [`RouterConfig::builder`]
    /// for typed validation instead.
    pub fn start(model: Arc<StartModel>, cfg: RouterConfig) -> Self {
        let replicas = (0..cfg.replicas.max(1))
            .map(|_| EmbeddingService::start(Arc::clone(&model), cfg.serve.clone()))
            .collect();
        Self { replicas }
    }

    /// Number of replicas behind this router.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The replica a trajectory routes to: its content fingerprint folded
    /// through [`fold_fingerprint`] mod the replica count. Pure in the
    /// trajectory — independent of router instance, worker counts, and
    /// model version.
    pub fn shard_for(&self, trajectory: &Trajectory) -> usize {
        self.shard_for_view(&TrajView::identity(trajectory))
    }

    /// [`Router::shard_for`] over a pre-built view.
    pub fn shard_for_view(&self, view: &TrajView) -> usize {
        (fold_fingerprint(fingerprint_view(view)) % self.replicas.len() as u64) as usize
    }

    /// Submit a trajectory to its shard, blocking while that replica's
    /// queue is full.
    pub fn submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        self.submit_view(TrajView::identity(trajectory))
    }

    /// Submit a trajectory to its shard; fail with
    /// [`ServeError::QueueFull`] instead of blocking.
    pub fn try_submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        let shard = self.shard_for(trajectory);
        self.replicas[shard].try_submit(trajectory)
    }

    /// Submit a pre-built view to its shard, blocking while the queue is
    /// full.
    pub fn submit_view(&self, view: TrajView) -> Result<EmbeddingHandle, ServeError> {
        let shard = self.shard_for_view(&view);
        self.replicas[shard].submit_view(view)
    }

    /// Submit a batch (each trajectory to its own shard) and wait for
    /// every answer, in submission order.
    pub fn encode(&self, trajectories: &[Trajectory]) -> Result<Vec<Embedding>, ServeError> {
        let handles: Vec<EmbeddingHandle> =
            trajectories.iter().map(|t| self.submit(t)).collect::<Result<_, _>>()?;
        handles.into_iter().map(EmbeddingHandle::wait).collect()
    }

    /// Publish a new model checkpoint into every replica (shard order).
    /// Each replica drains its in-flight old-version micro-batches before
    /// this returns; see `EmbeddingService::publish` for the per-replica
    /// contract. Returns the per-replica reports, whose `version` fields
    /// all agree.
    ///
    /// A wrong-dimension checkpoint is refused atomically: every replica
    /// shares the index dimension, the per-replica check precedes the
    /// swap, and the iteration short-circuits — so replica 0's refusal
    /// means no replica swapped.
    pub fn publish(&self, model: Arc<StartModel>) -> Result<Vec<PublishReport>, ServeError> {
        self.replicas.iter().map(|r| r.publish(Arc::clone(&model))).collect()
    }

    /// The model version currently serving (identical on every replica).
    pub fn model_version(&self) -> u64 {
        self.replicas.first().map_or(0, EmbeddingService::model_version)
    }

    /// Encode `trajectory` and index the embedding under `id` for
    /// [`Router::knn`] queries. The *encode* routes by trajectory
    /// fingerprint; the *index entry* lives on replica `id % replicas`.
    pub fn index(&self, id: u64, trajectory: &Trajectory) -> Result<(), ServeError> {
        let emb = self.submit(trajectory)?.wait()?;
        self.index_embedding(id, &emb)
    }

    /// Index a pre-computed embedding under `id` on replica
    /// `id % replicas`.
    pub fn index_embedding(&self, id: u64, embedding: &[f32]) -> Result<(), ServeError> {
        self.replicas[(id % self.replicas.len() as u64) as usize].index_embedding(id, embedding)
    }

    /// Encode the query on its shard, then return its `k` nearest indexed
    /// neighbours across **all** replicas, closest first — bitwise the
    /// single-service answer, including the `(distance, id)` tie-break.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let emb = self.submit(query)?.wait()?;
        self.knn_embedding(&emb, k)
    }

    /// kNN over a pre-computed query embedding: scatter to every replica,
    /// merge with the shared [`TopK`] ordering.
    pub fn knn_embedding(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let mut top = TopK::new(k);
        for replica in &self.replicas {
            for n in replica.knn_embedding(query, k)? {
                top.push(n.id, n.distance);
            }
        }
        Ok(top.into_sorted())
    }

    /// Drop `id` from its replica's kNN index; returns whether it was
    /// indexed.
    pub fn remove_index(&self, id: u64) -> bool {
        self.replicas[(id % self.replicas.len() as u64) as usize].remove_index(id)
    }

    /// Total embeddings indexed for kNN across all replicas.
    pub fn indexed_len(&self) -> usize {
        self.replicas.iter().map(EmbeddingService::indexed_len).sum()
    }

    /// Ids indexed under a non-current model version, across all replicas,
    /// sorted.
    pub fn stale_indexed_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.replicas.iter().flat_map(|r| r.stale_indexed_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// Per-replica + aggregate counter snapshot.
    pub fn stats(&self) -> RouterStats {
        RouterStats { replicas: self.replicas.iter().map(EmbeddingService::stats).collect() }
    }

    /// Flip every replica into shutdown without joining the workers; see
    /// `EmbeddingService::begin_shutdown`.
    pub fn begin_shutdown(&self) {
        for replica in &self.replicas {
            replica.begin_shutdown();
        }
    }

    /// Stop accepting work, drain every replica, join all workers, and
    /// return the final per-replica stats.
    pub fn shutdown(self) -> RouterStats {
        RouterStats {
            replicas: self.replicas.into_iter().map(EmbeddingService::shutdown).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fold_fingerprint;
    use start_core::Fingerprint;

    /// Regression for the shard/cache aliasing bug: FNV fingerprints whose
    /// low bits share a parity class (exactly what `% replicas` routing
    /// produces) must still fold to well-mixed values, or each replica's
    /// sharded-LRU cache runs at a fraction of its configured capacity.
    #[test]
    fn fold_decorrelates_constant_parity_inputs() {
        let mut low_bit_ones = 0usize;
        let mut low_three = [0usize; 8];
        for k in 0..1024u64 {
            // Both halves even: constant parity in every raw bit-0 view.
            let fp = Fingerprint((((k * 2654435761) as u128) << 65) | ((k as u128) << 1));
            let folded = fold_fingerprint(fp);
            low_bit_ones += (folded & 1) as usize;
            low_three[(folded & 7) as usize] += 1;
        }
        assert!(
            (400..=624).contains(&low_bit_ones),
            "folded bit 0 is biased: {low_bit_ones}/1024 ones"
        );
        for (bucket, &n) in low_three.iter().enumerate() {
            assert!(
                (64..=192).contains(&n),
                "folded low-3-bit bucket {bucket} is biased: {n}/1024"
            );
        }
    }
}
