//! Serving observability: wait-free log-bucketed latency histograms and
//! point-in-time [`ServiceStats`] snapshots.

use start_sync::atomic::{AtomicU64, Ordering};

use start_core::CacheStats;

/// A power-of-two-bucketed histogram of microsecond latencies.
///
/// Bucket `i` in `1..63` counts samples in `[2^(i-1), 2^i)` µs; bucket 0
/// counts zeros; the top bucket (63) is open-ended, `[2^62, ∞)` — samples
/// at or above 2⁶³ µs land there too, outside the power-of-two invariant
/// the lower buckets keep. Quantiles that fall in the top bucket report
/// the observed maximum rather than a nominal bucket edge. The running sum
/// saturates at `u64::MAX` instead of wrapping, so `mean_us` degrades to a
/// pessimistic floor on pathological inputs instead of silently
/// corrupting after long uptimes.
///
/// `record` is a handful of relaxed atomic updates — lock-free (the
/// saturating sum is a CAS loop that only retries under contention on the
/// same counter), callable from every worker — and `snapshot` walks the
/// buckets without stopping recorders, so a snapshot taken under load is
/// approximate. Quantiles are reported as the upper edge of the bucket
/// containing them (≤ 2× resolution), which is exactly what a latency
/// monitor needs and nothing a correctness test should depend on.
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one latency sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        // `bucket.min(63)` folds the >= 2^63 range into the open-ended top
        // bucket — see the type docs for its semantics.
        let bucket = (64 - us.leading_zeros()) as usize; // 0 for us == 0
                                                         // relaxed-ok: independent monotone tallies; snapshots are documented
                                                         // as approximate under load, no cross-counter ordering is promised.
        self.buckets[bucket.min(63)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: see above
                                                    // Saturate rather than wrap: a sum pinned at u64::MAX yields an
                                                    // obviously-degenerate mean; a wrapped sum yields a believable lie.
        let _ = self
            .sum_us
            // relaxed-ok: single-counter CAS loop, approximate snapshot
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(us)));
        self.max_us.fetch_max(us, Ordering::Relaxed); // relaxed-ok: monotone max
    }

    /// Upper bucket edge (µs) of the sample at quantile `q` in `[0, 1]`.
    /// The top bucket has no upper edge; quantiles landing there report the
    /// observed maximum instead.
    fn quantile_us(&self, counts: &[u64; 64], total: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match i {
                    0 => 0,
                    63 => self.max_us.load(Ordering::Relaxed), // relaxed-ok: approximate snapshot
                    _ => 1u64 << i,
                };
            }
        }
        self.max_us.load(Ordering::Relaxed) // relaxed-ok: approximate snapshot
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        // relaxed-ok: snapshots are documented as approximate under load
        let counts: [u64; 64] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        let sum = self.sum_us.load(Ordering::Relaxed); // relaxed-ok: approximate snapshot
        HistogramSnapshot {
            count: total,
            mean_us: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50_us: self.quantile_us(&counts, total, 0.50),
            p99_us: self.quantile_us(&counts, total, 0.99),
            max_us: self.max_us.load(Ordering::Relaxed), // relaxed-ok: approximate snapshot
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen read of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_us: f64,
    /// Median latency, rounded up to the enclosing power-of-two bucket edge.
    pub p50_us: u64,
    /// 99th-percentile latency, same bucket-edge rounding.
    pub p99_us: u64,
    pub max_us: u64,
}

/// Point-in-time counters for the whole service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with an embedding.
    pub completed: u64,
    /// Requests refused at the door (`QueueFull`, invalid, shutting down).
    pub rejected: u64,
    /// Requests answered with `WorkerPanicked`/`ModelPoisoned`.
    pub failed: u64,
    /// Micro-batches flushed by the workers.
    pub batches: u64,
    /// Requests sitting in the queue right now.
    pub queue_depth: usize,
    /// Time from `submit` to batch pickup.
    pub queue_wait: HistogramSnapshot,
    /// Time a worker spent encoding each batch.
    pub encode: HistogramSnapshot,
    /// Embedding-cache counters (hits/misses/occupancy) of the **current
    /// model version's** cache instance; a hot-swap starts these from zero
    /// (`cache.epoch` names the version they describe).
    pub cache: CacheStats,
    /// The model version currently serving (0 until the first publish).
    pub model_version: u64,
    /// kNN entries indexed under a model version other than the current
    /// one — the re-indexing backlog left behind by checkpoint hot-swaps.
    pub stale_index_entries: usize,
}

impl ServiceStats {
    /// Mean flushed batch size — the micro-batcher's effectiveness.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = Histogram::new();
        // 99 fast samples at 10µs, one slow outlier at 10_000µs.
        for _ in 0..99 {
            h.record_us(10);
        }
        h.record_us(10_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 10_000);
        // 10µs lives in (8, 16]; p50 reports the upper edge.
        assert_eq!(s.p50_us, 16);
        // p99 rank is 99 of 100 — still inside the fast bucket.
        assert_eq!(s.p99_us, 16);
        assert!(s.mean_us > 10.0 && s.mean_us < 200.0);
    }

    #[test]
    fn zero_samples_occupy_bucket_zero() {
        let h = Histogram::new();
        h.record_us(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 0);
    }

    #[test]
    fn giant_samples_saturate_the_last_bucket() {
        let h = Histogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.snapshot().max_us, u64::MAX);
    }

    /// Regression: the running sum must saturate, not wrap. Two `u64::MAX`
    /// samples used to wrap the sum to `u64::MAX - 1` … with a carry lost,
    /// quietly corrupting `mean_us` for the rest of the uptime.
    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record_us(u64::MAX);
        h.record_us(u64::MAX);
        h.record_us(10);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        // A wrapped sum would make the mean ~3 µs; the saturated sum keeps
        // it pinned at the (pessimistic, obviously degenerate) ceiling.
        assert!(s.mean_us >= (u64::MAX / 3) as f64, "mean collapsed: {}", s.mean_us);
    }

    /// The top bucket is open-ended `[2^62, ∞)`: quantiles landing in it
    /// report the observed max, not a fictitious power-of-two edge.
    #[test]
    fn top_bucket_quantiles_report_the_observed_max() {
        let h = Histogram::new();
        h.record_us(1 << 62); // nominal top-bucket floor
        h.record_us(u64::MAX); // beyond 2^63: folded into the same bucket
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_us, u64::MAX);
        assert_eq!(s.p99_us, u64::MAX);
        assert_eq!(s.max_us, u64::MAX);
    }
}
