//! Serving observability: wait-free log-bucketed latency histograms and
//! point-in-time [`ServiceStats`] snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

use start_core::CacheStats;

/// A power-of-two-bucketed histogram of microsecond latencies.
///
/// Bucket `i > 0` counts samples in `[2^(i-1), 2^i)` µs; bucket 0 counts
/// zeros. `record` is a handful of relaxed atomic adds — wait-free, callable
/// from every worker — and `snapshot` walks the buckets without stopping
/// recorders, so a snapshot taken under load is approximate. Quantiles are
/// reported as the upper edge of the bucket containing them (≤ 2×
/// resolution), which is exactly what a latency monitor needs and nothing a
/// correctness test should depend on.
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one latency sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros()) as usize; // 0 for us == 0
        self.buckets[bucket.min(63)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Upper bucket edge (µs) of the sample at quantile `q` in `[0, 1]`.
    fn quantile_us(&self, counts: &[u64; 64], total: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; 64] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        let sum = self.sum_us.load(Ordering::Relaxed);
        HistogramSnapshot {
            count: total,
            mean_us: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50_us: self.quantile_us(&counts, total, 0.50),
            p99_us: self.quantile_us(&counts, total, 0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen read of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_us: f64,
    /// Median latency, rounded up to the enclosing power-of-two bucket edge.
    pub p50_us: u64,
    /// 99th-percentile latency, same bucket-edge rounding.
    pub p99_us: u64,
    pub max_us: u64,
}

/// Point-in-time counters for the whole service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with an embedding.
    pub completed: u64,
    /// Requests refused at the door (`QueueFull`, invalid, shutting down).
    pub rejected: u64,
    /// Requests answered with `WorkerPanicked`/`ModelPoisoned`.
    pub failed: u64,
    /// Micro-batches flushed by the workers.
    pub batches: u64,
    /// Requests sitting in the queue right now.
    pub queue_depth: usize,
    /// Time from `submit` to batch pickup.
    pub queue_wait: HistogramSnapshot,
    /// Time a worker spent encoding each batch.
    pub encode: HistogramSnapshot,
    /// Embedding-cache counters (hits/misses/occupancy).
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Mean flushed batch size — the micro-batcher's effectiveness.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = Histogram::new();
        // 99 fast samples at 10µs, one slow outlier at 10_000µs.
        for _ in 0..99 {
            h.record_us(10);
        }
        h.record_us(10_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 10_000);
        // 10µs lives in (8, 16]; p50 reports the upper edge.
        assert_eq!(s.p50_us, 16);
        // p99 rank is 99 of 100 — still inside the fast bucket.
        assert_eq!(s.p99_us, 16);
        assert!(s.mean_us > 10.0 && s.mean_us < 200.0);
    }

    #[test]
    fn zero_samples_occupy_bucket_zero() {
        let h = Histogram::new();
        h.record_us(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 0);
    }

    #[test]
    fn giant_samples_saturate_the_last_bucket() {
        let h = Histogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.snapshot().max_us, u64::MAX);
    }
}
