//! In-memory brute-force embedding index backing the service's kNN
//! endpoint (§III-D3 zero-shot similarity, served online instead of
//! batch-evaluated) — and the *exactness reference* behind the
//! [`VectorIndex`] seam: the HNSW index (`start_ann::Hnsw`) is measured
//! against this scan's answers.

use std::collections::HashMap;

use start_ann::{AnnError, Precision, TopK, VectorIndex, VectorStore};

pub use start_ann::Neighbor;

/// An arena-backed embedding index with brute-force kNN.
///
/// Rows live in a [`VectorStore`] arena (row-major, chunked, optionally
/// reduced-precision), so the scan stays cache-friendly and a serving
/// configuration can hold embeddings at [`Precision::F16`] or
/// [`Precision::I8`] for a 2×/~4× memory cut. `id → row` lives in a side
/// map so ids can be sparse. Re-inserting an id overwrites its row in
/// place; removal swap-fills the hole with the last row (re-encoding is
/// value-preserving: a dequantized row re-quantizes to the same bits).
///
/// Brute force is the exact baseline — the f32 arena path accumulates in
/// the same order as the workspace `euclidean` kernel, so at
/// [`Precision::F32`] the distances are bit-for-bit the legacy scan's, and
/// selection goes through the shared [`TopK`] bound (O(N log k), not a
/// full sort) with the workspace tie-break: ascending distance, then
/// ascending id.
///
/// Malformed vectors are refused with a typed [`AnnError`], never a panic:
/// the store must survive a bad request with its state intact, because a
/// panic here would poison the whole service for every later caller.
pub struct EmbeddingStore {
    store: VectorStore,
    ids: Vec<u64>,
    rows: HashMap<u64, usize>,
}

impl EmbeddingStore {
    /// A full-precision (f32) store — the exactness reference.
    pub fn new(dim: usize) -> Self {
        Self::with_precision(dim, Precision::F32)
    }

    /// A store holding rows at the given arena precision (the serving
    /// tier's reduced-precision path).
    pub fn with_precision(dim: usize, precision: Precision) -> Self {
        Self { store: VectorStore::new(dim, precision), ids: Vec::new(), rows: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The arena precision rows are stored at.
    pub fn precision(&self) -> Precision {
        self.store.precision()
    }

    /// Approximate resident bytes of the embedding payload.
    pub fn memory_bytes(&self) -> usize {
        self.store.data_bytes() + self.ids.len() * 8 + self.rows.len() * 16
    }

    fn check_dim(&self, got: usize) -> Result<(), AnnError> {
        if got == self.store.dim() {
            Ok(())
        } else {
            Err(AnnError::DimensionMismatch { expected: self.store.dim(), got })
        }
    }

    /// Insert or overwrite the embedding for `id`.
    ///
    /// A wrong-length vector is refused with
    /// [`AnnError::DimensionMismatch`]; the store is unchanged.
    pub fn insert(&mut self, id: u64, emb: &[f32]) -> Result<(), AnnError> {
        self.check_dim(emb.len())?;
        match self.rows.get(&id) {
            Some(&row) => self.store.overwrite(row as u32, emb),
            None => {
                let row = self.store.push(emb);
                self.ids.push(id);
                self.rows.insert(id, row as usize);
            }
        }
        Ok(())
    }

    /// Remove `id`, swap-filling its row with the last one; returns whether
    /// it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(row) = self.rows.remove(&id) else {
            return false;
        };
        let last = self.ids.len() - 1;
        if row != last {
            let moved_id = self.ids[last];
            self.ids.swap(row, last);
            // Moving a row through dequantize → re-encode is lossless:
            // f16 values round-trip exactly, and an i8 row's max|x| is
            // 127·scale, so it re-quantizes to the same bytes.
            let mut moved = Vec::with_capacity(self.store.dim());
            self.store.copy_row(last as u32, &mut moved);
            self.store.overwrite(row as u32, &moved);
            self.rows.insert(moved_id, row);
        }
        self.ids.pop();
        self.store.truncate(last);
        true
    }

    /// The stored embedding for `id` (dequantized copy), if indexed.
    pub fn get(&self, id: u64) -> Option<Vec<f32>> {
        let &row = self.rows.get(&id)?;
        let mut out = Vec::with_capacity(self.store.dim());
        self.store.copy_row(row as u32, &mut out);
        Some(out)
    }

    /// The `k` nearest stored embeddings to `query`, closest first; ties
    /// break toward the smaller id so results are deterministic.
    ///
    /// A wrong-length query is refused with
    /// [`AnnError::DimensionMismatch`] instead of panicking mid-service.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        self.check_dim(query.len())?;
        let mut top = TopK::new(k);
        for (row, &id) in self.ids.iter().enumerate() {
            top.push(id, self.store.dist2(row as u32, query).sqrt());
        }
        Ok(top.into_sorted())
    }
}

impl VectorIndex for EmbeddingStore {
    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), AnnError> {
        EmbeddingStore::insert(self, id, vector)
    }

    fn remove(&mut self, id: u64) -> bool {
        EmbeddingStore::remove(self, id)
    }

    fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        EmbeddingStore::knn(self, query, k)
    }

    fn get(&self, id: u64) -> Option<Vec<f32>> {
        EmbeddingStore::get(self, id)
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, &[f32])) {
        let mut row = Vec::with_capacity(self.store.dim());
        for (r, &id) in self.ids.iter().enumerate() {
            self.store.copy_row(r as u32, &mut row);
            f(id, &row);
        }
    }

    fn memory_bytes(&self) -> usize {
        EmbeddingStore::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use start_core::euclidean;

    #[test]
    fn knn_returns_sorted_exact_neighbors() {
        let mut store = EmbeddingStore::new(2);
        store.insert(1, &[0.0, 0.0]).unwrap();
        store.insert(2, &[3.0, 4.0]).unwrap();
        store.insert(3, &[1.0, 0.0]).unwrap();
        let hits = store.knn(&[0.0, 0.0], 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits[1].distance, 1.0);
    }

    #[test]
    fn reinsert_overwrites_in_place() {
        let mut store = EmbeddingStore::new(2);
        store.insert(7, &[1.0, 1.0]).unwrap();
        store.insert(7, &[2.0, 2.0]).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(7), Some(vec![2.0, 2.0]));
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let mut store = EmbeddingStore::new(1);
        store.insert(9, &[5.0]).unwrap();
        store.insert(2, &[5.0]).unwrap();
        let hits = store.knn(&[5.0], 2).unwrap();
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    fn k_larger_than_store_returns_everything() {
        let mut store = EmbeddingStore::new(1);
        store.insert(1, &[0.0]).unwrap();
        assert_eq!(store.knn(&[0.0], 10).unwrap().len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error_not_a_panic() {
        let mut store = EmbeddingStore::new(3);
        assert_eq!(
            store.insert(1, &[0.0]),
            Err(AnnError::DimensionMismatch { expected: 3, got: 1 })
        );
        assert_eq!(store.len(), 0, "failed insert must not mutate the store");
        assert_eq!(
            store.knn(&[0.0; 4], 1),
            Err(AnnError::DimensionMismatch { expected: 3, got: 4 })
        );
        // The store survives bad requests: good ones still work.
        store.insert(1, &[1.0, 2.0, 3.0]).unwrap();
        let hits = store.knn(&[1.0, 2.0, 3.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn remove_swap_fills_and_keeps_answers_correct() {
        let mut store = EmbeddingStore::new(1);
        for id in 0..5u64 {
            store.insert(id, &[id as f32]).unwrap();
        }
        assert!(store.remove(1));
        assert!(!store.remove(1), "double remove reports absence");
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(4), Some(vec![4.0]), "swapped row still resolves");
        let hits = store.knn(&[1.1], 2).unwrap();
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 0);
    }

    #[test]
    fn reduced_precision_store_shrinks_and_survives_churn() {
        for precision in [Precision::F16, Precision::I8] {
            let dim = 16;
            let mut full = EmbeddingStore::new(dim);
            let mut small = EmbeddingStore::with_precision(dim, precision);
            assert_eq!(small.precision(), precision);
            for id in 0..40u64 {
                let v: Vec<f32> = (0..dim).map(|c| ((id * 31 + c as u64) as f32).sin()).collect();
                full.insert(id, &v).unwrap();
                small.insert(id, &v).unwrap();
            }
            // Churn: removals swap-fill through the quantized arena.
            for id in [3u64, 17, 39, 0] {
                assert!(full.remove(id));
                assert!(small.remove(id));
            }
            // Quantized answers stay near-exact on well-separated data.
            let q: Vec<f32> = (0..dim).map(|c| ((5 * 31 + c) as f32).sin()).collect();
            let exact = full.knn(&q, 5).unwrap();
            let approx = small.knn(&q, 5).unwrap();
            let exact_ids: Vec<u64> = exact.iter().map(|n| n.id).collect();
            let approx_ids: Vec<u64> = approx.iter().map(|n| n.id).collect();
            assert_eq!(exact_ids[0], approx_ids[0], "{precision:?}: nearest id must match");
            // Swap-filled rows round-trip through dequantize → re-encode:
            // what `get` returns is what `knn` ranked.
            let got = small.get(38).unwrap();
            assert_eq!(got.len(), dim);
        }
    }

    #[test]
    fn reduced_precision_cuts_resident_bytes_at_scale() {
        // The arena commits ~1 MiB chunks, so the precision cut only shows
        // once the store outgrows a single chunk — fill well past it.
        let dim = 64;
        let mut f32s = EmbeddingStore::new(dim);
        let mut f16s = EmbeddingStore::with_precision(dim, Precision::F16);
        let mut i8s = EmbeddingStore::with_precision(dim, Precision::I8);
        let v = vec![0.25f32; dim];
        for id in 0..40_000u64 {
            f32s.insert(id, &v).unwrap();
            f16s.insert(id, &v).unwrap();
            i8s.insert(id, &v).unwrap();
        }
        assert!(
            f16s.memory_bytes() < f32s.memory_bytes(),
            "f16 {} vs f32 {}",
            f16s.memory_bytes(),
            f32s.memory_bytes()
        );
        assert!(
            i8s.memory_bytes() < f16s.memory_bytes(),
            "i8 {} vs f16 {}",
            i8s.memory_bytes(),
            f16s.memory_bytes()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bounded-heap selection returns exactly what the legacy full
        /// sort did, for every store/query/k — including duplicate vectors
        /// (distance ties) drawn from a tiny value alphabet.
        #[test]
        fn heap_selection_matches_full_sort(
            rows in prop::collection::vec(prop::collection::vec(0..4i32, 2..3usize), 1..40usize),
            query in prop::collection::vec(0..4i32, 2..3usize),
            k in 0..12usize,
        ) {
            let dim = 2;
            let mut store = EmbeddingStore::new(dim);
            for (i, r) in rows.iter().enumerate() {
                let v: Vec<f32> = r.iter().take(dim).map(|&x| x as f32).collect();
                if v.len() == dim {
                    store.insert(i as u64, &v).unwrap();
                }
            }
            let q: Vec<f32> = query.iter().take(dim).map(|&x| x as f32).collect();
            prop_assume!(q.len() == dim);
            let got = store.knn(&q, k).unwrap();
            // Reference: materialize all candidates, full sort, truncate —
            // the pre-optimization implementation.
            let mut all: Vec<Neighbor> = Vec::new();
            store.for_each(&mut |id, v| {
                all.push(Neighbor { id, distance: euclidean(&q, v) });
            });
            all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
            all.truncate(k);
            prop_assert_eq!(got, all);
        }
    }
}
