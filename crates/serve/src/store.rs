//! In-memory embedding store backing the service's kNN endpoint (§III-D3
//! zero-shot similarity, served online instead of batch-evaluated).

use std::collections::HashMap;

use start_core::euclidean;

/// One kNN answer: an indexed id and its Euclidean distance to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    pub id: u64,
    pub distance: f32,
}

/// A flat-matrix embedding index with brute-force kNN.
///
/// Row-major storage keeps the scan cache-friendly; `id → row` lives in a
/// side map so ids can be sparse. Re-inserting an id overwrites its row in
/// place. Brute force is the right baseline at the scale the service holds
/// in memory — exact, branch-free, and the distance kernel is the same
/// [`euclidean`] used by the offline similarity evaluation.
pub struct EmbeddingStore {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<u64>,
    rows: HashMap<u64, usize>,
}

impl EmbeddingStore {
    pub fn new(dim: usize) -> Self {
        Self { dim, data: Vec::new(), ids: Vec::new(), rows: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert or overwrite the embedding for `id`.
    ///
    /// The vector length must match the store dimension.
    pub fn insert(&mut self, id: u64, emb: &[f32]) {
        assert_eq!(
            emb.len(),
            self.dim,
            "embedding dimension mismatch: store holds {}, got {}",
            self.dim,
            emb.len()
        );
        match self.rows.get(&id) {
            Some(&row) => {
                self.data[row * self.dim..(row + 1) * self.dim].copy_from_slice(emb);
            }
            None => {
                let row = self.ids.len();
                self.ids.push(id);
                self.data.extend_from_slice(emb);
                self.rows.insert(id, row);
            }
        }
    }

    /// The stored embedding for `id`, if indexed.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.rows.get(&id).map(|&row| &self.data[row * self.dim..(row + 1) * self.dim])
    }

    /// The `k` nearest stored embeddings to `query`, closest first; ties
    /// break toward the smaller id so results are deterministic.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut all: Vec<Neighbor> = self
            .ids
            .iter()
            .enumerate()
            .map(|(row, &id)| Neighbor {
                id,
                distance: euclidean(query, &self.data[row * self.dim..(row + 1) * self.dim]),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_returns_sorted_exact_neighbors() {
        let mut store = EmbeddingStore::new(2);
        store.insert(1, &[0.0, 0.0]);
        store.insert(2, &[3.0, 4.0]);
        store.insert(3, &[1.0, 0.0]);
        let hits = store.knn(&[0.0, 0.0], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits[1].distance, 1.0);
    }

    #[test]
    fn reinsert_overwrites_in_place() {
        let mut store = EmbeddingStore::new(2);
        store.insert(7, &[1.0, 1.0]);
        store.insert(7, &[2.0, 2.0]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(7), Some(&[2.0, 2.0][..]));
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let mut store = EmbeddingStore::new(1);
        store.insert(9, &[5.0]);
        store.insert(2, &[5.0]);
        let hits = store.knn(&[5.0], 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    fn k_larger_than_store_returns_everything() {
        let mut store = EmbeddingStore::new(1);
        store.insert(1, &[0.0]);
        assert_eq!(store.knn(&[0.0], 10).len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_is_rejected() {
        let mut store = EmbeddingStore::new(3);
        store.insert(1, &[0.0]);
    }
}
