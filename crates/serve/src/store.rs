//! In-memory brute-force embedding index backing the service's kNN
//! endpoint (§III-D3 zero-shot similarity, served online instead of
//! batch-evaluated) — and the *exactness reference* behind the
//! [`VectorIndex`] seam: the HNSW index (`start_ann::Hnsw`) is measured
//! against this scan's answers.

use std::collections::HashMap;

use start_ann::{AnnError, TopK, VectorIndex};
use start_core::euclidean;

pub use start_ann::Neighbor;

/// A flat-matrix embedding index with brute-force kNN.
///
/// Row-major storage keeps the scan cache-friendly; `id → row` lives in a
/// side map so ids can be sparse. Re-inserting an id overwrites its row in
/// place; removal swap-fills the hole with the last row. Brute force is the
/// exact baseline — the distance kernel is the same [`euclidean`] used by
/// the offline similarity evaluation, and selection goes through the shared
/// [`TopK`] bound (O(N log k), not a full sort) with the workspace
/// tie-break: ascending distance, then ascending id.
///
/// Malformed vectors are refused with a typed [`AnnError`], never a panic:
/// the store must survive a bad request with its state intact, because a
/// panic here would poison the whole service for every later caller.
pub struct EmbeddingStore {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<u64>,
    rows: HashMap<u64, usize>,
}

impl EmbeddingStore {
    pub fn new(dim: usize) -> Self {
        Self { dim, data: Vec::new(), ids: Vec::new(), rows: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn check_dim(&self, got: usize) -> Result<(), AnnError> {
        if got == self.dim {
            Ok(())
        } else {
            Err(AnnError::DimensionMismatch { expected: self.dim, got })
        }
    }

    /// Insert or overwrite the embedding for `id`.
    ///
    /// A wrong-length vector is refused with
    /// [`AnnError::DimensionMismatch`]; the store is unchanged.
    pub fn insert(&mut self, id: u64, emb: &[f32]) -> Result<(), AnnError> {
        self.check_dim(emb.len())?;
        match self.rows.get(&id) {
            Some(&row) => {
                self.data[row * self.dim..(row + 1) * self.dim].copy_from_slice(emb);
            }
            None => {
                let row = self.ids.len();
                self.ids.push(id);
                self.data.extend_from_slice(emb);
                self.rows.insert(id, row);
            }
        }
        Ok(())
    }

    /// Remove `id`, swap-filling its row with the last one; returns whether
    /// it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(row) = self.rows.remove(&id) else {
            return false;
        };
        let last = self.ids.len() - 1;
        if row != last {
            let moved_id = self.ids[last];
            self.ids.swap(row, last);
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[row * self.dim..(row + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
            self.rows.insert(moved_id, row);
        }
        self.ids.pop();
        self.data.truncate(last * self.dim);
        true
    }

    /// The stored embedding for `id`, if indexed.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.rows.get(&id).map(|&row| &self.data[row * self.dim..(row + 1) * self.dim])
    }

    /// The `k` nearest stored embeddings to `query`, closest first; ties
    /// break toward the smaller id so results are deterministic.
    ///
    /// A wrong-length query is refused with
    /// [`AnnError::DimensionMismatch`] instead of panicking mid-service.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        self.check_dim(query.len())?;
        let mut top = TopK::new(k);
        for (row, &id) in self.ids.iter().enumerate() {
            let distance = euclidean(query, &self.data[row * self.dim..(row + 1) * self.dim]);
            top.push(id, distance);
        }
        Ok(top.into_sorted())
    }
}

impl VectorIndex for EmbeddingStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), AnnError> {
        EmbeddingStore::insert(self, id, vector)
    }

    fn remove(&mut self, id: u64) -> bool {
        EmbeddingStore::remove(self, id)
    }

    fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, AnnError> {
        EmbeddingStore::knn(self, query, k)
    }

    fn get(&self, id: u64) -> Option<Vec<f32>> {
        EmbeddingStore::get(self, id).map(<[f32]>::to_vec)
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, &[f32])) {
        for (row, &id) in self.ids.iter().enumerate() {
            f(id, &self.data[row * self.dim..(row + 1) * self.dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn knn_returns_sorted_exact_neighbors() {
        let mut store = EmbeddingStore::new(2);
        store.insert(1, &[0.0, 0.0]).unwrap();
        store.insert(2, &[3.0, 4.0]).unwrap();
        store.insert(3, &[1.0, 0.0]).unwrap();
        let hits = store.knn(&[0.0, 0.0], 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits[1].distance, 1.0);
    }

    #[test]
    fn reinsert_overwrites_in_place() {
        let mut store = EmbeddingStore::new(2);
        store.insert(7, &[1.0, 1.0]).unwrap();
        store.insert(7, &[2.0, 2.0]).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(7), Some(&[2.0, 2.0][..]));
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let mut store = EmbeddingStore::new(1);
        store.insert(9, &[5.0]).unwrap();
        store.insert(2, &[5.0]).unwrap();
        let hits = store.knn(&[5.0], 2).unwrap();
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    fn k_larger_than_store_returns_everything() {
        let mut store = EmbeddingStore::new(1);
        store.insert(1, &[0.0]).unwrap();
        assert_eq!(store.knn(&[0.0], 10).unwrap().len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error_not_a_panic() {
        let mut store = EmbeddingStore::new(3);
        assert_eq!(
            store.insert(1, &[0.0]),
            Err(AnnError::DimensionMismatch { expected: 3, got: 1 })
        );
        assert_eq!(store.len(), 0, "failed insert must not mutate the store");
        assert_eq!(
            store.knn(&[0.0; 4], 1),
            Err(AnnError::DimensionMismatch { expected: 3, got: 4 })
        );
        // The store survives bad requests: good ones still work.
        store.insert(1, &[1.0, 2.0, 3.0]).unwrap();
        let hits = store.knn(&[1.0, 2.0, 3.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn remove_swap_fills_and_keeps_answers_correct() {
        let mut store = EmbeddingStore::new(1);
        for id in 0..5u64 {
            store.insert(id, &[id as f32]).unwrap();
        }
        assert!(store.remove(1));
        assert!(!store.remove(1), "double remove reports absence");
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(4), Some(&[4.0][..]), "swapped row still resolves");
        let hits = store.knn(&[1.1], 2).unwrap();
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bounded-heap selection returns exactly what the legacy full
        /// sort did, for every store/query/k — including duplicate vectors
        /// (distance ties) drawn from a tiny value alphabet.
        #[test]
        fn heap_selection_matches_full_sort(
            rows in prop::collection::vec(prop::collection::vec(0..4i32, 2..3usize), 1..40usize),
            query in prop::collection::vec(0..4i32, 2..3usize),
            k in 0..12usize,
        ) {
            let dim = 2;
            let mut store = EmbeddingStore::new(dim);
            for (i, r) in rows.iter().enumerate() {
                let v: Vec<f32> = r.iter().take(dim).map(|&x| x as f32).collect();
                if v.len() == dim {
                    store.insert(i as u64, &v).unwrap();
                }
            }
            let q: Vec<f32> = query.iter().take(dim).map(|&x| x as f32).collect();
            prop_assume!(q.len() == dim);
            let got = store.knn(&q, k).unwrap();
            // Reference: materialize all candidates, full sort, truncate —
            // the pre-optimization implementation.
            let mut all: Vec<Neighbor> = Vec::new();
            store.for_each(&mut |id, v| {
                all.push(Neighbor { id, distance: euclidean(&q, v) });
            });
            all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
            all.truncate(k);
            prop_assert_eq!(got, all);
        }
    }
}
