//! The embedding inference service: a long-lived pool of encode workers
//! behind a bounded micro-batching queue, serving one **versioned** model
//! slot that can be hot-swapped while requests are in flight.
//!
//! Requests enter through [`EmbeddingService::submit`] (blocking
//! backpressure) or [`EmbeddingService::try_submit`] (fail-fast
//! `QueueFull`). A worker that finds work open starts a micro-batch: it
//! keeps absorbing requests until the batch reaches `max_batch` or the
//! `max_wait` budget expires, then encodes the whole batch on its privately
//! owned tape [`BufferPool`] through the unified
//! [`Encoder`](start_core::encoder::Encoder) facade — which deduplicates
//! identical views, consults the slot's [`EmbeddingCache`], and produces the
//! same bits as a single-threaded `encode` call. Each request is answered
//! over its own channel, so batch composition never changes what a caller
//! observes, only when.
//!
//! ## Checkpoint hot-swap
//!
//! The model lives in a [`ModelSlot`]: `(version, Arc<StartModel>, cache,
//! in-flight counter)` behind an `RwLock`. Every micro-batch pins the slot
//! once — it clones the `Arc`s, registers with the slot's in-flight
//! counter *while still holding the read lock*, then encodes without any
//! lock held. [`EmbeddingService::publish`] double-buffers: it write-locks
//! the slot, installs the new model under `version + 1` with a **fresh**
//! cache pinned to the new epoch, releases the lock, and then drains —
//! waits until the old slot's in-flight count reaches zero, at which point
//! every reply produced from the old weights has already been sent. Two
//! consequences callers can rely on:
//!
//! - every reply is tagged with the version of the model that produced it
//!   ([`EmbeddingHandle::wait_versioned`]), and is exactly the bits of a
//!   pre- or post-swap model — never a blend, never a drop;
//! - cache invalidation is structural: a cache instance is pinned to one
//!   version epoch at construction, so an encode racing the swap can only
//!   insert into the retiring instance. Stale bits are unreachable from
//!   the new version.
//!
//! kNN entries are tagged with the model version current at indexing time;
//! [`ServiceStats::stale_index_entries`] counts entries whose version no
//! longer matches, and [`EmbeddingService::stale_indexed_ids`] names them
//! for re-indexing.
//!
//! Workers never leak panics: a panic inside the model is caught at the
//! batch boundary, the in-flight batch is answered with
//! [`ServeError::WorkerPanicked`], the service is poisoned, and queued +
//! future requests get [`ServeError::ModelPoisoned`]. `resume_unwind` stays
//! internal to the encoder's own thread scope.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use start_sync::atomic::{AtomicU64, Ordering};
use start_sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use std::time::{Duration, Instant};

use start_ann::{Hnsw, VectorIndex};
use start_core::encoder::{EmbeddingCache, EncodeError, EncodeOptions};
use start_core::{CacheStats, Embedding, StartModel};
use start_nn::BufferPool;
use start_traj::{TrajView, Trajectory};

use crate::config::{IndexKind, ServeConfig};
use crate::error::ServeError;
use crate::stats::{Histogram, ServiceStats};
use crate::store::{EmbeddingStore, Neighbor};

/// One queued unit of work: the view to encode and the channel that will
/// carry exactly one version-tagged answer back to the submitting caller.
struct Request {
    view: TrajView,
    tx: mpsc::Sender<Result<(Embedding, u64), ServeError>>,
    submitted_at: Instant,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
    poisoned: bool,
}

/// In-flight micro-batch counter of one model version — the drain barrier
/// of [`EmbeddingService::publish`].
struct InFlight {
    active: Mutex<u64>,
    zero: Condvar,
}

impl InFlight {
    fn new() -> Self {
        Self { active: Mutex::new(0), zero: Condvar::new() }
    }

    fn lock(&self) -> MutexGuard<'_, u64> {
        // Poison ride-through: the count is a plain integer, updated in one
        // instruction; a panicking peer cannot leave it torn. The RAII
        // guard below decrements even during unwinding, so a worker panic
        // can never wedge a publish drain.
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register one micro-batch. Called while the slot read lock is held,
    /// so a publish that swapped the slot afterwards is guaranteed to
    /// observe this batch in its drain.
    fn enter(self: &Arc<Self>) -> InFlightGuard {
        *self.lock() += 1;
        InFlightGuard { inner: Arc::clone(self) }
    }

    /// Block until every registered micro-batch has finished (replies
    /// sent). Returns the count observed at entry — how many old-version
    /// batches the publish had to wait out.
    fn drain(&self) -> u64 {
        let mut n = self.lock();
        let at_swap = *n;
        while *n > 0 {
            n = self.zero.wait(n).unwrap_or_else(PoisonError::into_inner);
        }
        at_swap
    }
}

/// RAII registration with an [`InFlight`] counter; decrements on drop, so
/// a panicking encode still releases its slot and cannot deadlock
/// [`EmbeddingService::publish`].
struct InFlightGuard {
    inner: Arc<InFlight>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let mut n = self.inner.lock();
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.inner.zero.notify_all();
        }
    }
}

/// One published model version: the weights, the cache pinned to this
/// version's epoch, and the in-flight counter that gates its retirement.
struct ModelSlot {
    version: u64,
    model: Arc<StartModel>,
    cache: Option<Arc<EmbeddingCache>>,
    in_flight: Arc<InFlight>,
}

/// What the kNN endpoints guard together: the index itself plus the model
/// version each id was indexed under (the hot-swap staleness tags).
struct IndexState {
    index: Box<dyn VectorIndex>,
    versions: HashMap<u64, u64>,
}

/// Everything the workers and the front-end share.
struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cfg: ServeConfig,
    slot: RwLock<ModelSlot>,
    store: RwLock<IndexState>,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    queue_wait: Histogram,
    encode: Histogram,
}

impl Shared {
    /// Queue lock with mutex-poison ride-through: the queue state is a
    /// plain VecDeque plus flags, valid at every instruction boundary, so a
    /// panicking peer cannot leave it torn.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Slot read lock, riding through poisoning for the same reason: the
    /// slot is replaced wholesale under the write lock, never mutated in
    /// place, so readers always see one coherent version.
    fn slot(&self) -> start_sync::RwLockReadGuard<'_, ModelSlot> {
        self.slot.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn store_read(&self) -> start_sync::RwLockReadGuard<'_, IndexState> {
        self.store.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn store_write(&self) -> start_sync::RwLockWriteGuard<'_, IndexState> {
        self.store.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> ServiceStats {
        let queue_depth = self.lock().queue.len();
        // Snapshot ordering: read the outcome counters (completed/failed)
        // BEFORE submitted. `submitted` is incremented (Release) before a
        // request is visible to workers, and completed/failed only after the
        // answer is sent, so reading outcomes first means any request that
        // slips in between the loads can only raise `submitted` — every
        // snapshot satisfies `submitted >= completed + failed`, and a drained
        // shutdown reports exact equality.
        let completed = self.completed.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire);
        let submitted = self.submitted.load(Ordering::Acquire);
        let (model_version, cache) = {
            let slot = self.slot();
            let cache = slot.cache.as_ref().map(|c| c.stats()).unwrap_or(CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                capacity: 0,
                epoch: slot.version,
            });
            (slot.version, cache)
        };
        let stale_index_entries = {
            let store = self.store_read();
            store.versions.values().filter(|&&v| v != model_version).count()
        };
        ServiceStats {
            submitted,
            completed,
            rejected: self.rejected.load(Ordering::Relaxed), // relaxed-ok: standalone reject tally, no cross-counter invariant
            failed,
            batches: self.batches.load(Ordering::Relaxed), // relaxed-ok: monotone batch tally, no cross-counter invariant
            queue_depth,
            queue_wait: self.queue_wait.snapshot(),
            encode: self.encode.snapshot(),
            cache,
            model_version,
            stale_index_entries,
        }
    }
}

/// The ticket for one submitted request.
///
/// Dropping the handle abandons the answer (the worker still encodes and
/// caches it); [`EmbeddingHandle::wait`] blocks until the worker responds.
pub struct EmbeddingHandle {
    rx: mpsc::Receiver<Result<(Embedding, u64), ServeError>>,
}

impl std::fmt::Debug for EmbeddingHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingHandle").finish_non_exhaustive()
    }
}

impl EmbeddingHandle {
    /// Block until the service answers this request.
    pub fn wait(self) -> Result<Embedding, ServeError> {
        self.wait_versioned().map(|(emb, _)| emb)
    }

    /// Block until the service answers, returning the embedding together
    /// with the version of the model that produced it — the hot-swap
    /// audit hook: across a [`EmbeddingService::publish`], every reply is
    /// tagged with exactly the pre- or post-swap version.
    pub fn wait_versioned(self) -> Result<(Embedding, u64), ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ResponseDropped))
    }
}

/// Receipt of one [`EmbeddingService::publish`] (or `Router::publish`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// The version that was serving before the swap.
    pub previous_version: u64,
    /// The version now serving (always `previous_version + 1`).
    pub version: u64,
    /// Old-version micro-batches that were still in flight at the swap and
    /// were drained before `publish` returned.
    pub drained_batches: u64,
}

/// A running embedding service. See the module docs for the data path.
pub struct EmbeddingService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EmbeddingService {
    /// Spawn the worker pool and return the running service (model
    /// version 0).
    pub fn start(model: Arc<StartModel>, cfg: ServeConfig) -> Self {
        let dim = model.cfg.dim;
        let index: Box<dyn VectorIndex> = match &cfg.index {
            IndexKind::BruteForce => Box::new(EmbeddingStore::with_precision(dim, cfg.precision)),
            IndexKind::Hnsw(hnsw_cfg) => Box::new(Hnsw::new(dim, hnsw_cfg.clone())),
        };
        let workers = cfg.workers.max(1);
        let slot = ModelSlot {
            version: 0,
            model,
            cache: cache_for_version(&cfg, 0),
            in_flight: Arc::new(InFlight::new()),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
                poisoned: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cfg,
            slot: RwLock::new(slot),
            store: RwLock::new(IndexState { index, versions: HashMap::new() }),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            encode: Histogram::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("start-serve-{i}"))
                    .spawn(move || worker_loop(&s, i))
                    .unwrap_or_else(|e| panic!("failed to spawn encode worker {i}: {e}"))
            })
            .collect();
        Self { shared, workers: handles }
    }

    /// Submit a trajectory, blocking while the queue is full.
    pub fn submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        self.submit_view(TrajView::identity(trajectory))
    }

    /// Submit a trajectory; fail with [`ServeError::QueueFull`] instead of
    /// blocking when the queue is at capacity.
    pub fn try_submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        self.enqueue(TrajView::identity(trajectory), false)
    }

    /// Submit a pre-built view (masking, departure-only timestamps, …),
    /// blocking while the queue is full.
    pub fn submit_view(&self, view: TrajView) -> Result<EmbeddingHandle, ServeError> {
        self.enqueue(view, true)
    }

    /// Submit a batch and wait for every answer, in submission order.
    pub fn encode(&self, trajectories: &[Trajectory]) -> Result<Vec<Embedding>, ServeError> {
        let handles: Vec<EmbeddingHandle> =
            trajectories.iter().map(|t| self.submit(t)).collect::<Result<_, _>>()?;
        handles.into_iter().map(EmbeddingHandle::wait).collect()
    }

    /// Swap in a new model checkpoint with zero dropped or stale replies.
    ///
    /// Double-buffered: the new model is installed under `version + 1`
    /// with a fresh cache pinned to the new epoch; requests picked up
    /// after the swap (including ones already queued) encode with the new
    /// weights, while micro-batches already pinned to the old slot finish
    /// on the old weights and are **drained** — `publish` returns only
    /// after every old-version reply has been sent. The kNN index is
    /// untouched; entries indexed under prior versions are version-tagged
    /// and reported as [`ServiceStats::stale_index_entries`].
    ///
    /// A model whose dimension does not match the index is refused with
    /// [`ServeError::DimensionMismatch`] — kNN distances across mixed
    /// dimensions are meaningless.
    pub fn publish(&self, model: Arc<StartModel>) -> Result<PublishReport, ServeError> {
        let expected = self.store_dim();
        if model.cfg.dim != expected {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
            return Err(ServeError::DimensionMismatch { expected, got: model.cfg.dim });
        }
        let old = {
            let mut slot = self.shared.slot.write().unwrap_or_else(PoisonError::into_inner);
            let version = slot.version + 1;
            let fresh = ModelSlot {
                version,
                model,
                cache: cache_for_version(&self.shared.cfg, version),
                in_flight: Arc::new(InFlight::new()),
            };
            std::mem::replace(&mut *slot, fresh)
        };
        // The write lock is released before draining: workers pin the new
        // slot immediately while the old version's in-flight batches run
        // to completion.
        let drained_batches = old.in_flight.drain();
        Ok(PublishReport {
            previous_version: old.version,
            version: old.version + 1,
            drained_batches,
        })
    }

    /// The model version currently serving (0 until the first
    /// [`EmbeddingService::publish`]).
    pub fn model_version(&self) -> u64 {
        self.shared.slot().version
    }

    /// Encode `trajectory` and index the embedding under `id` for
    /// [`EmbeddingService::knn`] queries. Re-indexing an id overwrites it
    /// (and refreshes its version tag).
    pub fn index(&self, id: u64, trajectory: &Trajectory) -> Result<(), ServeError> {
        let emb = self.submit(trajectory)?.wait()?;
        self.index_embedding(id, &emb)
    }

    /// Index a pre-computed embedding under `id` — the bulk-load path when
    /// embeddings come from an offline encode. A wrong-dimension vector is
    /// refused with [`ServeError::DimensionMismatch`]; the service and its
    /// index stay fully usable afterwards.
    pub fn index_embedding(&self, id: u64, embedding: &[f32]) -> Result<(), ServeError> {
        let version = self.model_version();
        let mut store = self.shared.store_write();
        let result = store.index.insert(id, embedding);
        match result {
            Ok(()) => {
                store.versions.insert(id, version);
            }
            Err(_) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
            }
        }
        Ok(result?)
    }

    /// Encode the query trajectory and return its `k` nearest indexed
    /// neighbours by Euclidean distance, closest first.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let emb = self.submit(query)?.wait()?;
        self.knn_embedding(&emb, k)
    }

    /// kNN over a pre-computed query embedding. A wrong-dimension query is
    /// refused with [`ServeError::DimensionMismatch`], never a panic.
    pub fn knn_embedding(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let result = self.shared.store_read().index.knn(query, k);
        if result.is_err() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
        }
        Ok(result?)
    }

    /// Drop `id` from the kNN index; returns whether it was indexed.
    /// (HNSW backends tombstone: the id is never returned again, the graph
    /// node keeps routing until a rebuild.)
    pub fn remove_index(&self, id: u64) -> bool {
        let mut store = self.shared.store_write();
        let removed = store.index.remove(id);
        if removed {
            store.versions.remove(&id);
        }
        removed
    }

    /// Number of embeddings currently indexed for kNN.
    pub fn indexed_len(&self) -> usize {
        self.shared.store_read().index.len()
    }

    /// Ids whose indexed embedding was produced by a model version other
    /// than the one currently serving — the re-indexing worklist after a
    /// [`EmbeddingService::publish`]. Sorted for determinism.
    pub fn stale_indexed_ids(&self) -> Vec<u64> {
        let current = self.model_version();
        let store = self.shared.store_read();
        let mut ids: Vec<u64> =
            store.versions.iter().filter(|&(_, &v)| v != current).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Approximate resident bytes of the kNN index — what a precision
    /// sweep reports alongside recall.
    pub fn index_memory_bytes(&self) -> usize {
        self.shared.store_read().index.memory_bytes()
    }

    /// Rebuild the kNN index as `kind`, re-inserting every live embedding
    /// in stable (insertion) order — how a service migrates from the exact
    /// scan to HNSW (or between HNSW tunings) without re-encoding anything.
    /// Version tags survive: rebuilding changes the backend, not the
    /// staleness of the embeddings in it.
    pub fn rebuild_index(&self, kind: IndexKind) {
        let mut store = self.shared.store_write();
        let dim = store.index.dim();
        let mut fresh: Box<dyn VectorIndex> = match &kind {
            IndexKind::BruteForce => {
                Box::new(EmbeddingStore::with_precision(dim, self.shared.cfg.precision))
            }
            IndexKind::Hnsw(hnsw_cfg) => Box::new(Hnsw::new(dim, hnsw_cfg.clone())),
        };
        store.index.for_each(&mut |id, vector| {
            // Dimensions match by construction: both indexes share `dim`.
            let _ = fresh.insert(id, vector);
        });
        store.index = fresh;
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stop accepting work, drain every queued request, join the workers,
    /// and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.shared.stats()
    }

    /// Flip the service into shutdown without joining the workers: new
    /// submissions (including callers blocked on a full queue) fail with
    /// [`ServeError::ShuttingDown`], while already-queued requests still
    /// drain. [`EmbeddingService::shutdown`] or drop completes the join.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    fn store_dim(&self) -> usize {
        self.shared.store_read().index.dim()
    }

    fn stop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the guarded encode region has
            // already answered its batch; nothing to propagate.
            let _ = handle.join();
        }
    }

    fn enqueue(&self, view: TrajView, block: bool) -> Result<EmbeddingHandle, ServeError> {
        if let Err(e) = self.validate(&view) {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
            return Err(ServeError::Invalid(e));
        }
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.lock();
        loop {
            if st.poisoned {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::ModelPoisoned);
            }
            if st.shutdown {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() < self.shared.cfg.queue_cap {
                break;
            }
            if !block {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::QueueFull { capacity: self.shared.cfg.queue_cap });
            }
            st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Counter coherence: `submitted` is incremented BEFORE the request
        // becomes visible to any worker (we still hold the queue lock), with
        // Release so the matching Acquire loads in `Shared::stats` order it
        // against the later `completed`/`failed` increments. Together with
        // reading completed/failed first in `stats`, every snapshot observes
        // `submitted >= completed + failed`, with equality once a shutdown
        // has drained the queue and joined the workers.
        self.shared.submitted.fetch_add(1, Ordering::Release);
        st.queue.push_back(Request { view, tx, submitted_at: Instant::now() });
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(EmbeddingHandle { rx })
    }

    /// Reject malformed requests at the door, so one bad submission can
    /// never fail the micro-batch it would have ridden in.
    fn validate(&self, view: &TrajView) -> Result<(), EncodeError> {
        if view.is_empty() {
            return Err(EncodeError::EmptyView { index: 0 });
        }
        let max_len = self.shared.slot().model.cfg.max_len;
        if view.len() > max_len && !self.shared.cfg.clamp {
            return Err(EncodeError::TooLong { index: 0, len: view.len(), max_len });
        }
        Ok(())
    }
}

impl Drop for EmbeddingService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The cache instance for one model version: fresh storage pinned to the
/// version's epoch (see the module docs on structural invalidation).
fn cache_for_version(cfg: &ServeConfig, version: u64) -> Option<Arc<EmbeddingCache>> {
    (cfg.cache_capacity > 0).then(|| {
        Arc::new(EmbeddingCache::with_shards_at_epoch(
            cfg.cache_capacity,
            cfg.cache_shards,
            version,
        ))
    })
}

/// Pull one micro-batch off the queue, or `None` when the worker should
/// exit (shutdown with an empty queue, or service poisoned).
fn collect_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut st = shared.lock();
    loop {
        if st.poisoned {
            return None;
        }
        if let Some(first) = st.queue.pop_front() {
            let mut batch = vec![first];
            let max_batch = shared.cfg.max_batch.max(1);
            let deadline = Instant::now() + shared.cfg.max_wait;
            loop {
                while batch.len() < max_batch {
                    match st.queue.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                // A shutting-down service flushes immediately: waiting out
                // the batching budget would only delay the drain.
                if batch.len() >= max_batch || st.shutdown || st.poisoned {
                    break;
                }
                // Saturating: a deadline already in the past yields a zero
                // budget, never an `Instant` subtraction panic — the clock
                // may jump between the deadline computation and this check.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _timeout) = shared
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            drop(st);
            shared.not_full.notify_all();
            return Some(batch);
        }
        if st.shutdown {
            return None;
        }
        st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `START_SERVE_LOG` enables the periodic stats line; a positive float
/// value overrides the 1 s default period.
fn log_interval() -> Option<Duration> {
    std::env::var("START_SERVE_LOG").ok().map(|v| {
        let secs = v.parse::<f64>().ok().filter(|s| *s > 0.0).unwrap_or(1.0);
        Duration::from_secs_f64(secs)
    })
}

fn log_stats_line(shared: &Shared) {
    let s = shared.stats();
    eprintln!(
        "[start-serve] v{} submitted={} completed={} failed={} rejected={} batches={} \
         mean_batch={:.1} depth={} wait_p50_us={} wait_p99_us={} enc_p50_us={} enc_p99_us={} \
         cache_hit_rate={:.3} stale_index={}",
        s.model_version,
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.batches,
        s.mean_batch_size(),
        s.queue_depth,
        s.queue_wait.p50_us,
        s.queue_wait.p99_us,
        s.encode.p50_us,
        s.encode.p99_us,
        s.cache.hit_rate(),
        s.stale_index_entries,
    );
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    if let Some(warmup) = shared.cfg.worker_warmup {
        std::thread::sleep(warmup);
    }
    let log_every = if worker_id == 0 { log_interval() } else { None };
    let mut last_log = Instant::now();
    // Each worker owns one tape buffer pool for its whole life, so steady
    // state encodes allocate nothing.
    let mut pool = BufferPool::default();
    while let Some(batch) = collect_batch(shared) {
        let picked_up = Instant::now();
        for req in &batch {
            let wait = picked_up.duration_since(req.submitted_at);
            shared.queue_wait.record_us(wait.as_micros() as u64);
        }
        let views: Vec<TrajView> = batch.iter().map(|r| r.view.clone()).collect();
        // Pin the slot once per micro-batch: version, weights and cache are
        // cloned — and the batch registered in-flight — under one read
        // lock, so a concurrent publish either sees this batch in its
        // drain or this batch already runs on the new version. The guard
        // decrements on drop (even through a panic), after the replies
        // below have been sent.
        let (version, model, cache, _in_flight) = {
            let slot = shared.slot();
            (slot.version, Arc::clone(&slot.model), slot.cache.clone(), slot.in_flight.enter())
        };
        let opts = EncodeOptions {
            threads: 1,
            chunk: shared.cfg.max_batch.max(1),
            clamp: shared.cfg.clamp,
            cache,
        };
        let taken = std::mem::take(&mut pool);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            model.encoder().encode_views_pooled(&views, &opts, taken)
        }));
        shared.encode.record_us(picked_up.elapsed().as_micros() as u64);
        shared.batches.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone batch tally
        match outcome {
            Ok(Ok((embeddings, returned))) => {
                pool = returned;
                for (req, emb) in batch.into_iter().zip(embeddings) {
                    // A dropped handle is a caller choice, not a failure.
                    let _ = req.tx.send(Ok((emb, version)));
                    // Release pairs with the Acquire snapshot in `stats`.
                    shared.completed.fetch_add(1, Ordering::Release);
                }
            }
            Ok(Err(e)) => {
                // Submit-time validation makes this unreachable today; if a
                // new validation ever appears in the encoder first, answer
                // with the typed error rather than wedging the callers.
                for req in batch {
                    let _ = req.tx.send(Err(ServeError::Invalid(e.clone())));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
            }
            Err(payload) => {
                let message = panic_message(payload);
                let drained: Vec<Request> = {
                    let mut st = shared.lock();
                    st.poisoned = true;
                    st.queue.drain(..).collect()
                };
                shared.not_empty.notify_all();
                shared.not_full.notify_all();
                for req in batch {
                    let _ =
                        req.tx.send(Err(ServeError::WorkerPanicked { message: message.clone() }));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
                for req in drained {
                    let _ = req.tx.send(Err(ServeError::ModelPoisoned));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
                return;
            }
        }
        if let Some(period) = log_every {
            if last_log.elapsed() >= period {
                last_log = Instant::now();
                log_stats_line(shared);
            }
        }
    }
}
