//! The embedding inference service: a long-lived pool of encode workers
//! behind a bounded micro-batching queue.
//!
//! Requests enter through [`EmbeddingService::submit`] (blocking
//! backpressure) or [`EmbeddingService::try_submit`] (fail-fast
//! `QueueFull`). A worker that finds work open starts a micro-batch: it
//! keeps absorbing requests until the batch reaches `max_batch` or the
//! `max_wait` budget expires, then encodes the whole batch on its privately
//! owned tape [`BufferPool`] through the unified
//! [`Encoder`](start_core::encoder::Encoder) facade — which deduplicates
//! identical views, consults the shared [`EmbeddingCache`], and produces the
//! same bits as a single-threaded `encode` call. Each request is answered
//! over its own channel, so batch composition never changes what a caller
//! observes, only when.
//!
//! Workers never leak panics: a panic inside the model is caught at the
//! batch boundary, the in-flight batch is answered with
//! [`ServeError::WorkerPanicked`], the service is poisoned, and queued +
//! future requests get [`ServeError::ModelPoisoned`]. `resume_unwind` stays
//! internal to the encoder's own thread scope.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use start_sync::atomic::{AtomicU64, Ordering};
use start_sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use std::time::{Duration, Instant};

use start_ann::{Hnsw, HnswConfig, Precision, VectorIndex};
use start_core::encoder::{EmbeddingCache, EncodeError, EncodeOptions};
use start_core::{CacheStats, Embedding, StartModel};
use start_nn::BufferPool;
use start_traj::{TrajView, Trajectory};

use crate::error::ServeError;
use crate::stats::{Histogram, ServiceStats};
use crate::store::{EmbeddingStore, Neighbor};

/// Which kNN backend the service builds behind its `index`/`knn`
/// endpoints. Swapping kinds changes latency/recall economics only — the
/// endpoint API and the deterministic tie-break stay identical.
#[derive(Debug, Clone, Default)]
pub enum IndexKind {
    /// Exact brute-force scan ([`EmbeddingStore`]) — the recall ground
    /// truth; right up to ~10⁵ embeddings.
    #[default]
    BruteForce,
    /// Approximate HNSW graph ([`Hnsw`]) — the scaling path for
    /// million-embedding stores; recall governed by
    /// [`HnswConfig::ef_search`].
    Hnsw(HnswConfig),
}

/// Tunables for [`EmbeddingService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Encode worker threads (minimum 1).
    pub workers: usize,
    /// Flush a micro-batch at this many requests.
    pub max_batch: usize,
    /// Flush a micro-batch this long after its first request is picked up,
    /// even if it is not full. Zero disables batching-by-wait.
    pub max_wait: Duration,
    /// Bounded submission-queue capacity; `submit` blocks and `try_submit`
    /// fails once this many requests are pending.
    pub queue_cap: usize,
    /// Total entries across the shared embedding cache; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Clamp over-length trajectories to the model's `max_len` (the
    /// offline default). When false, over-length submissions are rejected
    /// with a typed error instead.
    pub clamp: bool,
    /// kNN backend behind `index`/`knn` (brute force by default).
    pub index: IndexKind,
    /// Storage precision for brute-force indexed embeddings — the serving
    /// tier's reduced-precision path ([`Precision::F16`] halves resident
    /// bytes, [`Precision::I8`] cuts them ~4×, both at near-exact recall).
    /// HNSW backends carry their own [`HnswConfig::precision`].
    pub precision: Precision,
    /// Test hook: stall each worker this long before it starts draining,
    /// making queue-full conditions deterministic.
    #[doc(hidden)]
    pub worker_warmup: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_cap: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            clamp: true,
            index: IndexKind::default(),
            precision: Precision::F32,
            worker_warmup: None,
        }
    }
}

/// One queued unit of work: the view to encode and the channel that will
/// carry exactly one answer back to the submitting caller.
struct Request {
    view: TrajView,
    tx: mpsc::Sender<Result<Embedding, ServeError>>,
    submitted_at: Instant,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
    poisoned: bool,
}

/// Everything the workers and the front-end share.
struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cfg: ServeConfig,
    model: Arc<StartModel>,
    cache: Option<Arc<EmbeddingCache>>,
    store: RwLock<Box<dyn VectorIndex>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    queue_wait: Histogram,
    encode: Histogram,
}

impl Shared {
    /// Queue lock with mutex-poison ride-through: the queue state is a
    /// plain VecDeque plus flags, valid at every instruction boundary, so a
    /// panicking peer cannot leave it torn.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> ServiceStats {
        let queue_depth = self.lock().queue.len();
        // Snapshot ordering: read the outcome counters (completed/failed)
        // BEFORE submitted. `submitted` is incremented (Release) before a
        // request is visible to workers, and completed/failed only after the
        // answer is sent, so reading outcomes first means any request that
        // slips in between the loads can only raise `submitted` — every
        // snapshot satisfies `submitted >= completed + failed`, and a drained
        // shutdown reports exact equality.
        let completed = self.completed.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire);
        let submitted = self.submitted.load(Ordering::Acquire);
        ServiceStats {
            submitted,
            completed,
            rejected: self.rejected.load(Ordering::Relaxed), // relaxed-ok: standalone reject tally, no cross-counter invariant
            failed,
            batches: self.batches.load(Ordering::Relaxed), // relaxed-ok: monotone batch tally, no cross-counter invariant
            queue_depth,
            queue_wait: self.queue_wait.snapshot(),
            encode: self.encode.snapshot(),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or(CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                capacity: 0,
            }),
        }
    }
}

/// The ticket for one submitted request.
///
/// Dropping the handle abandons the answer (the worker still encodes and
/// caches it); [`EmbeddingHandle::wait`] blocks until the worker responds.
pub struct EmbeddingHandle {
    rx: mpsc::Receiver<Result<Embedding, ServeError>>,
}

impl std::fmt::Debug for EmbeddingHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingHandle").finish_non_exhaustive()
    }
}

impl EmbeddingHandle {
    /// Block until the service answers this request.
    pub fn wait(self) -> Result<Embedding, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ResponseDropped))
    }
}

/// A running embedding service. See the module docs for the data path.
pub struct EmbeddingService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EmbeddingService {
    /// Spawn the worker pool and return the running service.
    pub fn start(model: Arc<StartModel>, cfg: ServeConfig) -> Self {
        let cache = (cfg.cache_capacity > 0)
            .then(|| Arc::new(EmbeddingCache::with_shards(cfg.cache_capacity, cfg.cache_shards)));
        let dim = model.cfg.dim;
        let index: Box<dyn VectorIndex> = match &cfg.index {
            IndexKind::BruteForce => Box::new(EmbeddingStore::with_precision(dim, cfg.precision)),
            IndexKind::Hnsw(hnsw_cfg) => Box::new(Hnsw::new(dim, hnsw_cfg.clone())),
        };
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
                poisoned: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cfg,
            model,
            cache,
            store: RwLock::new(index),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            encode: Histogram::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("start-serve-{i}"))
                    .spawn(move || worker_loop(&s, i))
                    .unwrap_or_else(|e| panic!("failed to spawn encode worker {i}: {e}"))
            })
            .collect();
        Self { shared, workers: handles }
    }

    /// Submit a trajectory, blocking while the queue is full.
    pub fn submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        self.submit_view(TrajView::identity(trajectory))
    }

    /// Submit a trajectory; fail with [`ServeError::QueueFull`] instead of
    /// blocking when the queue is at capacity.
    pub fn try_submit(&self, trajectory: &Trajectory) -> Result<EmbeddingHandle, ServeError> {
        self.enqueue(TrajView::identity(trajectory), false)
    }

    /// Submit a pre-built view (masking, departure-only timestamps, …),
    /// blocking while the queue is full.
    pub fn submit_view(&self, view: TrajView) -> Result<EmbeddingHandle, ServeError> {
        self.enqueue(view, true)
    }

    /// Submit a batch and wait for every answer, in submission order.
    pub fn encode(&self, trajectories: &[Trajectory]) -> Result<Vec<Embedding>, ServeError> {
        let handles: Vec<EmbeddingHandle> =
            trajectories.iter().map(|t| self.submit(t)).collect::<Result<_, _>>()?;
        handles.into_iter().map(EmbeddingHandle::wait).collect()
    }

    /// Encode `trajectory` and index the embedding under `id` for
    /// [`EmbeddingService::knn`] queries. Re-indexing an id overwrites it.
    pub fn index(&self, id: u64, trajectory: &Trajectory) -> Result<(), ServeError> {
        let emb = self.submit(trajectory)?.wait()?;
        self.index_embedding(id, &emb)
    }

    /// Index a pre-computed embedding under `id` — the bulk-load path when
    /// embeddings come from an offline encode. A wrong-dimension vector is
    /// refused with [`ServeError::DimensionMismatch`]; the service and its
    /// index stay fully usable afterwards.
    pub fn index_embedding(&self, id: u64, embedding: &[f32]) -> Result<(), ServeError> {
        let result =
            self.shared.store.write().unwrap_or_else(PoisonError::into_inner).insert(id, embedding);
        if result.is_err() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
        }
        Ok(result?)
    }

    /// Encode the query trajectory and return its `k` nearest indexed
    /// neighbours by Euclidean distance, closest first.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let emb = self.submit(query)?.wait()?;
        self.knn_embedding(&emb, k)
    }

    /// kNN over a pre-computed query embedding. A wrong-dimension query is
    /// refused with [`ServeError::DimensionMismatch`], never a panic.
    pub fn knn_embedding(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let result = self.shared.store.read().unwrap_or_else(PoisonError::into_inner).knn(query, k);
        if result.is_err() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
        }
        Ok(result?)
    }

    /// Drop `id` from the kNN index; returns whether it was indexed.
    /// (HNSW backends tombstone: the id is never returned again, the graph
    /// node keeps routing until a rebuild.)
    pub fn remove_index(&self, id: u64) -> bool {
        self.shared.store.write().unwrap_or_else(PoisonError::into_inner).remove(id)
    }

    /// Number of embeddings currently indexed for kNN.
    pub fn indexed_len(&self) -> usize {
        self.shared.store.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Approximate resident bytes of the kNN index — what a precision
    /// sweep reports alongside recall.
    pub fn index_memory_bytes(&self) -> usize {
        self.shared.store.read().unwrap_or_else(PoisonError::into_inner).memory_bytes()
    }

    /// Rebuild the kNN index as `kind`, re-inserting every live embedding
    /// in stable (insertion) order — how a service migrates from the exact
    /// scan to HNSW (or between HNSW tunings) without re-encoding anything.
    pub fn rebuild_index(&self, kind: IndexKind) {
        let mut store = self.shared.store.write().unwrap_or_else(PoisonError::into_inner);
        let dim = store.dim();
        let mut fresh: Box<dyn VectorIndex> = match &kind {
            IndexKind::BruteForce => {
                Box::new(EmbeddingStore::with_precision(dim, self.shared.cfg.precision))
            }
            IndexKind::Hnsw(hnsw_cfg) => Box::new(Hnsw::new(dim, hnsw_cfg.clone())),
        };
        store.for_each(&mut |id, vector| {
            // Dimensions match by construction: both indexes share `dim`.
            let _ = fresh.insert(id, vector);
        });
        *store = fresh;
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stop accepting work, drain every queued request, join the workers,
    /// and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.shared.stats()
    }

    /// Flip the service into shutdown without joining the workers: new
    /// submissions (including callers blocked on a full queue) fail with
    /// [`ServeError::ShuttingDown`], while already-queued requests still
    /// drain. [`EmbeddingService::shutdown`] or drop completes the join.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    fn stop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the guarded encode region has
            // already answered its batch; nothing to propagate.
            let _ = handle.join();
        }
    }

    fn enqueue(&self, view: TrajView, block: bool) -> Result<EmbeddingHandle, ServeError> {
        if let Err(e) = self.validate(&view) {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
            return Err(ServeError::Invalid(e));
        }
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.lock();
        loop {
            if st.poisoned {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::ModelPoisoned);
            }
            if st.shutdown {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() < self.shared.cfg.queue_cap {
                break;
            }
            if !block {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone reject tally
                return Err(ServeError::QueueFull { capacity: self.shared.cfg.queue_cap });
            }
            st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Counter coherence: `submitted` is incremented BEFORE the request
        // becomes visible to any worker (we still hold the queue lock), with
        // Release so the matching Acquire loads in `Shared::stats` order it
        // against the later `completed`/`failed` increments. Together with
        // reading completed/failed first in `stats`, every snapshot observes
        // `submitted >= completed + failed`, with equality once a shutdown
        // has drained the queue and joined the workers.
        self.shared.submitted.fetch_add(1, Ordering::Release);
        st.queue.push_back(Request { view, tx, submitted_at: Instant::now() });
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(EmbeddingHandle { rx })
    }

    /// Reject malformed requests at the door, so one bad submission can
    /// never fail the micro-batch it would have ridden in.
    fn validate(&self, view: &TrajView) -> Result<(), EncodeError> {
        if view.is_empty() {
            return Err(EncodeError::EmptyView { index: 0 });
        }
        let max_len = self.shared.model.cfg.max_len;
        if view.len() > max_len && !self.shared.cfg.clamp {
            return Err(EncodeError::TooLong { index: 0, len: view.len(), max_len });
        }
        Ok(())
    }
}

impl Drop for EmbeddingService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pull one micro-batch off the queue, or `None` when the worker should
/// exit (shutdown with an empty queue, or service poisoned).
fn collect_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut st = shared.lock();
    loop {
        if st.poisoned {
            return None;
        }
        if let Some(first) = st.queue.pop_front() {
            let mut batch = vec![first];
            let max_batch = shared.cfg.max_batch.max(1);
            let deadline = Instant::now() + shared.cfg.max_wait;
            loop {
                while batch.len() < max_batch {
                    match st.queue.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                // A shutting-down service flushes immediately: waiting out
                // the batching budget would only delay the drain.
                if batch.len() >= max_batch || st.shutdown || st.poisoned {
                    break;
                }
                // Saturating: a deadline already in the past yields a zero
                // budget, never an `Instant` subtraction panic — the clock
                // may jump between the deadline computation and this check.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _timeout) = shared
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            drop(st);
            shared.not_full.notify_all();
            return Some(batch);
        }
        if st.shutdown {
            return None;
        }
        st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `START_SERVE_LOG` enables the periodic stats line; a positive float
/// value overrides the 1 s default period.
fn log_interval() -> Option<Duration> {
    std::env::var("START_SERVE_LOG").ok().map(|v| {
        let secs = v.parse::<f64>().ok().filter(|s| *s > 0.0).unwrap_or(1.0);
        Duration::from_secs_f64(secs)
    })
}

fn log_stats_line(shared: &Shared) {
    let s = shared.stats();
    eprintln!(
        "[start-serve] submitted={} completed={} failed={} rejected={} batches={} \
         mean_batch={:.1} depth={} wait_p50_us={} wait_p99_us={} enc_p50_us={} enc_p99_us={} \
         cache_hit_rate={:.3}",
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.batches,
        s.mean_batch_size(),
        s.queue_depth,
        s.queue_wait.p50_us,
        s.queue_wait.p99_us,
        s.encode.p50_us,
        s.encode.p99_us,
        s.cache.hit_rate(),
    );
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    if let Some(warmup) = shared.cfg.worker_warmup {
        std::thread::sleep(warmup);
    }
    let log_every = if worker_id == 0 { log_interval() } else { None };
    let mut last_log = Instant::now();
    // Each worker owns one tape buffer pool for its whole life, so steady
    // state encodes allocate nothing.
    let mut pool = BufferPool::default();
    while let Some(batch) = collect_batch(shared) {
        let picked_up = Instant::now();
        for req in &batch {
            let wait = picked_up.duration_since(req.submitted_at);
            shared.queue_wait.record_us(wait.as_micros() as u64);
        }
        let views: Vec<TrajView> = batch.iter().map(|r| r.view.clone()).collect();
        let opts = EncodeOptions {
            threads: 1,
            chunk: shared.cfg.max_batch.max(1),
            clamp: shared.cfg.clamp,
            cache: shared.cache.clone(),
        };
        let taken = std::mem::take(&mut pool);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.model.encoder().encode_views_pooled(&views, &opts, taken)
        }));
        shared.encode.record_us(picked_up.elapsed().as_micros() as u64);
        shared.batches.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone batch tally
        match outcome {
            Ok(Ok((embeddings, returned))) => {
                pool = returned;
                for (req, emb) in batch.into_iter().zip(embeddings) {
                    // A dropped handle is a caller choice, not a failure.
                    let _ = req.tx.send(Ok(emb));
                    // Release pairs with the Acquire snapshot in `stats`.
                    shared.completed.fetch_add(1, Ordering::Release);
                }
            }
            Ok(Err(e)) => {
                // Submit-time validation makes this unreachable today; if a
                // new validation ever appears in the encoder first, answer
                // with the typed error rather than wedging the callers.
                for req in batch {
                    let _ = req.tx.send(Err(ServeError::Invalid(e.clone())));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
            }
            Err(payload) => {
                let message = panic_message(payload);
                let drained: Vec<Request> = {
                    let mut st = shared.lock();
                    st.poisoned = true;
                    st.queue.drain(..).collect()
                };
                shared.not_empty.notify_all();
                shared.not_full.notify_all();
                for req in batch {
                    let _ =
                        req.tx.send(Err(ServeError::WorkerPanicked { message: message.clone() }));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
                for req in drained {
                    let _ = req.tx.send(Err(ServeError::ModelPoisoned));
                    shared.failed.fetch_add(1, Ordering::Release);
                }
                return;
            }
        }
        if let Some(period) = log_every {
            if last_log.elapsed() >= period {
                last_log = Instant::now();
                log_stats_line(shared);
            }
        }
    }
}
