//! Serving-tier configuration: [`ServeConfig`] (one [`EmbeddingService`]
//! replica) and [`RouterConfig`] (the sharded [`Router`] front-end), each
//! with the same `builder()` + typed-validation-error treatment
//! `StartConfig` has — the only construction path the workspace lint
//! accepts outside this file (rule 5 `no-config-literal`).
//!
//! [`EmbeddingService`]: crate::service::EmbeddingService
//! [`Router`]: crate::router::Router

use std::time::Duration;

use start_ann::{HnswConfig, HnswConfigError, Precision};

/// Which kNN backend the service builds behind its `index`/`knn`
/// endpoints. Swapping kinds changes latency/recall economics only — the
/// endpoint API and the deterministic tie-break stay identical.
#[derive(Debug, Clone, Default)]
pub enum IndexKind {
    /// Exact brute-force scan ([`crate::store::EmbeddingStore`]) — the
    /// recall ground truth; right up to ~10⁵ embeddings.
    #[default]
    BruteForce,
    /// Approximate HNSW graph ([`start_ann::Hnsw`]) — the scaling path for
    /// million-embedding stores; recall governed by
    /// [`HnswConfig::ef_search`].
    Hnsw(HnswConfig),
}

/// Tunables for [`crate::service::EmbeddingService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Encode worker threads (minimum 1).
    pub workers: usize,
    /// Flush a micro-batch at this many requests.
    pub max_batch: usize,
    /// Flush a micro-batch this long after its first request is picked up,
    /// even if it is not full. Zero disables batching-by-wait.
    pub max_wait: Duration,
    /// Bounded submission-queue capacity; `submit` blocks and `try_submit`
    /// fails once this many requests are pending.
    pub queue_cap: usize,
    /// Total entries across the shared embedding cache; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Clamp over-length trajectories to the model's `max_len` (the
    /// offline default). When false, over-length submissions are rejected
    /// with a typed error instead.
    pub clamp: bool,
    /// kNN backend behind `index`/`knn` (brute force by default).
    pub index: IndexKind,
    /// Storage precision for brute-force indexed embeddings — the serving
    /// tier's reduced-precision path ([`Precision::F16`] halves resident
    /// bytes, [`Precision::I8`] cuts them ~4×, both at near-exact recall).
    /// HNSW backends carry their own [`HnswConfig::precision`].
    pub precision: Precision,
    /// Test hook: stall each worker this long before it starts draining,
    /// making queue-full conditions deterministic.
    #[doc(hidden)]
    pub worker_warmup: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_cap: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            clamp: true,
            index: IndexKind::default(),
            precision: Precision::F32,
            worker_warmup: None,
        }
    }
}

impl ServeConfig {
    /// Builder seeded from [`ServeConfig::default`]; `build()` validates.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: Self::default() }
    }

    /// Builder seeded from this config (tweak-and-revalidate).
    pub fn to_builder(&self) -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: self.clone() }
    }

    /// Check the invariants `EmbeddingService::start` would otherwise
    /// normalize silently: at least one worker, a non-empty micro-batch
    /// budget, a usable queue, and a valid HNSW tuning when one is chosen.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.workers == 0 {
            return Err(ServeConfigError::ZeroWorkers);
        }
        if self.max_batch == 0 {
            return Err(ServeConfigError::ZeroMaxBatch);
        }
        if self.queue_cap == 0 {
            return Err(ServeConfigError::ZeroQueueCap);
        }
        if let IndexKind::Hnsw(hnsw) = &self.index {
            hnsw.validate()?;
        }
        Ok(())
    }
}

/// Why a [`ServeConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// A worker-less service would accept requests and never answer them.
    ZeroWorkers,
    /// A zero-request micro-batch can never flush.
    ZeroMaxBatch,
    /// A zero-capacity queue rejects every submission.
    ZeroQueueCap,
    /// The chosen HNSW backend tuning is invalid.
    Hnsw(HnswConfigError),
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroWorkers => write!(f, "serve config: workers must be at least 1"),
            Self::ZeroMaxBatch => write!(f, "serve config: max_batch must be at least 1"),
            Self::ZeroQueueCap => write!(f, "serve config: queue_cap must be at least 1"),
            Self::Hnsw(e) => write!(f, "serve config: {e}"),
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl From<HnswConfigError> for ServeConfigError {
    fn from(e: HnswConfigError) -> Self {
        Self::Hnsw(e)
    }
}

/// Chainable builder for [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.cfg.max_wait = max_wait;
        self
    }

    pub fn queue_cap(mut self, queue_cap: usize) -> Self {
        self.cfg.queue_cap = queue_cap;
        self
    }

    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cfg.cache_capacity = cache_capacity;
        self
    }

    pub fn cache_shards(mut self, cache_shards: usize) -> Self {
        self.cfg.cache_shards = cache_shards;
        self
    }

    pub fn clamp(mut self, clamp: bool) -> Self {
        self.cfg.clamp = clamp;
        self
    }

    pub fn index(mut self, index: IndexKind) -> Self {
        self.cfg.index = index;
        self
    }

    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    #[doc(hidden)]
    pub fn worker_warmup(mut self, warmup: Duration) -> Self {
        self.cfg.worker_warmup = Some(warmup);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Tunables for [`crate::router::Router::start`]: how many
/// [`crate::service::EmbeddingService`] replicas to shard requests over,
/// and the per-replica service tuning. Note `cache_capacity` is **per
/// replica** — fingerprint sharding means replicas cache disjoint slices
/// of the working set, so aggregate capacity grows linearly with the
/// replica count.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica count (minimum 1); the shard of a request is its trajectory
    /// fingerprint mod this.
    pub replicas: usize,
    /// Configuration applied to every replica.
    pub serve: ServeConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { replicas: 2, serve: ServeConfig::default() }
    }
}

impl RouterConfig {
    /// Builder seeded from [`RouterConfig::default`]; `build()` validates.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder { cfg: Self::default() }
    }

    /// Builder seeded from this config (tweak-and-revalidate).
    pub fn to_builder(&self) -> RouterConfigBuilder {
        RouterConfigBuilder { cfg: self.clone() }
    }

    pub fn validate(&self) -> Result<(), RouterConfigError> {
        if self.replicas == 0 {
            return Err(RouterConfigError::ZeroReplicas);
        }
        self.serve.validate()?;
        Ok(())
    }
}

/// Why a [`RouterConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterConfigError {
    /// A router with no replicas has nowhere to route.
    ZeroReplicas,
    /// The per-replica service config is invalid.
    Serve(ServeConfigError),
}

impl std::fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroReplicas => write!(f, "router config: replicas must be at least 1"),
            Self::Serve(e) => write!(f, "router config: {e}"),
        }
    }
}

impl std::error::Error for RouterConfigError {}

impl From<ServeConfigError> for RouterConfigError {
    fn from(e: ServeConfigError) -> Self {
        Self::Serve(e)
    }
}

/// Chainable builder for [`RouterConfig`].
#[derive(Debug, Clone)]
pub struct RouterConfigBuilder {
    cfg: RouterConfig,
}

impl RouterConfigBuilder {
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas;
        self
    }

    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.cfg.serve = serve;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<RouterConfig, RouterConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(RouterConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_reject_degenerate_configs_with_typed_errors() {
        assert_eq!(
            ServeConfig::builder().workers(0).build().unwrap_err(),
            ServeConfigError::ZeroWorkers
        );
        assert_eq!(
            ServeConfig::builder().max_batch(0).build().unwrap_err(),
            ServeConfigError::ZeroMaxBatch
        );
        assert_eq!(
            ServeConfig::builder().queue_cap(0).build().unwrap_err(),
            ServeConfigError::ZeroQueueCap
        );
        assert_eq!(
            RouterConfig::builder().replicas(0).build().unwrap_err(),
            RouterConfigError::ZeroReplicas
        );
    }

    #[test]
    fn invalid_nested_configs_surface_through_the_outer_builder() {
        let bad_hnsw = HnswConfig { m: 1, ..HnswConfig::default() };
        let err = ServeConfig::builder().index(IndexKind::Hnsw(bad_hnsw.clone())).build();
        assert_eq!(
            err.unwrap_err(),
            ServeConfigError::Hnsw(HnswConfigError::MOutOfRange { got: 1 })
        );

        let serve = ServeConfig { workers: 0, ..ServeConfig::default() };
        let err = RouterConfig::builder().serve(serve).build();
        assert_eq!(err.unwrap_err(), RouterConfigError::Serve(ServeConfigError::ZeroWorkers));
    }

    #[test]
    fn to_builder_round_trips() {
        let cfg = ServeConfig::builder().workers(3).cache_capacity(11).build().unwrap();
        let again = cfg.to_builder().build().unwrap();
        assert_eq!(again.workers, 3);
        assert_eq!(again.cache_capacity, 11);

        let rc = RouterConfig::builder().replicas(4).build().unwrap();
        assert_eq!(rc.to_builder().build().unwrap().replicas, 4);
    }
}
