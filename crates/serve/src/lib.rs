//! `start-serve`: the online inference layer over a trained
//! [`StartModel`](start_core::StartModel).
//!
//! Offline evaluation encodes a dataset once; serving answers a stream of
//! single-trajectory requests. This crate bridges the two with a
//! [`service::EmbeddingService`]: a bounded submission queue, N encode
//! workers that micro-batch requests (flush on `max_batch` or `max_wait`),
//! a sharded LRU [`EmbeddingCache`](start_core::encoder::EmbeddingCache)
//! keyed by trajectory fingerprint, and a kNN endpoint behind the
//! [`VectorIndex`](start_ann::VectorIndex) seam — the exact brute-force
//! [`store::EmbeddingStore`] by default, the approximate
//! [`Hnsw`](start_ann::Hnsw) graph via
//! [`ServeConfig::index`](service::ServeConfig) — all answering through
//! typed handles with a typed [`error::ServeError`] surface.
//!
//! The service is a scheduler, not a second encoder: every batch goes
//! through the same [`Encoder`](start_core::encoder::Encoder) facade the
//! offline paths use, so a served embedding is bit-for-bit the embedding
//! `Encoder::encode` would have produced, regardless of worker count,
//! batch composition, or arrival order.

pub mod error;
pub mod service;
pub mod stats;
pub mod store;

pub use error::ServeError;
pub use service::{EmbeddingHandle, EmbeddingService, IndexKind, ServeConfig};
pub use start_ann::{AnnError, Hnsw, HnswConfig, Precision, VectorIndex};
pub use stats::{Histogram, HistogramSnapshot, ServiceStats};
pub use store::{EmbeddingStore, Neighbor};
