//! `start-serve`: the online inference layer over a trained
//! [`StartModel`](start_core::StartModel).
//!
//! Offline evaluation encodes a dataset once; serving answers a stream of
//! single-trajectory requests. The client-facing entry point is the
//! [`router::Router`]: N [`service::EmbeddingService`] replicas sharded by
//! 128-bit trajectory fingerprint (same trajectory → same replica, across
//! restarts), behind one `submit`/`knn`/`index`/`stats` surface. Each
//! replica is a bounded submission queue, encode workers that micro-batch
//! requests (flush on `max_batch` or `max_wait`), a sharded LRU
//! [`EmbeddingCache`](start_core::encoder::EmbeddingCache) pinned to the
//! current model-version epoch, and a kNN endpoint behind the
//! [`VectorIndex`](start_ann::VectorIndex) seam — the exact brute-force
//! [`store::EmbeddingStore`] by default, the approximate
//! [`Hnsw`](start_ann::Hnsw) graph via
//! [`ServeConfig::index`](config::ServeConfig) — all answering through
//! typed handles with a typed [`error::ServeError`] surface.
//!
//! Checkpoints hot-swap without downtime: [`router::Router::publish`]
//! double-buffers the model behind a versioned slot per replica, drains
//! in-flight micro-batches on the old version, and starts fresh caches at
//! the new version epoch — zero dropped replies, zero stale bits, every
//! reply tagged with the version that produced it
//! ([`service::EmbeddingHandle::wait_versioned`]).
//!
//! The service is a scheduler, not a second encoder: every batch goes
//! through the same [`Encoder`](start_core::encoder::Encoder) facade the
//! offline paths use, so a served embedding is bit-for-bit the embedding
//! `Encoder::encode` would have produced, regardless of worker count,
//! replica count, batch composition, or arrival order.
//!
//! [`sweep`] is the parent/child configuration-sweep orchestrator used by
//! the serving benchmarks to fan isolated measurement runs out to child
//! processes and merge their results.

pub mod config;
pub mod error;
pub mod router;
pub mod service;
pub mod stats;
pub mod store;
pub mod sweep;

pub use config::{
    IndexKind, RouterConfig, RouterConfigBuilder, RouterConfigError, ServeConfig,
    ServeConfigBuilder, ServeConfigError,
};
pub use error::ServeError;
pub use router::{fold_fingerprint, Router, RouterStats};
pub use service::{EmbeddingHandle, EmbeddingService, PublishReport};
pub use start_ann::{
    AnnError, Hnsw, HnswConfig, HnswConfigBuilder, HnswConfigError, Precision, VectorIndex,
};
pub use stats::{Histogram, HistogramSnapshot, ServiceStats};
pub use store::{EmbeddingStore, Neighbor};
pub use sweep::{emit_result, run_sweep, SweepError, SweepJob, SweepRun, RESULT_MARKER};
