//! Seeded-bug tests for the normal-mode lock-order sanitizer: a
//! deliberately reversed lock pair must abort with both acquisition sites;
//! a consistent order must stay quiet.

use std::panic::{catch_unwind, AssertUnwindSafe};

use start_sync::{Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> start_sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn force_sanitizer_on() {
    // Cached process-wide on first use; every test in this binary sets it
    // first, so release-mode runs exercise the sanitizer too.
    std::env::set_var("START_SANITIZE", "1");
}

#[test]
fn reversed_lock_pair_aborts_with_both_acquisition_sites() {
    force_sanitizer_on();
    let a = Mutex::new(0u8); // class A
    let b = Mutex::new(0u8); // class B

    // First pass establishes the order A → B.
    {
        let _ga = lock(&a);
        let _gb = lock(&b);
    }

    // Second pass takes them reversed: the sanitizer must abort on the
    // acquisition of A while holding B, naming both sites.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gb = lock(&b);
        let _ga = lock(&a);
    }));
    let payload = match result {
        Err(p) => p,
        Ok(()) => panic!("reversed acquisition should have aborted"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".to_string());
    assert!(msg.contains("lock-order inversion"), "unexpected message: {msg}");
    // Both acquisition sites: the one in this (reversed) pass and the
    // exemplar from the first pass — all in this file.
    let occurrences = msg.matches("tests/lock_order.rs").count();
    assert!(occurrences >= 2, "expected both acquisition sites in: {msg}");
}

#[test]
fn consistent_lock_order_stays_quiet() {
    force_sanitizer_on();
    let outer = Mutex::new(());
    let inner = Mutex::new(());
    for _ in 0..3 {
        let _go = lock(&outer);
        let _gi = lock(&inner);
    }
    // Taking only the inner lock is not an inversion.
    let _gi = lock(&inner);
}

#[test]
fn same_class_sharded_locks_are_exempt() {
    force_sanitizer_on();
    // N locks created at one source site share a class; nesting them (as a
    // sharded structure might under rehash/drain) must not self-report.
    let shards: Vec<Mutex<u32>> = (0..4).map(|i| Mutex::new(i)).collect();
    let _g0 = lock(&shards[0]);
    let _g1 = lock(&shards[1]);
    let _g2 = lock(&shards[2]);
}

#[test]
fn condvar_wait_releases_the_held_entry() {
    force_sanitizer_on();
    use std::time::Duration;
    let pair = start_sync::Arc::new((Mutex::new(false), start_sync::Condvar::new()));
    let other = Mutex::new(());
    // Holding `flag`'s mutex, wait (times out); during the wait the mutex is
    // not held, so another thread taking `other` then `flag` is NOT an
    // inversion — verify the held-set bookkeeping by taking `other` after
    // the wait returns re-acquired, which records flag→other... then take
    // the locks in the same order again: still quiet.
    let (flag, cv) = &*pair;
    let g = lock(flag);
    let (g, _) =
        cv.wait_timeout(g, Duration::from_millis(1)).unwrap_or_else(PoisonError::into_inner);
    let _go = lock(&other);
    drop(g);
}
