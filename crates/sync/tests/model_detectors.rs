//! Seeded-bug tests: each model-checker detector must actually fire on a
//! deliberately broken model, and must stay quiet on the correct twin.

use std::time::Duration;

use start_sync::model::{check, spawn, spawn_named, FindingKind, ModelConfig};
use start_sync::{Arc, Condvar, Mutex, PoisonError};

fn cfg() -> ModelConfig {
    ModelConfig { max_schedules: 500, random_iters: 100, ..ModelConfig::default() }
}

fn lock<T>(m: &Mutex<T>) -> start_sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn clean_counter_model_reports_no_findings() {
    let report = check(&cfg(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                spawn(move || {
                    *lock(&c) += 1;
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                panic!("worker panicked");
            }
        }
        assert_eq!(*lock(&counter), 2);
    });
    report.assert_clean();
    assert!(report.distinct_schedules >= 2, "expected real interleaving choices");
}

#[test]
fn reordered_lock_pair_is_reported_as_deadlock() {
    // Classic AB/BA deadlock. The explorer must find the schedule where each
    // thread holds one lock and wants the other. (In model mode the
    // lock-order sanitizer is off by design — the explorer owns detection.)
    let report = check(&cfg(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = spawn_named("ab", move || {
            let _ga = lock(&a1);
            let _gb = lock(&b1);
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = spawn_named("ba", move || {
            let _gb = lock(&b2);
            let _ga = lock(&a2);
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert_eq!(report.findings.len(), 1, "exploration stops at the first finding");
    assert_eq!(report.findings[0].kind, FindingKind::Deadlock, "{}", report.findings[0]);
    assert!(!report.findings[0].schedule.is_empty(), "finding must carry its schedule");
}

#[test]
fn dropped_notify_is_reported_as_lost_wakeup() {
    // The producer sets the flag but never notifies: any schedule where the
    // consumer blocks first leaves it waiting forever.
    let report = check(&cfg(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let consumer = spawn_named("consumer", move || {
            let (flag, cv) = &*s;
            let mut g = lock(flag);
            while !*g {
                g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let s = Arc::clone(&state);
        let producer = spawn_named("producer", move || {
            let (flag, _cv) = &*s;
            *lock(flag) = true;
            // BUG: missing cv.notify_one()
        });
        let _ = producer.join();
        let _ = consumer.join();
    });
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].kind, FindingKind::LostWakeup, "{}", report.findings[0]);
    assert!(report.findings[0].detail.contains("consumer"), "{}", report.findings[0]);
}

#[test]
fn if_guarded_wait_is_reported_as_unguarded_on_spurious_wakeup() {
    let cfg = ModelConfig { spurious_wakeups: true, ..cfg() };
    let report = check(&cfg, || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let consumer = spawn_named("consumer", move || {
            let (flag, cv) = &*s;
            let mut g = lock(flag);
            // BUG: `if` instead of `while` — a spurious wakeup escapes the
            // wait without re-checking the predicate.
            if !*g {
                g = cv.wait(g).unwrap_or_else(PoisonError::into_inner); // wait-ok: deliberate seeded bug
            }
            drop(g);
        });
        let s = Arc::clone(&state);
        let producer = spawn_named("producer", move || {
            let (flag, cv) = &*s;
            *lock(flag) = true;
            cv.notify_one();
        });
        let _ = producer.join();
        let _ = consumer.join();
    });
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].kind, FindingKind::UnguardedWait, "{}", report.findings[0]);
}

#[test]
fn while_guarded_wait_stays_clean_under_spurious_wakeups() {
    let cfg = ModelConfig { spurious_wakeups: true, max_spurious: 2, ..cfg() };
    let report = check(&cfg, || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let consumer = spawn(move || {
            let (flag, cv) = &*s;
            let mut g = lock(flag);
            while !*g {
                g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let s = Arc::clone(&state);
        let producer = spawn(move || {
            let (flag, cv) = &*s;
            *lock(flag) = true;
            cv.notify_one();
        });
        let _ = producer.join();
        let _ = consumer.join();
    });
    report.assert_clean();
}

#[test]
fn timed_wait_fires_only_when_stuck_and_unblocks_the_model() {
    // The producer sets the flag but never notifies; the consumer's timed
    // wait must fire (exactly in the otherwise-stuck schedule) and let the
    // predicate re-check observe the flag. No findings: the timeout is the
    // legitimate escape hatch.
    let report = check(&cfg(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let consumer = spawn(move || {
            let (flag, cv) = &*s;
            let mut g = lock(flag);
            while !*g {
                let (g2, _timed_out) = cv
                    .wait_timeout(g, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
                g = g2;
            }
        });
        let s = Arc::clone(&state);
        let producer = spawn(move || {
            let (flag, _cv) = &*s;
            *lock(flag) = true;
        });
        let _ = producer.join();
        let _ = consumer.join();
    });
    report.assert_clean();
}

#[test]
fn model_channels_deliver_and_report_disconnects() {
    let report = check(&cfg(), || {
        let (tx, rx) = start_sync::mpsc::channel::<u32>();
        let sender = spawn(move || {
            tx.send(7).map_err(|_| "receiver vanished").ok();
            // tx dropped here: rx must observe the disconnect, not hang.
        });
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err(), "disconnect must surface as RecvError");
        let _ = sender.join();
    });
    report.assert_clean();
}

#[test]
fn root_panic_is_reported_as_panic_finding() {
    let report = check(&cfg(), || {
        let flip = Arc::new(Mutex::new(0u8));
        let f = Arc::clone(&flip);
        let t = spawn(move || {
            *lock(&f) = 1;
        });
        let _ = t.join();
        assert_eq!(*lock(&flip), 2, "deliberately wrong");
    });
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].kind, FindingKind::Panic, "{}", report.findings[0]);
}

#[test]
fn worker_panic_propagates_through_join() {
    // A panicking model thread must not hang the schedule: join returns the
    // payload, and a body that handles it completes cleanly.
    let report = check(&cfg(), || {
        let poison = Arc::new(Mutex::new(0u8));
        let p = Arc::clone(&poison);
        let t = spawn_named("bad", move || {
            let _g = lock(&p);
            panic!("shard exploded");
        });
        let err = match t.join() {
            Err(e) => e,
            Ok(()) => panic!("worker should have panicked"),
        };
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("<other>");
        assert_eq!(msg, "shard exploded");
        // The panicking worker poisoned the mutex; poison-riding still works.
        assert_eq!(*lock(&poison), 0);
        assert!(poison.is_poisoned());
    });
    report.assert_clean();
}
