//! `RwLock` shim: delegates to `std::sync::RwLock`, with model-mode
//! scheduling (readers share, writers exclusive) and lock-order tracking —
//! read and write acquisitions participate in the same order class.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::AtomicU64 as RawAtomicU64; // sync-ok: shim-internal id cell
use std::sync::{
    LockResult, PoisonError, RwLock as StdRwLock, RwLockReadGuard as StdReadGuard,
    RwLockWriteGuard as StdWriteGuard, TryLockError,
}; // sync-ok: the shim wraps std

use crate::model::exec::{self, Execution};
use crate::{order, tls, Arc};

pub struct RwLock<T> {
    inner: StdRwLock<T>,
    id: RawAtomicU64,
    class: &'static Location<'static>,
}

type ModelOwner = (Arc<Execution>, usize, u64);

pub struct RwLockReadGuard<'a, T> {
    std: Option<StdReadGuard<'a, T>>,
    model: Option<ModelOwner>,
    order: Option<order::Token>,
}

pub struct RwLockWriteGuard<'a, T> {
    std: Option<StdWriteGuard<'a, T>>,
    model: Option<ModelOwner>,
    order: Option<order::Token>,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value), id: RawAtomicU64::new(0), class: Location::caller() }
    }

    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(ctx) = tls::ctx() {
            let id = exec::object_id(&self.id);
            ctx.exec.acquire_rw(ctx.tid, id, false);
            let (g, poisoned) = match self.inner.try_read() {
                Ok(g) => (g, false),
                Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
                Err(TryLockError::WouldBlock) => match self.inner.read() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                },
            };
            let guard =
                RwLockReadGuard { std: Some(g), model: Some((ctx.exec, ctx.tid, id)), order: None };
            return if poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
        }
        let order = order::on_acquire(self.class, Location::caller());
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard { std: Some(g), model: None, order }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                std: Some(p.into_inner()),
                model: None,
                order,
            })),
        }
    }

    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(ctx) = tls::ctx() {
            let id = exec::object_id(&self.id);
            ctx.exec.acquire_rw(ctx.tid, id, true);
            let (g, poisoned) = match self.inner.try_write() {
                Ok(g) => (g, false),
                Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
                Err(TryLockError::WouldBlock) => match self.inner.write() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                },
            };
            let guard = RwLockWriteGuard {
                std: Some(g),
                model: Some((ctx.exec, ctx.tid, id)),
                order: None,
            };
            return if poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
        }
        let order = order::on_acquire(self.class, Location::caller());
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard { std: Some(g), model: None, order }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                std: Some(p.into_inner()),
                model: None,
                order,
            })),
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.std {
            Some(g) => g,
            None => panic!("use of a dissolved RwLockReadGuard"),
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.std {
            Some(g) => g,
            None => panic!("use of a dissolved RwLockWriteGuard"),
        }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.std {
            Some(g) => g,
            None => panic!("use of a dissolved RwLockWriteGuard"),
        }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if let Some((exec, tid, id)) = self.model.take() {
            exec.release_rw(tid, id, false);
        } else if let Some(tok) = self.order.take() {
            order::on_release(tok);
        }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if let Some((exec, tid, id)) = self.model.take() {
            exec.release_rw(tid, id, true);
        } else if let Some(tok) = self.order.take() {
            order::on_release(tok);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}
