//! Per-thread model-mode context.
//!
//! A thread is "in model mode" iff its TLS slot holds a handle to a live
//! [`Execution`](crate::model::exec::Execution). The shims consult this on
//! every operation: `None` → delegate straight to `std`, `Some` → route the
//! operation through the schedule explorer.

use std::cell::RefCell;

use crate::model::exec::Execution;
use crate::Arc;

#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The current thread's model context, if any.
pub(crate) fn ctx() -> Option<ThreadCtx> {
    CTX.with(|c| c.borrow().clone())
}

/// True iff the current thread is running inside a model execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Install the model context for the current thread (model threads only).
pub(crate) fn set_ctx(ctx: Option<ThreadCtx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}
