//! `mpsc` shim. Outside a model this is `std::sync::mpsc`; inside, channels
//! are built on the shim `Mutex`/`Condvar`, so every send/recv participates
//! in schedule exploration and the deadlock/lost-wakeup detectors compose
//! for free (a `recv` on an empty channel whose senders never send again is
//! reported, not hung).
//!
//! Mode is fixed at `channel()` time by the creating thread's context —
//! channels created inside a model body are model channels.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use crate::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a closed channel")
    }
}

struct ChanState<T> {
    q: VecDeque<T>,
    senders: usize,
    recv_alive: bool,
}

struct Chan<T> {
    st: Mutex<ChanState<T>>,
    cv: Condvar,
}

fn chan_lock<T>(chan: &Chan<T>) -> MutexGuard<'_, ChanState<T>> {
    chan.st.lock().unwrap_or_else(PoisonError::into_inner)
}

pub struct Sender<T>(SenderInner<T>);

enum SenderInner<T> {
    Std(std::sync::mpsc::Sender<T>), // sync-ok: the shim wraps std
    Model(Arc<Chan<T>>),
}

pub struct Receiver<T>(ReceiverInner<T>);

enum ReceiverInner<T> {
    Std(std::sync::mpsc::Receiver<T>), // sync-ok: the shim wraps std
    Model(Arc<Chan<T>>),
}

pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    if crate::tls::in_model() {
        let chan = Arc::new(Chan {
            st: Mutex::new(ChanState { q: VecDeque::new(), senders: 1, recv_alive: true }),
            cv: Condvar::new(),
        });
        (Sender(SenderInner::Model(Arc::clone(&chan))), Receiver(ReceiverInner::Model(chan)))
    } else {
        let (tx, rx) = std::sync::mpsc::channel(); // sync-ok: the shim wraps std
        (Sender(SenderInner::Std(tx)), Receiver(ReceiverInner::Std(rx)))
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderInner::Std(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            SenderInner::Model(chan) => {
                let mut st = chan_lock(chan);
                if !st.recv_alive {
                    return Err(SendError(value));
                }
                st.q.push_back(value);
                drop(st);
                chan.cv.notify_one();
                Ok(())
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderInner::Std(tx) => Sender(SenderInner::Std(tx.clone())),
            SenderInner::Model(chan) => {
                chan_lock(chan).senders += 1;
                Sender(SenderInner::Model(Arc::clone(chan)))
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let SenderInner::Model(chan) = &self.0 {
            let mut st = chan_lock(chan);
            st.senders = st.senders.saturating_sub(1);
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake a blocked receiver so it observes the disconnect
                // instead of tripping the lost-wakeup detector.
                chan.cv.notify_all();
            }
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.recv().map_err(|_| RecvError),
            ReceiverInner::Model(chan) => {
                let mut st = chan_lock(chan);
                loop {
                    if let Some(v) = st.q.pop_front() {
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                    st = chan.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty, // sync-ok: the shim wraps std
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected, // sync-ok: the shim wraps std
            }),
            ReceiverInner::Model(chan) => {
                let mut st = chan_lock(chan);
                if let Some(v) = st.q.pop_front() {
                    Ok(v)
                } else if st.senders == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout, // sync-ok: the shim wraps std
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected, // sync-ok: the shim wraps std
            }),
            ReceiverInner::Model(chan) => {
                let mut st = chan_lock(chan);
                loop {
                    if let Some(v) = st.q.pop_front() {
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    let (g, res) =
                        chan.cv.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
                    st = g;
                    if res.timed_out() {
                        return if let Some(v) = st.q.pop_front() {
                            Ok(v)
                        } else if st.senders == 0 {
                            Err(RecvTimeoutError::Disconnected)
                        } else {
                            Err(RecvTimeoutError::Timeout)
                        };
                    }
                }
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let ReceiverInner::Model(chan) = &self.0 {
            chan_lock(chan).recv_alive = false;
        }
    }
}
