//! Lock-order sanitizer: a process-global lock-order graph over lock
//! *classes* (creation sites), checked on every normal-mode acquisition.
//!
//! When a thread acquires a lock of class `C` while holding class `H`, the
//! edge `H → C` is recorded (with one exemplar pair of acquisition sites).
//! If the graph already proves `C` can reach `H` — i.e. some execution took
//! the locks in the opposite order — the acquisition panics immediately with
//! both acquisition sites, surfacing the inversion on the *first* run that
//! exercises either order rather than the rare interleaving that actually
//! deadlocks.
//!
//! Notes:
//! - Classes are creation sites, so N shards created in one loop share one
//!   class; same-class nesting is deliberately ignored (sharded locks of one
//!   pool are ordered by convention, e.g. never held pairwise).
//! - Gating mirrors `start_nn::liveness::sanitize_enabled`: on in debug
//!   builds, `START_SANITIZE=1` forces on, `START_SANITIZE=0` forces off.
//!   The decision is cached process-wide on first use.
//! - Model mode skips the sanitizer entirely — the schedule explorer owns
//!   deadlock detection there, and keeps seeded deadlock models reporting
//!   `Deadlock` findings instead of sanitizer panics.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock}; // sync-ok: the sanitizer's own plumbing

/// A lock class or acquisition site, keyed by source location value (two
/// `Location` references to the same site are not guaranteed pointer-equal).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Site {
    file: &'static str,
    line: u32,
    col: u32,
}

impl Site {
    fn of(loc: &'static Location<'static>) -> Self {
        Site { file: loc.file(), line: loc.line(), col: loc.column() }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.col)
    }
}

/// Proof that an acquisition was pushed on the held stack; returned by
/// [`on_acquire`], consumed by [`on_release`].
pub struct Token {
    class: Site,
}

#[derive(Clone, Copy)]
struct EdgeSites {
    /// Where the already-held lock was acquired.
    from_site: Site,
    /// Where the new lock was acquired (while holding `from`).
    to_site: Site,
}

#[derive(Default)]
struct Graph {
    /// `class → class` edges with one exemplar pair of acquisition sites.
    edges: HashMap<Site, HashMap<Site, EdgeSites>>,
}

impl Graph {
    /// Is `to` reachable from `from`? Returns the edge path if so.
    fn path(&self, from: Site, to: Site) -> Option<Vec<(Site, Site, EdgeSites)>> {
        let mut stack = vec![(from, Vec::new())];
        let mut seen = vec![from];
        while let Some((node, trail)) = stack.pop() {
            if let Some(out) = self.edges.get(&node) {
                for (&next, &sites) in out {
                    if seen.contains(&next) {
                        continue;
                    }
                    let mut t = trail.clone();
                    t.push((node, next, sites));
                    if next == to {
                        return Some(t);
                    }
                    seen.push(next);
                    stack.push((next, t));
                }
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: StdOnceLock<StdMutex<Graph>> = StdOnceLock::new(); // sync-ok: the sanitizer's own plumbing
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

thread_local! {
    /// Stack of `(class, acquisition site)` for locks this thread holds.
    static HELD: RefCell<Vec<(Site, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Whether the sanitizer runs: `START_SANITIZE=0` wins off, any other
/// non-empty value wins on, else debug builds only. Cached on first use.
pub fn sanitize_enabled() -> bool {
    static ENABLED: StdOnceLock<bool> = StdOnceLock::new(); // sync-ok: the sanitizer's own plumbing
    *ENABLED.get_or_init(|| match std::env::var("START_SANITIZE") {
        Ok(v) if v == "0" => false,
        Ok(v) if !v.is_empty() => true,
        _ => cfg!(debug_assertions),
    })
}

/// Record an acquisition of `class` at `site`. Panics on a lock-order
/// inversion. Returns `None` (no bookkeeping) when the sanitizer is off or
/// the thread is inside a model execution.
pub(crate) fn on_acquire(
    class: &'static Location<'static>,
    site: &'static Location<'static>,
) -> Option<Token> {
    if !sanitize_enabled() || crate::tls::in_model() {
        return None;
    }
    let c = Site::of(class);
    let s = Site::of(site);
    let held: Vec<(Site, Site)> = HELD.with(|h| h.borrow().clone());
    if !held.is_empty() {
        let mut g = graph().lock().unwrap_or_else(std::sync::PoisonError::into_inner); // sync-ok: the sanitizer's own plumbing
        for &(h_class, h_site) in &held {
            if h_class == c {
                continue;
            }
            g.edges
                .entry(h_class)
                .or_default()
                .entry(c)
                .or_insert(EdgeSites { from_site: h_site, to_site: s });
            if let Some(path) = g.path(c, h_class) {
                let chain: Vec<String> = path
                    .iter()
                    .map(|(from, to, sites)| {
                        format!(
                            "lock[{from}] (held, acquired at {}) then lock[{to}] (acquired at {})",
                            sites.from_site, sites.to_site
                        )
                    })
                    .collect();
                drop(g);
                panic!(
                    "lock-order inversion: acquiring lock[{c}] at {s} while holding lock[{h_class}] \
                     (acquired at {h_site}), but the opposite order was previously observed: {}",
                    chain.join("; ")
                );
            }
        }
    }
    HELD.with(|h| h.borrow_mut().push((c, s)));
    Some(Token { class: c })
}

/// Pop a held entry recorded by [`on_acquire`] (innermost matching class).
pub(crate) fn on_release(token: Token) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(c, _)| c == token.class) {
            held.remove(pos);
        }
    });
}
