//! `Condvar` shim. Normal mode delegates to `std::sync::Condvar` (keeping
//! the lock-order sanitizer's held-set accurate across the wait); model mode
//! routes the full wait protocol — release, block, wake, re-acquire —
//! through the schedule explorer.
//!
//! Model-mode timeout semantics: the `Duration` passed to [`wait_timeout`]
//! is abstract. A timed wait "times out" exactly when the model execution is
//! otherwise stuck, which is the schedule where the timeout path is
//! observable; in all other schedules the wait returns via notify.

use std::panic::Location;
use std::sync::atomic::AtomicU64 as RawAtomicU64; // sync-ok: shim-internal id cell
use std::sync::{Condvar as StdCondvar, LockResult, PoisonError}; // sync-ok: the shim wraps std
use std::time::Duration;

use crate::model::exec::{self, WakeReason};
use crate::mutex::MutexGuard;
use crate::order;

pub struct Condvar {
    inner: StdCondvar,
    id: RawAtomicU64,
}

/// Our own `WaitTimeoutResult` (std's has no public constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: StdCondvar::new(), id: RawAtomicU64::new(0) }
    }

    /// Block until notified. Always re-check the predicate in a `while`
    /// loop — lint rule 7 enforces this at every call site.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        self.wait_inner(guard, None).map(|(g, _)| g).map_err(|p| {
            let (g, _) = p.into_inner();
            PoisonError::new(g)
        })
    }

    /// Block until notified or (abstractly) timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        self.wait_inner(guard, Some(dur))
    }

    #[track_caller]
    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.is_model() {
            let lock = guard.mutex();
            let (_, std_guard, model, _) = guard.dissolve_for_wait();
            let Some((exec, tid, mutex_id)) = model else {
                panic!("model guard without model bookkeeping");
            };
            // Model mode: unlock the real mutex up front — the explorer's
            // serialized scheduling provides the wait-entry atomicity.
            drop(std_guard);
            let cv_id = exec::object_id(&self.id);
            let reason = exec.cond_wait(tid, cv_id, mutex_id, dur.is_some());
            // The explorer has re-granted the mutex to this thread.
            let (g, poisoned) = lock.relock_after_grant();
            let guard = MutexGuard::from_parts(lock, g, Some((exec, tid, mutex_id)), None);
            let res = WaitTimeoutResult { timed_out: reason == WakeReason::Timeout };
            return if poisoned { Err(PoisonError::new((guard, res))) } else { Ok((guard, res)) };
        }

        let lock = guard.mutex();
        let (_, std_guard, _, order_tok) = guard.dissolve_for_wait();
        let Some(std_guard) = std_guard else {
            panic!("wait on a dissolved MutexGuard");
        };
        // The mutex is released for the duration of the wait; keep the
        // sanitizer's held-set truthful.
        if let Some(tok) = order_tok {
            order::on_release(tok);
        }
        let mut poisoned = false;
        let (std_guard, timed_out) = match dur {
            None => match self.inner.wait(std_guard) {
                Ok(g) => (g, false),
                Err(p) => {
                    poisoned = true;
                    (p.into_inner(), false)
                }
            },
            Some(d) => match self.inner.wait_timeout(std_guard, d) {
                Ok((g, t)) => (g, t.timed_out()),
                Err(p) => {
                    poisoned = true;
                    let (g, t) = p.into_inner();
                    (g, t.timed_out())
                }
            },
        };
        let order = order::on_acquire(lock.class, Location::caller());
        let guard = MutexGuard::from_parts(lock, std_guard, None, order);
        let res = WaitTimeoutResult { timed_out };
        if poisoned {
            Err(PoisonError::new((guard, res)))
        } else {
            Ok((guard, res))
        }
    }

    pub fn notify_one(&self) {
        if let Some(ctx) = crate::tls::ctx() {
            let cv_id = exec::object_id(&self.id);
            ctx.exec.notify(ctx.tid, cv_id, false);
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(ctx) = crate::tls::ctx() {
            let cv_id = exec::object_id(&self.id);
            ctx.exec.notify(ctx.tid, cv_id, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}
