//! Atomic shims: each operation takes one scheduling decision in model mode
//! and then delegates to the real `std` atomic, so exploration is
//! sequentially consistent regardless of the `Ordering` argument (weak
//! orderings are accepted and honored by the delegated op, but the explorer
//! does not model weak-memory reorderings).

use std::sync::atomic::Ordering; // sync-ok: the shim layer itself

fn decision_point() {
    if let Some(ctx) = crate::tls::ctx() {
        ctx.exec.yield_point(ctx.tid);
    }
}

macro_rules! int_atomic {
    ($name:ident, $std:ty, $t:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(v: $t) -> Self {
                Self { inner: <$std>::new(v) }
            }

            pub fn load(&self, order: Ordering) -> $t {
                decision_point();
                self.inner.load(order)
            }

            pub fn store(&self, val: $t, order: Ordering) {
                decision_point();
                self.inner.store(val, order)
            }

            pub fn swap(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.swap(val, order)
            }

            pub fn fetch_add(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_add(val, order)
            }

            pub fn fetch_sub(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_sub(val, order)
            }

            pub fn fetch_max(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_max(val, order)
            }

            pub fn fetch_min(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_min(val, order)
            }

            pub fn fetch_and(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_and(val, order)
            }

            pub fn fetch_or(&self, val: $t, order: Ordering) -> $t {
                decision_point();
                self.inner.fetch_or(val, order)
            }

            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                decision_point();
                self.inner.compare_exchange(current, new, success, failure)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                decision_point();
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// One decision point for the whole read-modify-write loop: the
            /// closure-retry cycle runs without interleaving, which is the
            /// atomicity `fetch_update` is used for.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$t, $t>
            where
                F: FnMut($t) -> Option<$t>,
            {
                decision_point();
                self.inner.fetch_update(set_order, fetch_order, f)
            }

            pub fn into_inner(self) -> $t {
                self.inner.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $t {
                self.inner.get_mut()
            }
        }
    };
}

int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64); // sync-ok: the shim wraps std
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32); // sync-ok: the shim wraps std
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize); // sync-ok: the shim wraps std

#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool, // sync-ok: the shim wraps std
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self { inner: std::sync::atomic::AtomicBool::new(v) } // sync-ok: the shim wraps std
    }

    pub fn load(&self, order: Ordering) -> bool {
        decision_point();
        self.inner.load(order)
    }

    pub fn store(&self, val: bool, order: Ordering) {
        decision_point();
        self.inner.store(val, order)
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        decision_point();
        self.inner.swap(val, order)
    }

    pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
        decision_point();
        self.inner.fetch_and(val, order)
    }

    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        decision_point();
        self.inner.fetch_or(val, order)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        decision_point();
        self.inner.compare_exchange(current, new, success, failure)
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}
