//! Deterministic schedule exploration ("model checking") for code written
//! against the `start_sync` shims.
//!
//! [`check`] runs a closure — the *model body* — many times, each time under
//! a different thread interleaving, and reports how many distinct schedules
//! were explored plus any findings (deadlock, lost wakeup, unguarded wait,
//! panic). The body spawns model threads with [`spawn`]; every `start_sync`
//! primitive the body (and anything it calls) touches automatically becomes
//! part of the explored schedule because the shims detect model mode through
//! thread-local state.
//!
//! Exploration runs in two phases: a bounded-preemption exhaustive DFS over
//! decision prefixes (capped at [`ModelConfig::max_schedules`] executions),
//! then a seeded random walk ([`ModelConfig::seeds`] ×
//! [`ModelConfig::random_iters`]). Schedules are deduplicated by their full
//! decision sequence, so [`Report::distinct_schedules`] counts genuinely
//! different interleavings. Exploration stops at the first finding; the
//! finding carries the decision sequence that reproduces it.
//!
//! Determinism contract for model bodies: no wall-clock reads, no
//! `std::thread` primitives (use [`spawn`]/[`JoinHandle`]), no OS
//! randomness. `Duration` arguments to `wait_timeout`/`recv_timeout` are
//! abstract — timeouts fire exactly when the model is otherwise stuck.

pub(crate) mod exec;

use std::collections::HashSet;

use crate::Arc;

/// Exploration parameters. `Default` is sized for the workspace's CI models:
/// a few thousand executions in a couple of seconds.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Cap on exhaustive-DFS executions (the DFS is usually cut off by this
    /// cap, not by exhausting the space).
    pub max_schedules: usize,
    /// Random-walk executions per seed.
    pub random_iters: usize,
    /// Seeds for the random-walk phase.
    pub seeds: Vec<u64>,
    /// Max preemptions (involuntary context switches) per execution in the
    /// DFS phase; `None` explores unrestricted.
    pub preemption_bound: Option<usize>,
    /// Abort an execution (StepLimit finding) after this many scheduling
    /// decisions — catches livelock/spin in model bodies.
    pub max_steps: usize,
    /// Offer spurious condvar wakeups as scheduling choices. Off by default;
    /// enable to hunt non-predicate-guarded waits.
    pub spurious_wakeups: bool,
    /// Max spurious wakeups injected per execution (keeps the DFS finite).
    pub max_spurious: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_schedules: 2_000,
            random_iters: 400,
            seeds: vec![0x5747_5243_0007], // pinned: "START" PR 7
            preemption_bound: None,
            max_steps: 50_000,
            spurious_wakeups: false,
            max_spurious: 1,
        }
    }
}

/// What kind of concurrency defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// No runnable thread and no condvar waiter: a cycle of lock/join waits.
    Deadlock,
    /// A condvar waiter with no reachable future notify.
    LostWakeup,
    /// A wait escaped via spurious wakeup without a predicate re-check.
    UnguardedWait,
    /// The model body panicked.
    Panic,
    /// An execution exceeded [`ModelConfig::max_steps`] decisions.
    StepLimit,
}

/// One defect, with the decision sequence that reproduces it.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    pub detail: String,
    /// Replayable schedule: the chosen index at every decision point.
    pub schedule: Vec<u32>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} (schedule: {:?})",
            self.kind,
            self.detail,
            &self.schedule[..self.schedule.len().min(64)]
        )
    }
}

/// Result of a [`check`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of genuinely different interleavings executed.
    pub distinct_schedules: usize,
    /// Total executions (DFS + random phases; random walks may repeat).
    pub executions: usize,
    /// Defects found (exploration stops at the first).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Panic with the findings unless the run is clean — the assertion CI
    /// model tests use.
    pub fn assert_clean(&self) {
        if let Some(f) = self.findings.first() {
            panic!("model check found a defect after {} executions: {f}", self.executions);
        }
    }
}

/// Explore the interleavings of `body` under `cfg`. See the module docs.
///
/// `body` runs once per execution and must set up all its own state (the
/// explorer re-runs it from scratch for every schedule).
pub fn check<F>(cfg: &ModelConfig, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    if crate::tls::in_model() {
        panic!("model::check cannot be nested inside a model execution");
    }
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut distinct: HashSet<Vec<u32>> = HashSet::new();
    let mut findings = Vec::new();
    let mut executions = 0usize;

    // Phase 1: bounded-preemption exhaustive DFS over decision prefixes.
    let mut prefix: Vec<u32> = Vec::new();
    loop {
        let out = exec::run_one(cfg, exec::PickMode::Dfs { prefix: prefix.clone() }, &body);
        executions += 1;
        distinct.insert(out.decisions.iter().map(|d| d.chosen).collect());
        if let Some(f) = out.finding {
            findings.push(f);
            break;
        }
        if executions >= cfg.max_schedules {
            break;
        }
        // Backtrack: bump the deepest decision that still has an untried
        // alternative, drop everything after it.
        let mut decisions = out.decisions;
        let mut advanced = false;
        while let Some(d) = decisions.pop() {
            if d.chosen + 1 < d.n_choices {
                let mut p: Vec<u32> = decisions.iter().map(|x| x.chosen).collect();
                p.push(d.chosen + 1);
                prefix = p;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break; // space exhausted
        }
    }

    // Phase 2: seeded random walks.
    if findings.is_empty() {
        'seeds: for (si, &seed) in cfg.seeds.iter().enumerate() {
            for i in 0..cfg.random_iters {
                let state = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((si as u64) << 32)
                    .wrapping_add(i as u64);
                let out = exec::run_one(cfg, exec::PickMode::Random { state }, &body);
                executions += 1;
                distinct.insert(out.decisions.iter().map(|d| d.chosen).collect());
                if let Some(f) = out.finding {
                    findings.push(f);
                    break 'seeds;
                }
            }
        }
    }

    Report { distinct_schedules: distinct.len(), executions, findings }
}

/// Handle to a thread started with [`spawn`]. In model mode, `join` is a
/// scheduling decision enabled only once the target thread finished; outside
/// a model it is plain `std::thread` join.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<exec::Execution>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish; `Err` carries the panic payload, as
    /// with `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            let Some(ctx) = crate::tls::ctx() else {
                panic!("joining a model thread from outside its model execution");
            };
            if !Arc::ptr_eq(exec, &ctx.exec) {
                panic!("joining a model thread from a different model execution");
            }
            ctx.exec.join(ctx.tid, *target);
        }
        self.inner.join()
    }
}

/// Spawn a thread. Inside a model execution the thread is registered with
/// the explorer and participates in schedule exploration; outside, this is
/// `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    named(None, f)
}

/// [`spawn`] with a thread name (used in finding reports).
pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    named(Some(name.to_string()), f)
}

fn named<T, F>(name: Option<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(ctx) = crate::tls::ctx() else {
        let mut b = std::thread::Builder::new();
        if let Some(n) = &name {
            b = b.name(n.clone());
        }
        let inner = match b.spawn(f) {
            Ok(h) => h,
            Err(e) => panic!("thread spawn failed: {e}"),
        };
        return JoinHandle { inner, model: None };
    };
    let tid = ctx.exec.spawn_register(ctx.tid, name.clone());
    let child_exec = Arc::clone(&ctx.exec);
    let mut b = std::thread::Builder::new();
    b = b.name(name.unwrap_or_else(|| format!("model-t{tid}")));
    let spawned = b.spawn(move || {
        crate::tls::set_ctx(Some(crate::tls::ThreadCtx { exec: Arc::clone(&child_exec), tid }));
        child_exec.thread_started(tid);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        child_exec.thread_finished(tid, r.as_ref().err().map(|p| exec::panic_message(p.as_ref())));
        crate::tls::set_ctx(None);
        match r {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    });
    let inner = match spawned {
        Ok(h) => h,
        Err(e) => panic!("model thread spawn failed: {e}"),
    };
    JoinHandle { inner, model: Some((ctx.exec, tid)) }
}
