//! The execution engine behind [`model::check`](crate::model::check).
//!
//! One [`Execution`] drives one run of the model body under one schedule.
//! Model threads are real OS threads, but the engine serializes them: a
//! thread runs user code only while it holds the (logical) grant, and every
//! visible sync operation announces itself and parks until the scheduler
//! grants it. Because at most one model thread is ever between decision
//! points, the interleaving is exactly the recorded decision sequence, and
//! replaying a prefix of decisions replays the execution deterministically —
//! the property the DFS backtracking in [`check`](crate::model::check)
//! relies on.
//!
//! Scheduling is performed by whichever thread parks last ("last parker
//! schedules"): there is no controller thread. When a thread announces an
//! operation and observes that no thread holds the grant, it picks the next
//! runnable thread itself (following the replay prefix, the DFS default, or
//! the seeded RNG) before parking.

use std::collections::HashMap;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard}; // sync-ok: the engine's own plumbing must not be model-hooked

use crate::model::{Finding, FindingKind, ModelConfig};
use crate::Arc;

/// Global id source for model-visible sync objects. Ids are assigned lazily
/// at first model-mode use and are process-unique, so address reuse across
/// executions can never alias two objects.
static NEXT_OBJECT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1); // sync-ok: engine plumbing

/// Resolve (assigning if needed) the model id stored in a shim object's id
/// cell. `0` means unassigned.
pub(crate) fn object_id(cell: &std::sync::atomic::AtomicU64) -> u64 {
    use std::sync::atomic::Ordering; // sync-ok: engine plumbing
    let v = cell.load(Ordering::Relaxed); // relaxed-ok: id cell is write-once, any winner is fine
    if v != 0 {
        return v;
    }
    let id = NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed); // relaxed-ok: unique-id counter
    match cell.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
        // relaxed-ok: id cell is write-once, any winner is fine
        Ok(_) => id,
        Err(winner) => winner,
    }
}

/// A visible operation a parked thread is waiting to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Acquire the mutex with this id.
    Acquire(u64),
    /// Acquire the rwlock with this id, exclusively iff `write`.
    Rw { id: u64, write: bool },
    /// Wait for the thread with this index to finish.
    Join(usize),
    /// Any other decision point (atomic op, notify, spawn, explicit yield).
    Yield,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeReason {
    Notify,
    Timeout,
    Spurious,
}

#[derive(Debug)]
enum Status {
    /// Holds the grant; executing user code.
    Running,
    /// Parked, waiting for `op` to be granted.
    Ready(Op),
    /// Parked inside `Condvar::wait`; not runnable until woken.
    /// `entry_epoch`/`entry_acq` snapshot the condvar's notify count and the
    /// mutex's acquisition count at wait entry (unguarded-wait detection).
    CondBlocked {
        cv: u64,
        mutex: u64,
        timed: bool,
        entry_epoch: u64,
        entry_acq: u64,
    },
    Finished,
}

struct ThreadSlot {
    status: Status,
    name: String,
    /// Why the last condvar wake happened (consumed by `cond_wait`).
    wake: Option<WakeReason>,
    /// Set after a spurious wakeup: `(condvar, mutex, notify epoch at wait
    /// entry, mutex acquisition count at wait entry)`. If the thread
    /// releases `mutex` while this is set, no notify has occurred since wait
    /// entry, and no thread other than the waiter itself has acquired the
    /// mutex since (so the mutex-protected predicate cannot have changed),
    /// the wait was not predicate-guarded: nothing forced a re-check, and a
    /// re-check could not have legitimately released the thread.
    after_spurious: Option<(u64, u64, u64, u64)>,
}

impl ThreadSlot {
    fn new(name: String, status: Status) -> Self {
        ThreadSlot { status, name, wake: None, after_spurious: None }
    }
}

#[derive(Default)]
struct MutexSt {
    owner: Option<usize>,
    /// Times this mutex has been granted (spurious-wakeup bookkeeping).
    acquisitions: u64,
}

#[derive(Default)]
struct RwSt {
    writer: Option<usize>,
    readers: Vec<usize>,
}

#[derive(Default)]
struct CvSt {
    /// FIFO wait queue of thread indices.
    waiters: Vec<usize>,
    /// Total notify calls so far (epoch for unguarded-wait detection).
    notifies: u64,
}

/// One recorded scheduling decision: which of `n_choices` enabled choices
/// was taken.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub n_choices: u32,
    pub chosen: u32,
}

/// How the scheduler picks beyond the replay prefix.
pub(crate) enum PickMode {
    /// Replay `prefix`, then always take choice 0 (DFS leftmost descent).
    Dfs { prefix: Vec<u32> },
    /// Seeded random walk.
    Random { state: u64 },
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy)]
enum Choice {
    Run(usize),
    /// Inject a spurious wakeup into this cond-blocked thread.
    Spurious(usize),
}

struct ExecState {
    slots: Vec<ThreadSlot>,
    mutexes: HashMap<u64, MutexSt>,
    rwlocks: HashMap<u64, RwSt>,
    condvars: HashMap<u64, CvSt>,
    /// Thread currently holding the grant (executing user code), if any.
    running: Option<usize>,
    /// Thread that held the grant most recently (preemption accounting).
    last_running: Option<usize>,
    preemptions: usize,
    spurious_used: usize,
    record: Vec<Decision>,
    cursor: usize,
    mode: PickMode,
    finding: Option<(FindingKind, String)>,
    done: bool,
    // Config snapshot.
    preemption_bound: Option<usize>,
    max_steps: usize,
    spurious: bool,
    max_spurious: usize,
}

pub(crate) struct Execution {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
}

impl Execution {
    pub(crate) fn new(cfg: &ModelConfig, mode: PickMode) -> Self {
        Execution {
            st: StdMutex::new(ExecState {
                slots: vec![ThreadSlot::new("main".to_string(), Status::Running)],
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                condvars: HashMap::new(),
                running: Some(0),
                last_running: Some(0),
                preemptions: 0,
                spurious_used: 0,
                record: Vec::new(),
                cursor: 0,
                mode,
                finding: None,
                done: false,
                preemption_bound: cfg.preemption_bound,
                max_steps: cfg.max_steps,
                spurious: cfg.spurious_wakeups,
                max_spurious: cfg.max_spurious,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(std::sync::PoisonError::into_inner) // sync-ok: engine plumbing
    }

    // ---- scheduling core ------------------------------------------------

    /// Whether `op` can be granted right now.
    fn enabled(st: &ExecState, op: Op) -> bool {
        match op {
            Op::Acquire(m) => st.mutexes.get(&m).is_none_or(|s| s.owner.is_none()),
            Op::Rw { id, write } => match st.rwlocks.get(&id) {
                None => true,
                Some(s) => {
                    if write {
                        s.writer.is_none() && s.readers.is_empty()
                    } else {
                        s.writer.is_none()
                    }
                }
            },
            Op::Join(t) => matches!(st.slots[t].status, Status::Finished),
            Op::Yield => true,
        }
    }

    fn abort(&self, st: &mut ExecState, kind: FindingKind, detail: String) {
        if st.finding.is_none() {
            st.finding = Some((kind, detail));
        }
        st.done = true;
        self.cv.notify_all();
    }

    /// Pick and grant the next runnable thread. Called with `running ==
    /// None` (all model threads parked, blocked, or finished) by whichever
    /// thread parked last.
    fn schedule_next(&self, st: &mut ExecState) {
        loop {
            if st.done {
                return;
            }
            let mut choices: Vec<Choice> = Vec::new();
            for (i, slot) in st.slots.iter().enumerate() {
                if let Status::Ready(op) = slot.status {
                    if Self::enabled(st, op) {
                        choices.push(Choice::Run(i));
                    }
                }
            }
            if st.spurious && st.spurious_used < st.max_spurious {
                for (i, slot) in st.slots.iter().enumerate() {
                    if matches!(slot.status, Status::CondBlocked { .. }) {
                        choices.push(Choice::Spurious(i));
                    }
                }
            }

            if choices.is_empty() {
                if st.slots.iter().all(|s| matches!(s.status, Status::Finished)) {
                    st.done = true;
                    self.cv.notify_all();
                    return;
                }
                // Stuck. Timed condvar waits fire now — the only schedule
                // where the timeout path is observable. Deterministic order:
                // lowest thread index first.
                let timed = st
                    .slots
                    .iter()
                    .position(|s| matches!(s.status, Status::CondBlocked { timed: true, .. }));
                if let Some(t) = timed {
                    self.wake_waiter(st, t, WakeReason::Timeout);
                    continue;
                }
                let blocked_waiters: Vec<String> = st
                    .slots
                    .iter()
                    .filter(|s| matches!(s.status, Status::CondBlocked { .. }))
                    .map(|s| s.name.clone())
                    .collect();
                if !blocked_waiters.is_empty() {
                    self.abort(
                        st,
                        FindingKind::LostWakeup,
                        format!(
                            "condvar waiters with no reachable notify: [{}]",
                            blocked_waiters.join(", ")
                        ),
                    );
                } else {
                    let blocked: Vec<String> = st
                        .slots
                        .iter()
                        .filter(|s| !matches!(s.status, Status::Finished))
                        .map(|s| match s.status {
                            Status::Ready(op) => format!("{} (on {:?})", s.name, op),
                            _ => s.name.clone(),
                        })
                        .collect();
                    self.abort(
                        st,
                        FindingKind::Deadlock,
                        format!("all runnable threads blocked: [{}]", blocked.join(", ")),
                    );
                }
                return;
            }

            // Bounded preemption: once the budget is spent, keep running the
            // last-granted thread whenever it is still enabled.
            if let Some(bound) = st.preemption_bound {
                if st.preemptions >= bound {
                    if let Some(last) = st.last_running {
                        if choices.iter().any(|c| matches!(c, Choice::Run(i) if *i == last)) {
                            choices = vec![Choice::Run(last)];
                        }
                    }
                }
            }

            let n = choices.len() as u32;
            let chosen: u32 = if st.cursor < prefix_len(&st.mode) {
                let want = prefix_at(&st.mode, st.cursor);
                // A deterministic body can never diverge from its own replay
                // prefix; clamp defensively anyway.
                want.min(n - 1)
            } else {
                match &mut st.mode {
                    PickMode::Dfs { .. } => 0,
                    PickMode::Random { state } => (splitmix64(state) % n as u64) as u32,
                }
            };
            st.cursor += 1;
            st.record.push(Decision { n_choices: n, chosen });
            if st.record.len() > st.max_steps {
                self.abort(
                    st,
                    FindingKind::StepLimit,
                    format!("execution exceeded {} scheduling decisions", st.max_steps),
                );
                return;
            }

            match choices[chosen as usize] {
                Choice::Spurious(t) => {
                    st.spurious_used += 1;
                    if let Status::CondBlocked { cv, mutex, entry_epoch, entry_acq, .. } =
                        st.slots[t].status
                    {
                        self.wake_waiter(st, t, WakeReason::Spurious);
                        st.slots[t].after_spurious = Some((cv, mutex, entry_epoch, entry_acq));
                    }
                    // A spurious injection only makes the waiter runnable;
                    // loop to take another decision about who runs.
                    continue;
                }
                Choice::Run(i) => {
                    if let Status::Ready(op) = st.slots[i].status {
                        match op {
                            Op::Acquire(m) => {
                                let ms = st.mutexes.entry(m).or_default();
                                ms.owner = Some(i);
                                ms.acquisitions += 1;
                            }
                            Op::Rw { id, write } => {
                                let s = st.rwlocks.entry(id).or_default();
                                if write {
                                    s.writer = Some(i);
                                } else {
                                    s.readers.push(i);
                                }
                            }
                            Op::Join(_) | Op::Yield => {}
                        }
                    }
                    if let Some(last) = st.last_running {
                        if last != i
                            && choices.iter().any(|c| matches!(c, Choice::Run(j) if *j == last))
                        {
                            st.preemptions += 1;
                        }
                    }
                    st.slots[i].status = Status::Running;
                    st.running = Some(i);
                    st.last_running = Some(i);
                    self.cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Move a cond-blocked thread to the re-acquire phase.
    fn wake_waiter(&self, st: &mut ExecState, t: usize, reason: WakeReason) {
        if let Status::CondBlocked { cv, mutex, .. } = st.slots[t].status {
            let cvst = st.condvars.entry(cv).or_default();
            cvst.waiters.retain(|&w| w != t);
            st.slots[t].status = Status::Ready(Op::Acquire(mutex));
            st.slots[t].wake = Some(reason);
        }
    }

    /// Park `me` until granted. Never returns if the execution aborted with
    /// a finding: the thread must not re-enter user code, so it blocks
    /// forever (leaked — bounded, since the first finding stops exploration).
    fn wait_granted<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if matches!(st.slots[me].status, Status::Running) {
                return st;
            }
            if st.done {
                // Finding recorded; park forever.
                loop {
                    st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                    // sync-ok: engine plumbing
                }
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            // sync-ok: engine plumbing
        }
    }

    /// Announce `op`, hand off scheduling, and park until granted.
    pub(crate) fn sched(&self, me: usize, op: Op) {
        let mut st = self.lock();
        st.slots[me].status = Status::Ready(op);
        if st.running == Some(me) {
            st.running = None;
        }
        if st.running.is_none() {
            self.schedule_next(&mut st);
        }
        let _st = self.wait_granted(st, me);
    }

    // ---- operations invoked by the shims --------------------------------

    pub(crate) fn acquire_mutex(&self, me: usize, id: u64) {
        self.sched(me, Op::Acquire(id));
    }

    /// Inline release (no decision point): clears ownership and runs the
    /// unguarded-wait check.
    pub(crate) fn release_mutex(&self, me: usize, id: u64) {
        let mut st = self.lock();
        if let Some(m) = st.mutexes.get_mut(&id) {
            if m.owner == Some(me) {
                m.owner = None;
            }
        }
        if let Some((cv, mutex, entry_epoch, entry_acq)) = st.slots[me].after_spurious {
            if mutex == id {
                st.slots[me].after_spurious = None;
                let notifies = st.condvars.entry(cv).or_default().notifies;
                let acqs = st.mutexes.entry(id).or_default().acquisitions;
                // `entry_acq + 1` = only the waiter's own post-wake
                // re-acquire touched the mutex: the protected predicate
                // cannot have changed, so a legitimate re-check could not
                // have released the thread.
                if notifies == entry_epoch && acqs == entry_acq + 1 {
                    let name = st.slots[me].name.clone();
                    self.abort(
                        &mut st,
                        FindingKind::UnguardedWait,
                        format!(
                            "{name} left Condvar::wait on a spurious wakeup and released the \
                             mutex without re-checking its predicate (no notify had occurred)",
                        ),
                    );
                }
            }
        }
    }

    /// Non-blocking acquire attempt. Returns whether the mutex was free (and
    /// is now owned by `me`).
    pub(crate) fn try_acquire_mutex(&self, me: usize, id: u64) -> bool {
        self.sched(me, Op::Yield);
        let mut st = self.lock();
        let m = st.mutexes.entry(id).or_default();
        if m.owner.is_none() {
            m.owner = Some(me);
            m.acquisitions += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn acquire_rw(&self, me: usize, id: u64, write: bool) {
        self.sched(me, Op::Rw { id, write });
    }

    pub(crate) fn release_rw(&self, me: usize, id: u64, write: bool) {
        let mut st = self.lock();
        let s = st.rwlocks.entry(id).or_default();
        if write {
            if s.writer == Some(me) {
                s.writer = None;
            }
        } else if let Some(pos) = s.readers.iter().position(|&r| r == me) {
            s.readers.remove(pos);
        }
    }

    /// Full condvar wait protocol: atomically release the mutex and block,
    /// then (once woken by notify/timeout/spurious injection) re-acquire the
    /// mutex. Returns why the thread woke.
    pub(crate) fn cond_wait(
        &self,
        me: usize,
        cv_id: u64,
        mutex_id: u64,
        timed: bool,
    ) -> WakeReason {
        let mut st = self.lock();
        if let Some(m) = st.mutexes.get_mut(&mutex_id) {
            if m.owner == Some(me) {
                m.owner = None;
            }
        }
        // Re-entering a wait is exactly the predicate re-check discipline;
        // clear any pending spurious marker.
        st.slots[me].after_spurious = None;
        let entry_epoch = st.condvars.entry(cv_id).or_default().notifies;
        let entry_acq = st.mutexes.entry(mutex_id).or_default().acquisitions;
        st.condvars.entry(cv_id).or_default().waiters.push(me);
        st.slots[me].status =
            Status::CondBlocked { cv: cv_id, mutex: mutex_id, timed, entry_epoch, entry_acq };
        if st.running == Some(me) {
            st.running = None;
        }
        if st.running.is_none() {
            self.schedule_next(&mut st);
        }
        let mut st = self.wait_granted(st, me);
        st.slots[me].wake.take().unwrap_or(WakeReason::Notify)
    }

    /// Notify: one decision point, then wake FIFO waiter(s) inline.
    pub(crate) fn notify(&self, me: usize, cv_id: u64, all: bool) {
        self.sched(me, Op::Yield);
        let mut st = self.lock();
        let cvst = st.condvars.entry(cv_id).or_default();
        cvst.notifies += 1;
        let to_wake: Vec<usize> = if all {
            std::mem::take(&mut cvst.waiters)
        } else {
            let mut v = Vec::new();
            if !cvst.waiters.is_empty() {
                v.push(cvst.waiters.remove(0));
            }
            v
        };
        for t in to_wake {
            if let Status::CondBlocked { mutex, .. } = st.slots[t].status {
                st.slots[t].status = Status::Ready(Op::Acquire(mutex));
                st.slots[t].wake = Some(WakeReason::Notify);
            }
        }
    }

    pub(crate) fn yield_point(&self, me: usize) {
        self.sched(me, Op::Yield);
    }

    pub(crate) fn join(&self, me: usize, target: usize) {
        self.sched(me, Op::Join(target));
    }

    /// Register a new model thread (called by the spawning thread, which
    /// takes a decision point first). The child starts parked.
    pub(crate) fn spawn_register(&self, me: usize, name: Option<String>) -> usize {
        self.sched(me, Op::Yield);
        let mut st = self.lock();
        let tid = st.slots.len();
        let name = name.unwrap_or_else(|| format!("t{tid}"));
        st.slots.push(ThreadSlot::new(name, Status::Ready(Op::Yield)));
        tid
    }

    /// Child threads park here until first granted.
    pub(crate) fn thread_started(&self, me: usize) {
        let st = self.lock();
        let _st = self.wait_granted(st, me);
    }

    pub(crate) fn thread_finished(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.slots[me].status = Status::Finished;
        if me == 0 {
            if let Some(msg) = panic_msg {
                self.abort(&mut st, FindingKind::Panic, format!("model body panicked: {msg}"));
                return;
            }
        }
        if st.running == Some(me) {
            st.running = None;
        }
        if st.running.is_none() {
            self.schedule_next(&mut st);
        }
    }

    /// Block the (non-model) driver thread until the execution completes,
    /// then return the decision record and any finding.
    pub(crate) fn wait_outcome(&self) -> (Vec<Decision>, Option<(FindingKind, String)>) {
        let mut st = self.lock();
        while !st.done {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            // sync-ok: engine plumbing
        }
        (std::mem::take(&mut st.record), st.finding.take())
    }
}

fn prefix_len(mode: &PickMode) -> usize {
    match mode {
        PickMode::Dfs { prefix } => prefix.len(),
        PickMode::Random { .. } => 0,
    }
}

fn prefix_at(mode: &PickMode, i: usize) -> u32 {
    match mode {
        PickMode::Dfs { prefix } => prefix[i],
        PickMode::Random { .. } => 0,
    }
}

/// Outcome of a single execution.
pub(crate) struct ExecOutcome {
    pub decisions: Vec<Decision>,
    pub finding: Option<Finding>,
}

/// Run the model body once under `mode`.
pub(crate) fn run_one(
    cfg: &ModelConfig,
    mode: PickMode,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> ExecOutcome {
    let exec = Arc::new(Execution::new(cfg, mode));
    let thread_exec = Arc::clone(&exec);
    let thread_body = Arc::clone(body);
    let spawned = std::thread::Builder::new().name("model-main".to_string()).spawn(move || {
        crate::tls::set_ctx(Some(crate::tls::ThreadCtx { exec: Arc::clone(&thread_exec), tid: 0 }));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| thread_body()));
        let msg = r.err().map(|p| panic_message(&p));
        thread_exec.thread_finished(0, msg);
        crate::tls::set_ctx(None);
    });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => panic!("model checker could not spawn the root thread: {e}"),
    };
    let (decisions, finding) = exec.wait_outcome();
    let schedule: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
    if finding.is_none() {
        // Clean execution: every model thread has finished; the root OS
        // thread is winding down and joins promptly.
        let _ = handle.join();
    }
    ExecOutcome {
        decisions,
        finding: finding.map(|(kind, detail)| Finding { kind, detail, schedule }),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
