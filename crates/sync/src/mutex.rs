//! `Mutex` shim: `std::sync::Mutex` semantics (including poisoning), plus
//! model-mode scheduling and the normal-mode lock-order sanitizer.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::AtomicU64 as RawAtomicU64; // sync-ok: shim-internal id cell
use std::sync::{
    LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError, TryLockError,
}; // sync-ok: the shim wraps std

use crate::model::exec::{self, Execution};
use crate::{order, tls, Arc};

pub struct Mutex<T> {
    pub(crate) inner: StdMutex<T>,
    /// Lazily assigned model-object id (0 = unassigned).
    pub(crate) id: RawAtomicU64,
    /// Creation site — the lock's *class* for lock-order analysis. All locks
    /// created at one source location (e.g. the shards of a sharded cache)
    /// share a class; same-class nesting is ignored.
    pub(crate) class: &'static Location<'static>,
}

/// Model-mode bookkeeping carried by a guard: the execution, the owning
/// model thread, and the mutex's model id.
pub(crate) type ModelOwner = (Arc<Execution>, usize, u64);

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only while the guard is being dissolved (condvar wait) or
    /// dropped.
    std: Option<StdMutexGuard<'a, T>>,
    model: Option<ModelOwner>,
    order: Option<order::Token>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value), id: RawAtomicU64::new(0), class: Location::caller() }
    }

    /// Acquire, blocking. Poisoning behaves exactly like `std`.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(ctx) = tls::ctx() {
            let id = exec::object_id(&self.id);
            ctx.exec.acquire_mutex(ctx.tid, id);
            let (g, poisoned) = self.relock_after_grant();
            let guard = MutexGuard {
                lock: self,
                std: Some(g),
                model: Some((ctx.exec, ctx.tid, id)),
                order: None,
            };
            return if poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
        }
        let order = order::on_acquire(self.class, Location::caller());
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { lock: self, std: Some(g), model: None, order }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                std: Some(p.into_inner()),
                model: None,
                order,
            })),
        }
    }

    /// Non-blocking acquire.
    #[track_caller]
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        if let Some(ctx) = tls::ctx() {
            let id = exec::object_id(&self.id);
            if !ctx.exec.try_acquire_mutex(ctx.tid, id) {
                return Err(TryLockError::WouldBlock);
            }
            let (g, poisoned) = self.relock_after_grant();
            let guard = MutexGuard {
                lock: self,
                std: Some(g),
                model: Some((ctx.exec, ctx.tid, id)),
                order: None,
            };
            return if poisoned {
                Err(TryLockError::Poisoned(PoisonError::new(guard)))
            } else {
                Ok(guard)
            };
        }
        match self.inner.try_lock() {
            Ok(g) => {
                let order = order::on_acquire(self.class, Location::caller());
                Ok(MutexGuard { lock: self, std: Some(g), model: None, order })
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => {
                let order = order::on_acquire(self.class, Location::caller());
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(p.into_inner()),
                    model: None,
                    order,
                })))
            }
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Take the real lock after the model already granted exclusivity; the
    /// only legitimate contention is poison. Returns `(guard, poisoned)`.
    pub(crate) fn relock_after_grant(&self) -> (StdMutexGuard<'_, T>, bool) {
        match self.inner.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
            Err(TryLockError::WouldBlock) => match self.inner.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T> MutexGuard<'a, T> {
    pub(crate) fn mutex(&self) -> &'a Mutex<T> {
        self.lock
    }

    pub(crate) fn is_model(&self) -> bool {
        self.model.is_some()
    }

    /// Dissolve the guard for a condvar wait: hands the still-held raw
    /// `std` guard and the bookkeeping to the caller (`Condvar::wait`)
    /// without running the release hooks. Critically the real mutex stays
    /// locked — in normal mode the raw guard must flow into
    /// `std::sync::Condvar::wait` unbroken to keep release-and-wait atomic.
    #[allow(clippy::type_complexity)]
    pub(crate) fn dissolve_for_wait(
        mut self,
    ) -> (&'a Mutex<T>, Option<StdMutexGuard<'a, T>>, Option<ModelOwner>, Option<order::Token>)
    {
        let lock = self.lock;
        let std = self.std.take();
        let model = self.model.take();
        let order = self.order.take();
        (lock, std, model, order)
    }

    pub(crate) fn from_parts(
        lock: &'a Mutex<T>,
        std: StdMutexGuard<'a, T>,
        model: Option<ModelOwner>,
        order: Option<order::Token>,
    ) -> Self {
        MutexGuard { lock, std: Some(std), model, order }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.std {
            Some(g) => g,
            None => panic!("use of a dissolved MutexGuard"),
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.std {
            Some(g) => g,
            None => panic!("use of a dissolved MutexGuard"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Unlock the real mutex first so that when the model later grants
        // another thread, `relock_after_grant` always succeeds.
        drop(self.std.take());
        if let Some((exec, tid, id)) = self.model.take() {
            exec.release_mutex(tid, id);
        } else if let Some(tok) = self.order.take() {
            order::on_release(tok);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}
