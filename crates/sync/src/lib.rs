//! `start_sync` — the workspace's sync layer.
//!
//! Drop-in shims for the `std::sync` primitives the START codebase uses
//! (`Mutex`, `RwLock`, `Condvar`, atomics, `mpsc`) that behave exactly like
//! `std` in normal builds, plus two verification layers:
//!
//! 1. **A deterministic schedule explorer** ([`model`]): when code runs under
//!    [`model::check`], every visible sync operation (lock acquire, condvar
//!    wait/notify, atomic op, channel op, spawn/join) becomes a scheduling
//!    decision point. The explorer serializes the model's threads — exactly
//!    one runs between decision points — and drives them through a seeded
//!    random walk plus a bounded-preemption exhaustive DFS over interleavings
//!    (loom/shuttle-style, vendored because external crates are offline).
//!    It detects **deadlock** (all runnable threads blocked), **lost
//!    wakeups** (a `Condvar::wait` with no reachable future notify), and
//!    **non-predicate-guarded waits** (a spurious wakeup escapes the wait
//!    without re-checking, see [`model::ModelConfig::spurious_wakeups`]).
//!    Mode is selected per-thread at runtime (thread-local), not by a cargo
//!    feature, so one test binary runs both real code and models without
//!    feature unification flipping the whole workspace.
//!
//! 2. **A lock-order sanitizer** ([`order`], `START_SANITIZE`-gated like the
//!    aliasing sanitizer in `start_nn::liveness`): in normal (non-model)
//!    mode, every `Mutex`/`RwLock` acquisition records an edge in a global
//!    lock-order graph keyed by the lock's creation site. Any acquisition
//!    that would close a cycle panics with both acquisition sites, so
//!    lock-order inversions surface on the *first* interleaving that takes
//!    the locks in either order, not just the interleaving that deadlocks.
//!
//! Semantics notes for model mode:
//! - Exploration is sequentially consistent: atomics take one scheduling
//!   point per operation and then delegate to the real primitive. Weak
//!   memory orderings are *accepted* but explored under SC.
//! - `wait_timeout` durations are abstract: a timed wait only "times out"
//!   when the model is otherwise stuck (no runnable thread), which is
//!   exactly the schedule where the timeout path matters.
//! - Lock poisoning works as in `std` (a panicking model thread poisons the
//!   mutexes it holds), so poison-drain protocols can be model-checked.

mod atomic_shim;
mod condvar;
pub mod model;
pub mod mpsc;
mod mutex;
pub mod order;
mod rwlock;
pub(crate) mod tls;

pub mod atomic {
    //! Shimmed atomic types plus the `std` `Ordering` re-export.
    pub use crate::atomic_shim::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering; // sync-ok: the shim layer itself
}

pub use condvar::{Condvar, WaitTimeoutResult};
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

// Plain re-exports: these need no scheduling hooks (`Arc` is just shared
// ownership; `OnceLock` races only at initialization, which the explorer's
// serialized execution cannot break), but re-exporting them lets library
// code import *all* sync vocabulary from one place so the `no-std-sync`
// lint (rule 6) can be a simple token ban.
pub use std::sync::{Arc, Barrier, LockResult, OnceLock, PoisonError, TryLockError, Weak}; // sync-ok: the shim layer itself
