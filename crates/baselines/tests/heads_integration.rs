//! Integration tests for the generic fine-tuning heads over baseline
//! encoders — the protocol Table II applies to all eight baselines.

use start_baselines::{
    fine_tune_classifier, fine_tune_eta, predict_classes, predict_eta, BaselineEncoder,
    BaselineTrainConfig, GruSeq2Seq, Seq2SeqKind, TfKind, TransformerBaseline,
};
use start_roadnet::synth::{generate_city, CityConfig};
use start_traj::{SimConfig, Simulator, Trajectory};

fn data() -> (start_roadnet::City, Vec<Trajectory>) {
    let city = generate_city("t", &CityConfig::tiny());
    let sim = Simulator::new(
        &city.net,
        SimConfig { num_trajectories: 80, num_drivers: 6, ..Default::default() },
    );
    let d = sim.generate();
    (city, d)
}

#[test]
fn eta_head_trains_on_gru_baseline() {
    let (city, d) = data();
    let mut model = GruSeq2Seq::new(Seq2SeqKind::Trembr, city.net.num_segments(), 24, 64, 1);
    let cfg = BaselineTrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 1e-3,
        max_steps_per_epoch: Some(5),
        ..Default::default()
    };
    let head = fine_tune_eta(&mut model, &d[..64], &cfg);
    let preds = predict_eta(&model, &head, &d[64..]);
    assert_eq!(preds.len(), 16);
    assert!(preds.iter().all(|p| p.is_finite()));
    // Normalization constants reflect the training targets.
    assert!(head.target_std > 0.0);
    let mean: f32 = d[..64].iter().map(Trajectory::travel_time_secs).sum::<f32>() / 64.0;
    assert!((head.target_mean - mean).abs() < 1.0);
}

#[test]
fn classifier_head_trains_on_transformer_baseline() {
    let (city, d) = data();
    let mut model = TransformerBaseline::new(
        TfKind::TransformerMlm,
        city.net.num_segments(),
        24,
        1,
        2,
        64,
        None,
        2,
    );
    let labels: Vec<usize> = d.iter().map(|t| t.occupied as usize).collect();
    let cfg = BaselineTrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 1e-3,
        max_steps_per_epoch: Some(5),
        ..Default::default()
    };
    let head = fine_tune_classifier(&mut model, &d[..64], &labels[..64], 2, &cfg);
    let probs = predict_classes(&model, &head, &d[64..]);
    for p in &probs {
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn head_training_changes_encoder_weights() {
    // Full fine-tuning must reach back into the encoder, not just the head.
    let (city, d) = data();
    let mut model = GruSeq2Seq::new(Seq2SeqKind::Traj2Vec, city.net.num_segments(), 16, 64, 3);
    let before = model.store().lookup("enc.wz.w").map(|id| model.store().get(id).clone()).unwrap();
    let cfg = BaselineTrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 1e-3,
        max_steps_per_epoch: Some(3),
        ..Default::default()
    };
    let _ = fine_tune_eta(&mut model, &d, &cfg);
    let after = model.store().lookup("enc.wz.w").map(|id| model.store().get(id).clone()).unwrap();
    assert_ne!(before, after, "encoder must move under full fine-tuning");
}
