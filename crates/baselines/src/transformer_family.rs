//! The self-attention baseline family of §IV-B: Transformer [11] (MLM),
//! BERT [10] (MLM + segment-order discrimination), Toast [5] (node2vec
//! embeddings + MLM + trajectory discrimination) and PIM-TF (PIM's mutual
//! information objective on a Transformer encoder).
//!
//! The trajectory representation is the `[CLS]` hidden state.

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::{Linear, TransformerEncoder};
use start_nn::params::{GradStore, ParamStore};
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, WarmupCosine};
use start_roadnet::SegmentId;
use start_traj::{TrajView, Trajectory};

use crate::encoder::{clamp_view, BaselineEncoder, BaselineTrainConfig, SeqEmbedder};

/// Which member of the transformer family this instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TfKind {
    /// MLM only.
    TransformerMlm,
    /// MLM + ordered/swapped half-pair classification.
    Bert,
    /// node2vec-initialized embeddings + MLM + real/corrupt discrimination.
    Toast,
    /// Mutual-information maximization (InfoNCE-style) on a Transformer.
    PimTf,
}

/// Transformer-encoder baseline.
pub struct TransformerBaseline {
    kind: TfKind,
    store: ParamStore,
    emb: SeqEmbedder,
    encoder: TransformerEncoder,
    mlm_head: Linear,
    /// Binary discrimination head (BERT order task / Toast authenticity task).
    disc_head: Option<Linear>,
    dim: usize,
    max_len: usize,
    num_roads: usize,
}

impl TransformerBaseline {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: TfKind,
        num_roads: usize,
        dim: usize,
        layers: usize,
        heads: usize,
        max_len: usize,
        node2vec_table: Option<&[f32]>,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb =
            SeqEmbedder::new(&mut store, &mut rng, "emb", num_roads, dim, max_len, false, true);
        if let Some(table) = node2vec_table {
            emb.init_road_table(&mut store, table);
        } else {
            assert!(kind != TfKind::Toast, "Toast requires node2vec-initialized road embeddings");
        }
        let encoder =
            TransformerEncoder::new(&mut store, &mut rng, "enc", layers, dim, heads, dim, 0.1);
        let mlm_head = Linear::new(&mut store, &mut rng, "mlm_head", dim, num_roads, true);
        let disc_head = matches!(kind, TfKind::Bert | TfKind::Toast)
            .then(|| Linear::new(&mut store, &mut rng, "disc_head", dim, 2, true));
        Self { kind, store, emb, encoder, mlm_head, disc_head, dim, max_len, num_roads }
    }

    pub fn kind(&self) -> TfKind {
        self.kind
    }

    /// Record one trajectory's objective mix on `g` without touching the
    /// optimizer — the no-data tracing hook the `start_nn::symbolic` tape
    /// families drive. `other` supplies PIM-TF's in-batch negative and is
    /// ignored by the other kinds.
    pub fn record_pretrain_loss(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        other: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        match self.kind {
            TfKind::TransformerMlm => self.mlm_loss(g, traj, rng),
            TfKind::Bert => {
                let mlm = self.mlm_loss(g, traj, rng);
                let order = self.bert_order_loss(g, traj, rng);
                g.add(mlm, order)
            }
            TfKind::Toast => {
                let mlm = self.mlm_loss(g, traj, rng);
                let disc = self.toast_discrimination_loss(g, traj, rng);
                g.add(mlm, disc)
            }
            TfKind::PimTf => self.pim_mi_loss(g, traj, other, rng),
        }
    }

    /// Encode a view; returns `(hidden (T+1, d), pooled (1, d))`.
    fn encode_in_graph(
        &self,
        g: &mut Graph,
        view: &TrajView,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let x = self.emb.forward(g, view, rng);
        let hidden = self.encoder.forward(g, x, None, rng);
        let pooled = g.select_row(hidden, 0);
        (hidden, pooled)
    }

    /// i.i.d. token-masked view plus MLM targets (not span masking — exactly
    /// the generic MLM the paper contrasts with its span approach).
    fn iid_masked(&self, traj: &Trajectory, rng: &mut StdRng) -> (TrajView, Vec<usize>, Vec<u32>) {
        let mut view = clamp_view(TrajView::identity(traj), self.max_len);
        let mut positions = Vec::new();
        let mut targets = Vec::new();
        for i in 0..view.len() {
            if rng.gen::<f64>() < 0.15 {
                view.masked[i] = true;
                positions.push(i);
                targets.push(view.roads[i].0);
            }
        }
        if positions.is_empty() {
            view.masked[0] = true;
            positions.push(0);
            targets.push(view.roads[0].0);
        }
        (view, positions, targets)
    }

    fn mlm_loss(&self, g: &mut Graph, traj: &Trajectory, rng: &mut StdRng) -> NodeId {
        let (view, positions, targets) = self.iid_masked(traj, rng);
        let (hidden, _) = self.encode_in_graph(g, &view, rng);
        let idx: Vec<u32> = positions.iter().map(|&p| (p + 1) as u32).collect();
        let rows = g.gather_rows(hidden, Arc::new(idx));
        let logits = self.mlm_head.forward(g, rows);
        g.cross_entropy_rows(logits, Arc::new(targets))
    }

    /// BERT's auxiliary task: classify whether the two halves of the view
    /// appear in their original order.
    fn bert_order_loss(&self, g: &mut Graph, traj: &Trajectory, rng: &mut StdRng) -> NodeId {
        let view = clamp_view(TrajView::identity(traj), self.max_len);
        let half = view.len() / 2;
        let swap = rng.gen::<bool>();
        let view = if swap && half >= 2 {
            let mut v = view.clone();
            v.roads = view.roads[half..].iter().chain(&view.roads[..half]).copied().collect();
            v.times = view.times[half..].iter().chain(&view.times[..half]).copied().collect();
            v
        } else {
            view
        };
        let (_, pooled) = self.encode_in_graph(g, &view, rng);
        let Some(head) = self.disc_head.as_ref() else {
            panic!("BERT sentence-order loss requires disc_head (built in Self::new)")
        };
        let logits = head.forward(g, pooled);
        let label = u32::from(!(swap && half >= 2));
        g.cross_entropy_rows(logits, Arc::new(vec![label]))
    }

    /// Toast's auxiliary task: discriminate real trajectories from ones with
    /// a fraction of roads replaced by random segments.
    fn toast_discrimination_loss(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut view = clamp_view(TrajView::identity(traj), self.max_len);
        let corrupt = rng.gen::<bool>();
        if corrupt {
            for i in 0..view.len() {
                if rng.gen::<f64>() < 0.3 {
                    view.roads[i] = SegmentId(rng.gen_range(0..self.num_roads) as u32);
                }
            }
        }
        let (_, pooled) = self.encode_in_graph(g, &view, rng);
        let Some(head) = self.disc_head.as_ref() else {
            panic!("Toast discrimination loss requires disc_head (built in Self::new)")
        };
        let logits = head.forward(g, pooled);
        g.cross_entropy_rows(logits, Arc::new(vec![u32::from(!corrupt)]))
    }

    /// PIM's mutual-information objective: the pooled (global) vector must
    /// score its own token states (local) above another trajectory's.
    /// Logistic losses are expressed as 2-way cross-entropies.
    fn pim_mi_loss(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        other: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        let view = clamp_view(TrajView::identity(traj), self.max_len);
        let other_view = clamp_view(TrajView::identity(other), self.max_len);
        let (hidden, pooled) = self.encode_in_graph(g, &view, rng);
        let (other_hidden, _) = self.encode_in_graph(g, &other_view, rng);
        // Mean of local (non-CLS) states.
        let t = view.len();
        let ot = other_view.len();
        let mean_row =
            g.input(start_nn::Array::from_fn(
                1,
                t + 1,
                |_, c| {
                    if c == 0 {
                        0.0
                    } else {
                        1.0 / t as f32
                    }
                },
            ));
        let local = g.matmul(mean_row, hidden);
        let omean_row = g.input(start_nn::Array::from_fn(1, ot + 1, |_, c| {
            if c == 0 {
                0.0
            } else {
                1.0 / ot as f32
            }
        }));
        let other_local = g.matmul(omean_row, other_hidden);

        let pos_score = score(g, pooled, local);
        let neg_score = score(g, pooled, other_local);
        // -log σ(pos) - log (1 - σ(neg)) as two CE terms over [0, s].
        let zero = g.input(start_nn::Array::zeros(1, 1));
        let pos_row = g.concat_cols(&[zero, pos_score]);
        let neg_row = g.concat_cols(&[zero, neg_score]);
        let lp = g.cross_entropy_rows(pos_row, Arc::new(vec![1]));
        let ln = g.cross_entropy_rows(neg_row, Arc::new(vec![0]));
        g.add(lp, ln)
    }

    /// Pre-train with this variant's objective mix.
    pub fn pretrain(&mut self, train: &[Trajectory], cfg: &BaselineTrainConfig) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = {
            let full = (train.len() / cfg.batch_size).max(1);
            cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
        };
        let total = (steps_per_epoch * cfg.epochs) as u64;
        let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
        let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
        // PIM-TF draws its negative from the next trajectory in the shard,
        // so shards must hold at least two trajectories.
        let min_per_shard = if self.kind == TfKind::PimTf { 2 } else { 1 };
        let mut optimizer =
            AdamW::new(&self.store, AdamWConfig { lr: cfg.lr, ..Default::default() });
        let mut indices: Vec<usize> = (0..train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut step = 0u64;
        for _ in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut executed = 0usize;
            for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
                let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                    let mut losses = Vec::new();
                    for (k, &i) in shard.iter().enumerate() {
                        match self.kind {
                            TfKind::TransformerMlm => {
                                losses.push(self.mlm_loss(g, &train[i], r));
                            }
                            TfKind::Bert => {
                                losses.push(self.mlm_loss(g, &train[i], r));
                                losses.push(self.bert_order_loss(g, &train[i], r));
                            }
                            TfKind::Toast => {
                                losses.push(self.mlm_loss(g, &train[i], r));
                                losses.push(self.toast_discrimination_loss(g, &train[i], r));
                            }
                            TfKind::PimTf => {
                                let other = shard[(k + 1) % shard.len()];
                                losses.push(self.pim_mi_loss(g, &train[i], &train[other], r));
                            }
                        }
                    }
                    let mut acc = losses[0];
                    for &l in &losses[1..] {
                        acc = g.add(acc, l);
                    }
                    let loss = g.scale(acc, 1.0 / losses.len() as f32);
                    Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
                };
                let mut grads = GradStore::new(&self.store);
                let Some(stats) = trainer.step(
                    &self.store,
                    &mut grads,
                    step,
                    batch,
                    min_per_shard,
                    &mut rng,
                    &shard_loss,
                ) else {
                    continue;
                };
                grads.clip_global_norm(cfg.grad_clip);
                optimizer.step(&mut self.store, &grads, schedule.lr(step));
                step += 1;
                executed += 1;
                epoch_loss += f64::from(stats.loss);
            }
            // Mean over batches actually executed, not the planned count.
            epoch_losses.push((epoch_loss / executed.max(1) as f64) as f32);
        }
        epoch_losses
    }
}

/// Bilinear-free score: `g · h^T` as a `(1, 1)` node.
fn score(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let bt = g.transpose(b);
    g.matmul(a, bt)
}

impl BaselineEncoder for TransformerBaseline {
    fn name(&self) -> &'static str {
        match self.kind {
            TfKind::TransformerMlm => "Transformer",
            TfKind::Bert => "BERT",
            TfKind::Toast => "Toast",
            TfKind::PimTf => "PIM-TF",
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn max_len(&self) -> usize {
        self.max_len
    }

    fn pool(&self, g: &mut Graph, view: &TrajView, rng: &mut StdRng) -> NodeId {
        let (_, pooled) = self.encode_in_graph(g, view, rng);
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::{node2vec, Node2VecConfig};
    use start_traj::{SimConfig, Simulator};

    fn data() -> (start_roadnet::City, Vec<Trajectory>) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 40, num_drivers: 4, ..Default::default() },
        );
        let d = sim.generate();
        (city, d)
    }

    #[test]
    fn all_four_kinds_pretrain() {
        let (city, d) = data();
        let n = city.net.num_segments();
        let n2v = node2vec(
            &city.net,
            &Node2VecConfig { dim: 24, epochs: 1, walks_per_node: 2, ..Default::default() },
        );
        for kind in [TfKind::TransformerMlm, TfKind::Bert, TfKind::Toast, TfKind::PimTf] {
            let table = matches!(kind, TfKind::Toast).then_some(n2v.data());
            let mut model = TransformerBaseline::new(kind, n, 24, 2, 2, 64, table, 3);
            let cfg = BaselineTrainConfig {
                epochs: 2,
                batch_size: 6,
                lr: 1e-3,
                max_steps_per_epoch: Some(2),
                ..Default::default()
            };
            let losses = model.pretrain(&d, &cfg);
            assert!(losses.iter().all(|l| l.is_finite()), "{kind:?}: {losses:?}");
            let embs = model.encode(&d[..3]);
            assert_eq!(embs[0].len(), 24);
        }
    }

    #[test]
    #[should_panic(expected = "Toast requires node2vec")]
    fn toast_without_node2vec_rejected() {
        TransformerBaseline::new(TfKind::Toast, 10, 8, 1, 1, 32, None, 1);
    }
}
