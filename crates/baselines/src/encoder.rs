//! The shared interface every baseline implements, plus the token embedder
//! they all build on.
//!
//! Baselines differ in architecture (GRU vs Transformer) and self-supervised
//! task (reconstruction, MLM, discrimination, mutual information), but all
//! map a trajectory view to a pooled `(1, d)` representation inside a live
//! autodiff graph — that is the [`BaselineEncoder`] contract, and the
//! generic fine-tuning heads in [`crate::heads`] work against it.

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::{sinusoidal_positional_encoding, Embedding};
use start_nn::params::{Init, ParamId, ParamStore};
use start_nn::Array;
use start_traj::{day_of_week_index, minute_index, TrajView, Trajectory};

/// A pre-trainable trajectory encoder baseline.
pub trait BaselineEncoder: Sync {
    fn name(&self) -> &'static str;
    fn dim(&self) -> usize;
    fn store(&self) -> &ParamStore;
    fn store_mut(&mut self) -> &mut ParamStore;
    fn max_len(&self) -> usize;

    /// Pooled `(1, d)` representation of a view inside graph `g`.
    fn pool(&self, g: &mut Graph, view: &TrajView, rng: &mut StdRng) -> NodeId;

    /// Batch inference: embed trajectories (eval mode, chunked graphs).
    fn encode(&self, trajectories: &[Trajectory]) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(trajectories.len());
        for chunk in trajectories.chunks(64) {
            let mut g = Graph::new(self.store(), false);
            for t in chunk {
                let view = clamp_view(TrajView::identity(t), self.max_len());
                let p = self.pool(&mut g, &view, &mut rng);
                out.push(g.value(p).row(0).to_vec());
            }
        }
        out
    }
}

/// Truncate a view to `max_len` tokens (prefix).
pub fn clamp_view(mut view: TrajView, max_len: usize) -> TrajView {
    if view.len() > max_len {
        view.roads.truncate(max_len);
        view.times.truncate(max_len);
        view.masked.truncate(max_len);
    }
    view
}

/// A view revealing only the departure time (ETA fine-tuning, §IV-D2).
pub fn departure_only_view(traj: &Trajectory) -> TrajView {
    let mut v = TrajView::identity(traj);
    let dep = traj.departure();
    v.times = vec![dep; v.len()];
    v
}

/// Token embedder shared by all baselines: road embedding (+ optional
/// minute/day embeddings for Trembr) + sinusoidal positions + optional
/// `[CLS]` and `[MASK]` specials.
pub struct SeqEmbedder {
    road_emb: Embedding,
    minute_emb: Option<Embedding>,
    day_emb: Option<Embedding>,
    mask_token: ParamId,
    cls_token: Option<ParamId>,
    pe: Array,
    dim: usize,
}

impl SeqEmbedder {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        num_roads: usize,
        dim: usize,
        max_len: usize,
        use_time: bool,
        use_cls: bool,
    ) -> Self {
        let road_emb = Embedding::new(store, rng, &format!("{name}.road_emb"), num_roads, dim);
        let minute_emb =
            use_time.then(|| Embedding::new(store, rng, &format!("{name}.minute_emb"), 1441, dim));
        let day_emb =
            use_time.then(|| Embedding::new(store, rng, &format!("{name}.day_emb"), 8, dim));
        let mask_token = store.param(format!("{name}.mask_tok"), 1, dim, Init::Normal(0.02), rng);
        let cls_token = use_cls
            .then(|| store.param(format!("{name}.cls_tok"), 1, dim, Init::Normal(0.02), rng));
        let pe = sinusoidal_positional_encoding(max_len + 1, dim);
        Self { road_emb, minute_emb, day_emb, mask_token, cls_token, pe, dim }
    }

    /// Overwrite the road-embedding table (node2vec initialization for PIM
    /// and Toast).
    pub fn init_road_table(&self, store: &mut ParamStore, data: &[f32]) {
        let table = store.get_mut(self.road_emb.table_id());
        assert_eq!(table.len(), data.len(), "road table size mismatch");
        table.data_mut().copy_from_slice(data);
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn has_cls(&self) -> bool {
        self.cls_token.is_some()
    }

    /// Embed a view: returns `(T, d)` (or `(T+1, d)` with `[CLS]` first).
    pub fn forward(&self, g: &mut Graph, view: &TrajView, rng: &mut StdRng) -> NodeId {
        let t = view.len();
        assert!(t > 0, "empty view");
        let d = self.dim;

        let ids: Vec<u32> = view.roads.iter().map(|r| r.0).collect();
        let table = g.param(self.road_emb.table_id());
        let gathered = g.gather_rows(table, Arc::new(ids));
        let mut x = if view.masked.iter().any(|&m| m) {
            let keep = g.input(Array::from_vec(
                t,
                1,
                view.masked.iter().map(|&m| if m { 0.0 } else { 1.0 }).collect(),
            ));
            let drop = g.input(Array::from_vec(
                t,
                1,
                view.masked.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect(),
            ));
            let kept = g.mul_col(gathered, keep);
            let mask_tok = g.param(self.mask_token);
            let mask_rows = g.gather_rows(mask_tok, Arc::new(vec![0u32; t]));
            let masked_rows = g.mul_col(mask_rows, drop);
            g.add(kept, masked_rows)
        } else {
            gathered
        };

        if let (Some(me), Some(de)) = (&self.minute_emb, &self.day_emb) {
            let minutes: Vec<u32> = view
                .times
                .iter()
                .zip(&view.masked)
                .map(|(&ts, &m)| if m { 0 } else { minute_index(ts) })
                .collect();
            let days: Vec<u32> = view
                .times
                .iter()
                .zip(&view.masked)
                .map(|(&ts, &m)| if m { 0 } else { day_of_week_index(ts) })
                .collect();
            let memb = me.forward(g, &minutes);
            let demb = de.forward(g, &days);
            x = g.add(x, memb);
            x = g.add(x, demb);
        }
        let pe = g.input(Array::from_fn(t, d, |r, c| self.pe.get(r + 1, c)));
        x = g.add(x, pe);

        let mut full = if let Some(cls) = self.cls_token {
            let cls = g.param(cls);
            let cls_pe = g.input(Array::from_fn(1, d, |_, c| self.pe.get(0, c)));
            let cls = g.add(cls, cls_pe);
            g.concat_rows(&[cls, x])
        } else {
            x
        };
        if view.embed_dropout > 0.0 {
            full = g.dropout(full, view.embed_dropout, rng);
        }
        full
    }
}

/// Shared pre-training loop parameters for all baselines.
#[derive(Debug, Clone)]
pub struct BaselineTrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub max_steps_per_epoch: Option<usize>,
    pub grad_clip: f32,
    pub seed: u64,
    /// Data-parallel workers per optimizer step (`1` = legacy sequential
    /// loop; see `start_nn::train`).
    pub workers: usize,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 2,
            batch_size: 16,
            lr: 2e-4,
            max_steps_per_epoch: None,
            grad_clip: 5.0,
            seed: 77,
            workers: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_roadnet::SegmentId;
    use start_traj::TravelMode;

    fn traj(len: usize) -> Trajectory {
        Trajectory {
            roads: (0..len as u32).map(SegmentId).collect(),
            times: (0..len as i64).map(|i| i * 45).collect(),
            driver: 0,
            occupied: false,
            mode: TravelMode::CarTaxi,
            arrival: len as i64 * 45,
        }
    }

    #[test]
    fn embedder_shapes_with_and_without_cls() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let with_cls = SeqEmbedder::new(&mut store, &mut rng, "a", 50, 16, 64, true, true);
        let without = SeqEmbedder::new(&mut store, &mut rng, "b", 50, 16, 64, false, false);
        let t = traj(10);
        let view = TrajView::identity(&t);
        let mut g = Graph::new(&store, false);
        let xa = with_cls.forward(&mut g, &view, &mut rng);
        let xb = without.forward(&mut g, &view, &mut rng);
        assert_eq!(g.shape(xa), (11, 16));
        assert_eq!(g.shape(xb), (10, 16));
    }

    #[test]
    fn masked_tokens_replace_road_vectors() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let emb = SeqEmbedder::new(&mut store, &mut rng, "m", 50, 16, 64, false, false);
        let t = traj(6);
        let plain = TrajView::identity(&t);
        let mut masked = TrajView::identity(&t);
        masked.masked[2] = true;
        let mut g = Graph::new(&store, false);
        let xp = emb.forward(&mut g, &plain, &mut rng);
        let xm = emb.forward(&mut g, &masked, &mut rng);
        assert_ne!(g.value(xp).row(2), g.value(xm).row(2));
        assert_eq!(g.value(xp).row(3), g.value(xm).row(3));
    }

    #[test]
    fn departure_view_levels_times() {
        let t = traj(5);
        let v = departure_only_view(&t);
        assert!(v.times.iter().all(|&x| x == t.departure()));
    }
}
