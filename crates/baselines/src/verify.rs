//! Registered symbolic tape families for the baseline trainers
//! (`start-analysis verify`; DESIGN.md §15).
//!
//! One [`TapeFamily`] per baseline of §IV-B, each recording exactly the tape
//! its pre-training loop builds for a single objective term, with the
//! trajectory length as the symbolic size knob. Trajectories are synthetic
//! (cyclic road ids on a 30-second grid) — the verifier needs valid index
//! ranges, not real data.
//!
//! The GRU autoencoders and PIM unroll per-timestep recurrences, so their
//! tape *structure* changes with `n`; those families exercise the verifier's
//! per-anchor fallback. The transformer family records a length-independent
//! op sequence and verifies on the aligned fast path.

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::params::ParamStore;
use start_nn::symbolic::TapeFamily;
use start_roadnet::SegmentId;
use start_traj::{Trajectory, TravelMode};

use crate::gru_seq2seq::{GruSeq2Seq, Seq2SeqKind};
use crate::pim::Pim;
use crate::transformer_family::{TfKind, TransformerBaseline};

/// Small synthetic road network / model scale shared by all families.
const NUM_ROADS: usize = 24;
const DIM: usize = 16;
const MAX_LEN: usize = 64;

/// A deterministic trajectory of exactly `n` roads: cyclic valid segment
/// ids, 30-second timestamp grid. `phase` de-correlates the anchor from the
/// in-batch negative.
fn synth_traj(n: usize, phase: usize) -> Trajectory {
    assert!(n >= 1);
    let roads = (0..n).map(|i| SegmentId(((i * 7 + phase * 5 + 1) % NUM_ROADS) as u32)).collect();
    let start = 1_700_000_000i64 + phase as i64 * 3600;
    let times = (0..n).map(|i| start + i as i64 * 30).collect();
    Trajectory {
        roads,
        times,
        driver: phase as u32,
        occupied: true,
        mode: TravelMode::CarTaxi,
        arrival: start + n as i64 * 30,
    }
}

/// A deterministic stand-in for the node2vec table (Toast and PIM require
/// one); values are small and varied, which is all the tracer needs.
fn synth_node2vec() -> Vec<f32> {
    (0..NUM_ROADS * DIM).map(|i| ((i * 31 + 7) % 97) as f32 / 97.0 - 0.5).collect()
}

/// traj2vec / t2vec / Trembr — the seq2seq reconstruction family.
pub struct GruSeq2SeqFamily(pub GruSeq2Seq);

impl GruSeq2SeqFamily {
    pub fn build(kind: Seq2SeqKind) -> Self {
        Self(GruSeq2Seq::new(kind, NUM_ROADS, DIM, MAX_LEN, 7))
    }
}

impl TapeFamily for GruSeq2SeqFamily {
    fn name(&self) -> String {
        format!("baseline/{:?}", self.0.kind()).to_lowercase()
    }

    fn store(&self) -> &ParamStore {
        crate::encoder::BaselineEncoder::store(&self.0)
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let mut rng = StdRng::seed_from_u64(17);
        self.0.record_pretrain_loss(g, &synth_traj(n, 0), &mut rng)
    }
}

/// Transformer / BERT / Toast / PIM-TF — the self-attention family.
pub struct TransformerFamily(pub TransformerBaseline);

impl TransformerFamily {
    pub fn build(kind: TfKind) -> Self {
        let table = synth_node2vec();
        let table = matches!(kind, TfKind::Toast).then_some(table.as_slice());
        Self(TransformerBaseline::new(kind, NUM_ROADS, DIM, 1, 2, MAX_LEN, table, 7))
    }
}

impl TapeFamily for TransformerFamily {
    fn name(&self) -> String {
        format!("baseline/{:?}", self.0.kind()).to_lowercase()
    }

    fn store(&self) -> &ParamStore {
        crate::encoder::BaselineEncoder::store(&self.0)
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let mut rng = StdRng::seed_from_u64(17);
        self.0.record_pretrain_loss(g, &synth_traj(n, 0), &synth_traj(n, 1), &mut rng)
    }
}

/// PIM — mutual information maximization on a GRU.
pub struct PimFamily(pub Pim);

impl PimFamily {
    pub fn build() -> Self {
        Self(Pim::new(NUM_ROADS, DIM, MAX_LEN, &synth_node2vec(), 7))
    }
}

impl TapeFamily for PimFamily {
    fn name(&self) -> String {
        "baseline/pim".to_string()
    }

    fn store(&self) -> &ParamStore {
        crate::encoder::BaselineEncoder::store(&self.0)
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let mut rng = StdRng::seed_from_u64(17);
        self.0.record_pretrain_loss(g, &synth_traj(n, 0), &synth_traj(n, 1), &mut rng)
    }
}

/// All eight baseline trainers as symbolic tape families.
pub fn symbolic_families() -> Vec<Box<dyn TapeFamily>> {
    let mut fams: Vec<Box<dyn TapeFamily>> = Vec::new();
    for kind in [Seq2SeqKind::Traj2Vec, Seq2SeqKind::T2Vec, Seq2SeqKind::Trembr] {
        fams.push(Box::new(GruSeq2SeqFamily::build(kind)));
    }
    for kind in [TfKind::TransformerMlm, TfKind::Bert, TfKind::Toast, TfKind::PimTf] {
        fams.push(Box::new(TransformerFamily::build(kind)));
    }
    fams.push(Box::new(PimFamily::build()));
    fams
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_nn::symbolic::{verify_family, DEFAULT_ANCHORS};

    /// All eight baseline trainers verify with zero Error findings at the
    /// default anchors — the CI gate's contract.
    #[test]
    fn all_baseline_families_verify_clean() {
        let fams = symbolic_families();
        assert_eq!(fams.len(), 8, "all eight baselines must be registered");
        for fam in fams {
            let report = verify_family(fam.as_ref(), DEFAULT_ANCHORS);
            assert!(
                !report.has_errors(),
                "{} must verify without errors:\n{report}",
                report.family
            );
            assert!(report.trained_params > 0, "{} trains nothing:\n{report}", report.family);
        }
    }
}
