//! PIM [6]: unsupervised path representation learning with mutual
//! information maximization — node2vec road embeddings feeding an RNN
//! encoder trained so each path's global representation identifies its own
//! local (per-road) states against other paths' (curriculum negative
//! sampling approximated by in-batch negatives).

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::GruCell;
use start_nn::params::{GradStore, ParamStore};
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, Array, WarmupCosine};
use start_traj::{TrajView, Trajectory};

use crate::encoder::{clamp_view, BaselineEncoder, BaselineTrainConfig, SeqEmbedder};

/// The RNN variant of PIM (the paper's PIM baseline; PIM-TF lives in
/// [`crate::transformer_family`]).
pub struct Pim {
    store: ParamStore,
    emb: SeqEmbedder,
    encoder: GruCell,
    dim: usize,
    max_len: usize,
}

impl Pim {
    /// `node2vec_table` initializes the road embeddings, as in the paper.
    pub fn new(
        num_roads: usize,
        dim: usize,
        max_len: usize,
        node2vec_table: &[f32],
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb =
            SeqEmbedder::new(&mut store, &mut rng, "emb", num_roads, dim, max_len, false, false);
        emb.init_road_table(&mut store, node2vec_table);
        let encoder = GruCell::new(&mut store, &mut rng, "enc", dim, dim);
        Self { store, emb, encoder, dim, max_len }
    }

    /// Record one anchor/negative pair's objective on `g` without touching
    /// the optimizer — the no-data tracing hook the `start_nn::symbolic`
    /// tape families drive.
    pub fn record_pretrain_loss(
        &self,
        g: &mut Graph,
        anchor: &Trajectory,
        negative: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        self.mi_loss(g, anchor, negative, rng)
    }

    /// Hidden sequence and mean-pooled global vector.
    fn encode_in_graph(
        &self,
        g: &mut Graph,
        view: &TrajView,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let xs = self.emb.forward(g, view, rng);
        let hs = self.encoder.forward_sequence(g, xs);
        let t = view.len();
        let mean_row = g.input(Array::full(1, t, 1.0 / t as f32));
        let global = g.matmul(mean_row, hs);
        (hs, global)
    }

    /// Mutual information maximization step for one anchor with one in-batch
    /// negative, written as two logistic losses.
    fn mi_loss(
        &self,
        g: &mut Graph,
        anchor: &Trajectory,
        negative: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        let av = clamp_view(TrajView::identity(anchor), self.max_len);
        let nv = clamp_view(TrajView::identity(negative), self.max_len);
        let (ah, aglobal) = self.encode_in_graph(g, &av, rng);
        let (nh, _) = self.encode_in_graph(g, &nv, rng);
        let amean = {
            let t = av.len();
            let row = g.input(Array::full(1, t, 1.0 / t as f32));
            g.matmul(row, ah)
        };
        let nmean = {
            let t = nv.len();
            let row = g.input(Array::full(1, t, 1.0 / t as f32));
            g.matmul(row, nh)
        };
        let amean_t = g.transpose(amean);
        let pos = g.matmul(aglobal, amean_t);
        let nmean_t = g.transpose(nmean);
        let neg = g.matmul(aglobal, nmean_t);
        let zero = g.input(Array::zeros(1, 1));
        let pos_row = g.concat_cols(&[zero, pos]);
        let neg_row = g.concat_cols(&[zero, neg]);
        let lp = g.cross_entropy_rows(pos_row, Arc::new(vec![1]));
        let ln = g.cross_entropy_rows(neg_row, Arc::new(vec![0]));
        g.add(lp, ln)
    }

    /// Pre-train with the mutual-information objective.
    pub fn pretrain(&mut self, train: &[Trajectory], cfg: &BaselineTrainConfig) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = {
            let full = (train.len() / cfg.batch_size).max(1);
            cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
        };
        let total = (steps_per_epoch * cfg.epochs) as u64;
        let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
        let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
        let mut optimizer =
            AdamW::new(&self.store, AdamWConfig { lr: cfg.lr, ..Default::default() });
        let mut indices: Vec<usize> = (0..train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut step = 0u64;
        for _ in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut executed = 0usize;
            for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
                if batch.len() < 2 {
                    continue;
                }
                // In-batch negatives come from the shard, so shards need at
                // least two trajectories.
                let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                    let losses: Vec<NodeId> = shard
                        .iter()
                        .enumerate()
                        .map(|(k, &i)| {
                            let neg = shard[(k + 1) % shard.len()];
                            self.mi_loss(g, &train[i], &train[neg], r)
                        })
                        .collect();
                    let mut acc = losses[0];
                    for &l in &losses[1..] {
                        acc = g.add(acc, l);
                    }
                    let loss = g.scale(acc, 1.0 / losses.len() as f32);
                    Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
                };
                let mut grads = GradStore::new(&self.store);
                let Some(stats) =
                    trainer.step(&self.store, &mut grads, step, batch, 2, &mut rng, &shard_loss)
                else {
                    continue;
                };
                grads.clip_global_norm(cfg.grad_clip);
                optimizer.step(&mut self.store, &grads, schedule.lr(step));
                step += 1;
                executed += 1;
                epoch_loss += f64::from(stats.loss);
            }
            // Mean over batches actually executed, not the planned count.
            epoch_losses.push((epoch_loss / executed.max(1) as f64) as f32);
        }
        epoch_losses
    }
}

impl BaselineEncoder for Pim {
    fn name(&self) -> &'static str {
        "PIM"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn max_len(&self) -> usize {
        self.max_len
    }

    fn pool(&self, g: &mut Graph, view: &TrajView, rng: &mut StdRng) -> NodeId {
        let (_, global) = self.encode_in_graph(g, view, rng);
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::{node2vec, Node2VecConfig};
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn pim_pretrains_and_separates_self_from_other() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 32, num_drivers: 4, ..Default::default() },
        );
        let d = sim.generate();
        let n2v = node2vec(
            &city.net,
            &Node2VecConfig { dim: 24, epochs: 1, walks_per_node: 2, ..Default::default() },
        );
        let mut pim = Pim::new(city.net.num_segments(), 24, 64, n2v.data(), 5);
        let cfg = BaselineTrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 1e-3,
            max_steps_per_epoch: Some(3),
            ..Default::default()
        };
        let losses = pim.pretrain(&d, &cfg);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() <= losses.first().unwrap());
        let embs = pim.encode(&d[..4]);
        assert_eq!(embs.len(), 4);
        assert_eq!(embs[0].len(), 24);
    }
}
