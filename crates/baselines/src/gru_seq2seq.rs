//! The encoder-decoder (reconstruction) baseline family of §IV-B:
//! traj2vec [9], t2vec [8] and Trembr [7].
//!
//! All three are RNN seq2seq autoencoders over road sequences; they differ
//! in input handling and decoder targets:
//!
//! | model    | input                              | decoder target              |
//! |----------|------------------------------------|-----------------------------|
//! | traj2vec | road feature sequence              | roads (CE)                  |
//! | t2vec    | token-downsampled road sequence    | full roads (CE)             |
//! | Trembr   | roads + time embeddings            | roads (CE) + durations (MSE)|
//!
//! The trajectory representation is the encoder's final hidden state.

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::{GruCell, Linear};
use start_nn::params::{GradStore, ParamStore};
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, Array, WarmupCosine};
use start_traj::{TrajView, Trajectory};

use crate::encoder::{clamp_view, BaselineEncoder, BaselineTrainConfig, SeqEmbedder};

/// Which member of the family this instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seq2SeqKind {
    Traj2Vec,
    T2Vec,
    Trembr,
}

impl Seq2SeqKind {
    fn uses_time(self) -> bool {
        matches!(self, Seq2SeqKind::Trembr)
    }

    fn downsamples_input(self) -> bool {
        matches!(self, Seq2SeqKind::T2Vec)
    }

    fn predicts_time(self) -> bool {
        matches!(self, Seq2SeqKind::Trembr)
    }
}

/// GRU encoder-decoder baseline.
pub struct GruSeq2Seq {
    kind: Seq2SeqKind,
    store: ParamStore,
    emb: SeqEmbedder,
    encoder: GruCell,
    decoder: GruCell,
    road_out: Linear,
    time_out: Option<Linear>,
    dim: usize,
    max_len: usize,
}

impl GruSeq2Seq {
    pub fn new(kind: Seq2SeqKind, num_roads: usize, dim: usize, max_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb = SeqEmbedder::new(
            &mut store,
            &mut rng,
            "emb",
            num_roads,
            dim,
            max_len,
            kind.uses_time(),
            false,
        );
        let encoder = GruCell::new(&mut store, &mut rng, "enc", dim, dim);
        let decoder = GruCell::new(&mut store, &mut rng, "dec", dim, dim);
        let road_out = Linear::new(&mut store, &mut rng, "road_out", dim, num_roads, true);
        let time_out = kind
            .predicts_time()
            .then(|| Linear::new(&mut store, &mut rng, "time_out", dim, 1, true));
        Self { kind, store, emb, encoder, decoder, road_out, time_out, dim, max_len }
    }

    pub fn kind(&self) -> Seq2SeqKind {
        self.kind
    }

    /// Record one trajectory's pre-training loss on `g` without touching the
    /// optimizer — the no-data tracing hook the `start_nn::symbolic` tape
    /// families drive.
    pub fn record_pretrain_loss(
        &self,
        g: &mut Graph,
        traj: &Trajectory,
        rng: &mut StdRng,
    ) -> NodeId {
        self.reconstruction_loss(g, traj, rng)
    }

    /// Reconstruction loss of one trajectory (plus Trembr's time loss).
    fn reconstruction_loss(&self, g: &mut Graph, traj: &Trajectory, rng: &mut StdRng) -> NodeId {
        let full = clamp_view(TrajView::identity(traj), self.max_len);
        // t2vec encodes a downsampled input but reconstructs the full path.
        let input_view = if self.kind.downsamples_input() && full.len() > 4 {
            let mut v = full.clone();
            let keep: Vec<usize> = (0..v.len()).filter(|_| rng.gen::<f64>() >= 0.2).collect();
            let keep = if keep.len() < 2 { vec![0, v.len() - 1] } else { keep };
            v.roads = keep.iter().map(|&i| v.roads[i]).collect();
            v.times = keep.iter().map(|&i| v.times[i]).collect();
            v.masked = vec![false; v.roads.len()];
            v
        } else {
            full.clone()
        };

        let xs = self.emb.forward(g, &input_view, rng);
        let hs = self.encoder.forward_sequence(g, xs);
        let h_enc = g.select_row(hs, input_view.len() - 1);

        // Teacher-forced decoder: input at step t is the embedding of road
        // t-1 (zeros at t=0); initial hidden is the encoder representation.
        let target_emb = self.emb.forward(g, &full, rng);
        let mut h = h_enc;
        let mut hiddens = Vec::with_capacity(full.len());
        let zero = g.input(Array::zeros(1, self.dim));
        for i in 0..full.len() {
            let x = if i == 0 { zero } else { g.select_row(target_emb, i - 1) };
            h = self.decoder.step(g, x, h);
            hiddens.push(h);
        }
        let dec = g.concat_rows(&hiddens);
        let logits = self.road_out.forward(g, dec);
        let targets: Vec<u32> = full.roads.iter().map(|r| r.0).collect();
        let mut loss = g.cross_entropy_rows(logits, Arc::new(targets));

        if let Some(time_head) = &self.time_out {
            // Trembr also reconstructs per-road traversal durations.
            let n = full.len();
            let durations: Vec<f32> = (0..n)
                .map(|i| {
                    let exit = if i + 1 < n { full.times[i + 1] } else { traj.arrival };
                    ((exit - full.times[i]) as f32 / 60.0).clamp(0.0, 60.0)
                })
                .collect();
            let preds = time_head.forward(g, dec);
            let tloss = g.mse_loss(preds, Array::from_vec(n, 1, durations));
            let tloss = g.scale(tloss, 0.05);
            loss = g.add(loss, tloss);
        }
        loss
    }

    /// Self-supervised pre-training with the reconstruction objective.
    pub fn pretrain(&mut self, train: &[Trajectory], cfg: &BaselineTrainConfig) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = {
            let full = (train.len() / cfg.batch_size).max(1);
            cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
        };
        let total = (steps_per_epoch * cfg.epochs) as u64;
        let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
        let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
        let mut optimizer =
            AdamW::new(&self.store, AdamWConfig { lr: cfg.lr, ..Default::default() });
        let mut indices: Vec<usize> = (0..train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut step = 0u64;
        for _ in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut executed = 0usize;
            for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
                let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                    let losses: Vec<NodeId> =
                        shard.iter().map(|&i| self.reconstruction_loss(g, &train[i], r)).collect();
                    let mut acc = losses[0];
                    for &l in &losses[1..] {
                        acc = g.add(acc, l);
                    }
                    let loss = g.scale(acc, 1.0 / losses.len() as f32);
                    Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
                };
                let mut grads = GradStore::new(&self.store);
                let Some(stats) =
                    trainer.step(&self.store, &mut grads, step, batch, 1, &mut rng, &shard_loss)
                else {
                    continue;
                };
                grads.clip_global_norm(cfg.grad_clip);
                optimizer.step(&mut self.store, &grads, schedule.lr(step));
                step += 1;
                executed += 1;
                epoch_loss += f64::from(stats.loss);
            }
            // Mean over batches actually executed, not the planned count.
            epoch_losses.push((epoch_loss / executed.max(1) as f64) as f32);
        }
        epoch_losses
    }
}

impl BaselineEncoder for GruSeq2Seq {
    fn name(&self) -> &'static str {
        match self.kind {
            Seq2SeqKind::Traj2Vec => "traj2vec",
            Seq2SeqKind::T2Vec => "t2vec",
            Seq2SeqKind::Trembr => "Trembr",
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn max_len(&self) -> usize {
        self.max_len
    }

    fn pool(&self, g: &mut Graph, view: &TrajView, rng: &mut StdRng) -> NodeId {
        let xs = self.emb.forward(g, view, rng);
        let hs = self.encoder.forward_sequence(g, xs);
        g.select_row(hs, view.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_traj::{SimConfig, Simulator};

    fn data() -> (start_roadnet::City, Vec<Trajectory>) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 48, num_drivers: 4, ..Default::default() },
        );
        let d = sim.generate();
        (city, d)
    }

    #[test]
    fn all_three_kinds_pretrain_and_reduce_loss() {
        let (city, d) = data();
        for kind in [Seq2SeqKind::Traj2Vec, Seq2SeqKind::T2Vec, Seq2SeqKind::Trembr] {
            let mut model = GruSeq2Seq::new(kind, city.net.num_segments(), 24, 64, 11);
            let cfg = BaselineTrainConfig {
                epochs: 3,
                batch_size: 8,
                lr: 2e-3,
                max_steps_per_epoch: Some(3),
                ..Default::default()
            };
            let losses = model.pretrain(&d, &cfg);
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "{kind:?} loss did not drop: {losses:?}"
            );
            let embs = model.encode(&d[..4]);
            assert_eq!(embs[0].len(), 24);
            assert!(embs.iter().flatten().all(|v| v.is_finite()));
        }
    }
}
