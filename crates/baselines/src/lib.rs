//! `start-baselines`: the eight baselines of the START paper's §IV-B,
//! implemented from scratch on the same `start-nn` substrate so Table II
//! comparisons are apples-to-apples.
//!
//! - Encoder-decoder with reconstruction: [`GruSeq2Seq`] covering
//!   traj2vec [9], t2vec [8] and Trembr [7];
//! - Self-supervised sequence models: [`TransformerBaseline`] covering
//!   Transformer (MLM) [11] and BERT [10];
//! - Two-stage models: [`Pim`] (node2vec + RNN + mutual information) [6],
//!   PIM-TF (the same objective on a Transformer) and Toast [5]
//!   (node2vec + MLM + trajectory discrimination), the latter two also via
//!   [`TransformerBaseline`].
//!
//! All expose the [`BaselineEncoder`] trait; [`heads`] provides the shared
//! fine-tuning protocol (identical to START's, per §IV-C1).

pub mod encoder;
pub mod gru_seq2seq;
pub mod heads;
pub mod pim;
pub mod transformer_family;
pub mod verify;

pub use encoder::{
    clamp_view, departure_only_view, BaselineEncoder, BaselineTrainConfig, SeqEmbedder,
};
pub use gru_seq2seq::{GruSeq2Seq, Seq2SeqKind};
pub use heads::{
    fine_tune_classifier, fine_tune_eta, predict_classes, predict_eta, GenericClassifierHead,
    GenericEtaHead,
};
pub use pim::Pim;
pub use transformer_family::{TfKind, TransformerBaseline};
pub use verify::symbolic_families;
