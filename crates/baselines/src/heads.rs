//! Generic downstream heads for baselines: the same fine-tuning protocol the
//! paper applies to every model (§IV-C1 "the baselines have the same
//! settings as START").

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use start_nn::graph::Graph;
use start_nn::layers::Linear;
use start_nn::params::GradStore;
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, Array, WarmupCosine};
use start_traj::{TrajView, Trajectory};

use crate::encoder::{clamp_view, departure_only_view, BaselineEncoder, BaselineTrainConfig};

/// Regression head over a baseline encoder.
pub struct GenericEtaHead {
    fc: Linear,
    pub target_mean: f32,
    pub target_std: f32,
}

/// Fine-tune any baseline for travel time estimation (Eq. 16 protocol).
pub fn fine_tune_eta<E: BaselineEncoder>(
    enc: &mut E,
    train: &[Trajectory],
    cfg: &BaselineTrainConfig,
) -> GenericEtaHead {
    assert!(!train.is_empty());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = enc.dim();
    let fc = {
        let store = enc.store_mut();
        Linear::new(store, &mut rng, "eta_head", dim, 1, true)
    };
    let times: Vec<f32> = train.iter().map(Trajectory::travel_time_secs).collect();
    let mean = times.iter().sum::<f32>() / times.len() as f32;
    let std = (times.iter().map(|t| (t - mean) * (t - mean)).sum::<f32>() / times.len() as f32)
        .sqrt()
        .max(1.0);

    let steps_per_epoch = {
        let full = (train.len() / cfg.batch_size).max(1);
        cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
    };
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
    let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
    let mut optimizer = AdamW::new(enc.store(), AdamWConfig { lr: cfg.lr, ..Default::default() });

    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut step = 0u64;
    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
            let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                let mut pooled = Vec::with_capacity(shard.len());
                let mut targets = Vec::with_capacity(shard.len());
                for &i in shard {
                    let view = clamp_view(departure_only_view(&train[i]), enc.max_len());
                    pooled.push(enc.pool(g, &view, r));
                    targets.push((train[i].travel_time_secs() - mean) / std);
                }
                let stacked = g.concat_rows(&pooled);
                let preds = fc.forward(g, stacked);
                let loss = g.mse_loss(preds, Array::from_vec(shard.len(), 1, targets));
                Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
            };
            let mut grads = GradStore::new(enc.store());
            if trainer
                .step(enc.store(), &mut grads, step, batch, 1, &mut rng, &shard_loss)
                .is_none()
            {
                continue;
            }
            grads.clip_global_norm(cfg.grad_clip);
            optimizer.step(enc.store_mut(), &grads, schedule.lr(step));
            step += 1;
        }
    }
    GenericEtaHead { fc, target_mean: mean, target_std: std }
}

/// Predict travel times in seconds.
pub fn predict_eta<E: BaselineEncoder>(
    enc: &E,
    head: &GenericEtaHead,
    trajectories: &[Trajectory],
) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::with_capacity(trajectories.len());
    for chunk in trajectories.chunks(64) {
        let mut g = Graph::new(enc.store(), false);
        for t in chunk {
            let view = clamp_view(departure_only_view(t), enc.max_len());
            let p = enc.pool(&mut g, &view, &mut rng);
            let pred = head.fc.forward(&mut g, p);
            out.push(g.value(pred).item() * head.target_std + head.target_mean);
        }
    }
    out
}

/// Classification head over a baseline encoder.
pub struct GenericClassifierHead {
    fc: Linear,
    pub num_classes: usize,
}

/// Fine-tune any baseline for trajectory classification (Eq. 17 protocol).
pub fn fine_tune_classifier<E: BaselineEncoder>(
    enc: &mut E,
    train: &[Trajectory],
    labels: &[usize],
    num_classes: usize,
    cfg: &BaselineTrainConfig,
) -> GenericClassifierHead {
    assert_eq!(train.len(), labels.len());
    assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = enc.dim();
    let fc = {
        let store = enc.store_mut();
        Linear::new(store, &mut rng, "cls_head", dim, num_classes, true)
    };
    let steps_per_epoch = {
        let full = (train.len() / cfg.batch_size).max(1);
        cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
    };
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
    let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
    let mut optimizer = AdamW::new(enc.store(), AdamWConfig { lr: cfg.lr, ..Default::default() });

    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut step = 0u64;
    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
            let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                let mut pooled = Vec::with_capacity(shard.len());
                let mut targets = Vec::with_capacity(shard.len());
                for &i in shard {
                    let view = clamp_view(TrajView::identity(&train[i]), enc.max_len());
                    pooled.push(enc.pool(g, &view, r));
                    targets.push(labels[i] as u32);
                }
                let stacked = g.concat_rows(&pooled);
                let logits = fc.forward(g, stacked);
                let loss = g.cross_entropy_rows(logits, Arc::new(targets));
                Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
            };
            let mut grads = GradStore::new(enc.store());
            if trainer
                .step(enc.store(), &mut grads, step, batch, 1, &mut rng, &shard_loss)
                .is_none()
            {
                continue;
            }
            grads.clip_global_norm(cfg.grad_clip);
            optimizer.step(enc.store_mut(), &grads, schedule.lr(step));
            step += 1;
        }
    }
    GenericClassifierHead { fc, num_classes }
}

/// Predict class probabilities.
pub fn predict_classes<E: BaselineEncoder>(
    enc: &E,
    head: &GenericClassifierHead,
    trajectories: &[Trajectory],
) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::with_capacity(trajectories.len());
    for chunk in trajectories.chunks(64) {
        let mut g = Graph::new(enc.store(), false);
        for t in chunk {
            let view = clamp_view(TrajView::identity(t), enc.max_len());
            let p = enc.pool(&mut g, &view, &mut rng);
            let logits = head.fc.forward(&mut g, p);
            let probs = g.softmax_rows(logits);
            out.push(g.value(probs).row(0).to_vec());
        }
    }
    out
}
