//! Dataset construction for the experiment binaries: BJ-mini, Porto-mini
//! and Geolife-mini (the Table III transfer target).

use start_roadnet::synth::{beijing_like, porto_like};
use start_traj::{PreprocessConfig, SimConfig, TrajDataset};

use crate::scale::Scale;

/// The BJ-mini dataset (binary occupancy labels, ETA, similarity).
pub fn bj_mini(scale: &Scale) -> TrajDataset {
    let city = beijing_like();
    let sim = SimConfig {
        num_trajectories: scale.bj_trajectories,
        num_drivers: 60,
        days: 28,
        seed: 20151101,
        ..Default::default()
    };
    TrajDataset::build(city, sim, &PreprocessConfig::default())
}

/// The Porto-mini dataset (driver-id multi-class labels).
pub fn porto_mini(scale: &Scale) -> TrajDataset {
    let city = porto_like();
    let sim = SimConfig {
        num_trajectories: scale.porto_trajectories,
        num_drivers: 24,
        days: 28,
        seed: 20130701,
        ..Default::default()
    };
    TrajDataset::build(city, sim, &PreprocessConfig::default())
}

/// The Geolife-mini transfer dataset: small, multi-modal, on the BJ network
/// (as in the paper, Geolife and BJ share the same city).
pub fn geolife_mini() -> TrajDataset {
    let mut city = beijing_like();
    city.name = "Geolife-mini".into();
    let mut sim = SimConfig::geolife_like();
    sim.num_drivers = 24;
    // Tiny dataset, keep every user.
    let pre = PreprocessConfig { min_user_trajectories: 1, ..Default::default() };
    TrajDataset::build(city, sim, &pre)
}

/// Dense driver-id labels for multi-class classification: maps raw driver
/// ids to `0..n_classes`, returning (labels per trajectory, n_classes) over
/// the given split.
pub fn driver_labels(trajs: &[start_traj::Trajectory]) -> (Vec<usize>, usize) {
    let mut ids: Vec<u32> = trajs.iter().map(|t| t.driver).collect();
    ids.sort_unstable();
    ids.dedup();
    let labels =
        trajs.iter().map(|t| ids.binary_search(&t.driver).expect("driver present")).collect();
    (labels, ids.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_labels_are_dense() {
        let scale = Scale::quick();
        let ds = porto_mini(&Scale { porto_trajectories: 300, ..scale });
        let (labels, n) = driver_labels(ds.train());
        assert!(n >= 2);
        assert!(labels.iter().all(|&l| l < n));
        // Every class in range appears at least once.
        for c in 0..n {
            assert!(labels.contains(&c), "class {c} missing");
        }
    }
}
