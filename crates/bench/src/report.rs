//! Plain-text table/series rendering shared by the experiment binaries.
//! Output is aligned so EXPERIMENTS.md can quote it directly.

/// A printable results table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f32) -> String {
    format!("{v:.3}")
}

pub fn f1(v: f32) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["model", "MAE"]);
        t.row(vec!["START".into(), f3(1.23456)]);
        t.row(vec!["t2vec".into(), f3(10.5)]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("1.235"));
        assert!(s.contains("10.500"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
