//! The model zoo: START plus the eight baselines behind one runner
//! interface, so every experiment binary trains and evaluates models
//! uniformly.

use start_baselines::{
    BaselineEncoder, BaselineTrainConfig, GruSeq2Seq, Pim, Seq2SeqKind, TfKind, TransformerBaseline,
};
use start_core::{
    fine_tune_classifier, fine_tune_eta, predict_classes, predict_eta, pretrain, EncodeOptions,
    FineTuneConfig, PretrainConfig, StartConfig, StartModel,
};
use start_roadnet::{node2vec, Node2VecConfig, NodeEmbeddings};
use start_traj::{TrajDataset, Trajectory};

use crate::scale::Scale;

/// Which model to run.
#[derive(Debug, Clone)]
pub enum ModelKind {
    /// START with the given (possibly ablated) configuration.
    Start(Box<StartConfig>),
    Traj2Vec,
    T2Vec,
    Trembr,
    Transformer,
    Bert,
    Pim,
    PimTf,
    Toast,
}

impl ModelKind {
    /// The default START at a given scale.
    pub fn start(scale: &Scale) -> Self {
        ModelKind::Start(Box::new(start_config(scale)))
    }

    /// All nine Table II models in the paper's row order.
    pub fn table2_lineup(scale: &Scale) -> Vec<ModelKind> {
        vec![
            ModelKind::Traj2Vec,
            ModelKind::T2Vec,
            ModelKind::Trembr,
            ModelKind::Transformer,
            ModelKind::Bert,
            ModelKind::Pim,
            ModelKind::PimTf,
            ModelKind::Toast,
            ModelKind::start(scale),
        ]
    }

    pub fn needs_node2vec(&self) -> bool {
        use start_core::RoadEncoder;
        match self {
            ModelKind::Pim | ModelKind::Toast => true,
            ModelKind::Start(cfg) => cfg.road_encoder == RoadEncoder::Node2VecEmbedding,
            _ => false,
        }
    }
}

/// START config derived from the experiment scale.
pub fn start_config(scale: &Scale) -> StartConfig {
    StartConfig::builder()
        .dim(scale.dim)
        .gat_heads(vec![scale.heads; scale.gat_layers])
        .encoder_layers(scale.encoder_layers)
        .encoder_heads(scale.heads)
        .ffn_hidden(scale.dim)
        .build()
        .unwrap_or_else(|e| panic!("invalid benchmark scale {scale:?}: {e}"))
}

/// node2vec embeddings at the model dimension (cached per dataset by callers).
pub fn dataset_node2vec(ds: &TrajDataset, dim: usize) -> NodeEmbeddings {
    node2vec(
        &ds.city.net,
        &Node2VecConfig {
            dim,
            epochs: 1,
            walks_per_node: 3,
            walk_length: 16,
            ..Default::default()
        },
    )
}

/// A pre-trainable, fine-tunable, encodable model.
#[allow(clippy::large_enum_variant)]
pub enum Runner {
    Start(Box<StartModel>),
    Gru(GruSeq2Seq),
    Tf(TransformerBaseline),
    Pim(Pim),
}

impl Runner {
    /// Construct an untrained model for a dataset.
    pub fn build(
        kind: &ModelKind,
        ds: &TrajDataset,
        scale: &Scale,
        n2v: Option<&NodeEmbeddings>,
    ) -> Self {
        let n = ds.num_segments();
        let d = scale.dim;
        let max_len = 128;
        match kind {
            ModelKind::Start(cfg) => {
                let model =
                    StartModel::new((**cfg).clone(), &ds.city.net, Some(&ds.transfer), n2v, 1234);
                Runner::Start(Box::new(model))
            }
            ModelKind::Traj2Vec => {
                Runner::Gru(GruSeq2Seq::new(Seq2SeqKind::Traj2Vec, n, d, max_len, 1))
            }
            ModelKind::T2Vec => Runner::Gru(GruSeq2Seq::new(Seq2SeqKind::T2Vec, n, d, max_len, 2)),
            ModelKind::Trembr => {
                Runner::Gru(GruSeq2Seq::new(Seq2SeqKind::Trembr, n, d, max_len, 3))
            }
            ModelKind::Transformer => Runner::Tf(TransformerBaseline::new(
                TfKind::TransformerMlm,
                n,
                d,
                scale.encoder_layers,
                scale.heads,
                max_len,
                None,
                4,
            )),
            ModelKind::Bert => Runner::Tf(TransformerBaseline::new(
                TfKind::Bert,
                n,
                d,
                scale.encoder_layers,
                scale.heads,
                max_len,
                None,
                5,
            )),
            ModelKind::Pim => {
                let table = n2v.expect("PIM needs node2vec");
                Runner::Pim(Pim::new(n, d, max_len, table.data(), 6))
            }
            ModelKind::PimTf => Runner::Tf(TransformerBaseline::new(
                TfKind::PimTf,
                n,
                d,
                scale.encoder_layers,
                scale.heads,
                max_len,
                None,
                7,
            )),
            ModelKind::Toast => {
                let table = n2v.expect("Toast needs node2vec");
                Runner::Tf(TransformerBaseline::new(
                    TfKind::Toast,
                    n,
                    d,
                    scale.encoder_layers,
                    scale.heads,
                    max_len,
                    Some(table.data()),
                    8,
                ))
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Runner::Start(_) => "START",
            Runner::Gru(m) => m.name(),
            Runner::Tf(m) => m.name(),
            Runner::Pim(m) => m.name(),
        }
    }

    /// Self-supervised pre-training at the given scale.
    pub fn pretrain(&mut self, ds: &TrajDataset, scale: &Scale) {
        match self {
            Runner::Start(model) => {
                let cfg = PretrainConfig {
                    epochs: scale.pretrain_epochs,
                    batch_size: scale.batch_size,
                    max_steps_per_epoch: scale.pretrain_steps_per_epoch,
                    base_lr: 5e-4,
                    ..Default::default()
                };
                pretrain(model, ds.train(), &ds.historical, &cfg);
            }
            Runner::Gru(model) => {
                let cfg = baseline_cfg(scale);
                model.pretrain(ds.train(), &cfg);
            }
            Runner::Tf(model) => {
                let cfg = baseline_cfg(scale);
                model.pretrain(ds.train(), &cfg);
            }
            Runner::Pim(model) => {
                let cfg = baseline_cfg(scale);
                model.pretrain(ds.train(), &cfg);
            }
        }
    }

    /// Zero-shot trajectory embeddings.
    pub fn encode(&self, trajs: &[Trajectory]) -> Vec<Vec<f32>> {
        match self {
            Runner::Start(model) => model
                .encoder()
                .encode(trajs, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("encode: {e}")),
            Runner::Gru(model) => model.encode(trajs),
            Runner::Tf(model) => model.encode(trajs),
            Runner::Pim(model) => model.encode(trajs),
        }
    }

    /// Snapshot all weights (used to fine-tune per-task from one pre-train).
    pub fn snapshot(&self) -> Vec<u8> {
        start_nn::serialize::save_params(self.store()).to_vec()
    }

    /// Restore weights from [`Runner::snapshot`] (head weights are ignored
    /// if the blob lacks them).
    pub fn restore(&mut self, blob: &[u8]) {
        start_nn::serialize::load_params(self.store_mut(), blob).expect("valid snapshot");
    }

    fn store(&self) -> &start_nn::ParamStore {
        match self {
            Runner::Start(m) => &m.store,
            Runner::Gru(m) => m.store(),
            Runner::Tf(m) => m.store(),
            Runner::Pim(m) => m.store(),
        }
    }

    fn store_mut(&mut self) -> &mut start_nn::ParamStore {
        match self {
            Runner::Start(m) => &mut m.store,
            Runner::Gru(m) => m.store_mut(),
            Runner::Tf(m) => m.store_mut(),
            Runner::Pim(m) => m.store_mut(),
        }
    }

    /// Fine-tune for ETA and predict on the test set (seconds).
    pub fn eta(&mut self, train: &[Trajectory], test: &[Trajectory], scale: &Scale) -> Vec<f32> {
        match self {
            Runner::Start(model) => {
                let cfg = ft_cfg(scale);
                let head = fine_tune_eta(model, train, &cfg);
                predict_eta(model, &head, test)
            }
            Runner::Gru(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head = start_baselines::fine_tune_eta(model, train, &cfg);
                start_baselines::predict_eta(model, &head, test)
            }
            Runner::Tf(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head = start_baselines::fine_tune_eta(model, train, &cfg);
                start_baselines::predict_eta(model, &head, test)
            }
            Runner::Pim(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head = start_baselines::fine_tune_eta(model, train, &cfg);
                start_baselines::predict_eta(model, &head, test)
            }
        }
    }

    /// Fine-tune a classifier and return test-set class probabilities.
    pub fn classify(
        &mut self,
        train: &[Trajectory],
        labels: &[usize],
        num_classes: usize,
        test: &[Trajectory],
        scale: &Scale,
    ) -> Vec<Vec<f32>> {
        match self {
            Runner::Start(model) => {
                let cfg = ft_cfg(scale);
                let head = fine_tune_classifier(model, train, labels, num_classes, &cfg);
                predict_classes(model, &head, test)
            }
            Runner::Gru(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head =
                    start_baselines::fine_tune_classifier(model, train, labels, num_classes, &cfg);
                start_baselines::predict_classes(model, &head, test)
            }
            Runner::Tf(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head =
                    start_baselines::fine_tune_classifier(model, train, labels, num_classes, &cfg);
                start_baselines::predict_classes(model, &head, test)
            }
            Runner::Pim(model) => {
                let cfg = baseline_ft_cfg(scale);
                let head =
                    start_baselines::fine_tune_classifier(model, train, labels, num_classes, &cfg);
                start_baselines::predict_classes(model, &head, test)
            }
        }
    }
}

fn baseline_cfg(scale: &Scale) -> BaselineTrainConfig {
    BaselineTrainConfig {
        epochs: scale.pretrain_epochs,
        batch_size: scale.batch_size,
        max_steps_per_epoch: scale.pretrain_steps_per_epoch,
        lr: 5e-4,
        ..Default::default()
    }
}

fn ft_cfg(scale: &Scale) -> FineTuneConfig {
    FineTuneConfig {
        epochs: scale.finetune_epochs,
        batch_size: scale.batch_size,
        max_steps_per_epoch: scale.finetune_steps_per_epoch,
        lr: 1e-3,
        ..Default::default()
    }
}

fn baseline_ft_cfg(scale: &Scale) -> BaselineTrainConfig {
    BaselineTrainConfig {
        epochs: scale.finetune_epochs,
        batch_size: scale.batch_size,
        max_steps_per_epoch: scale.finetune_steps_per_epoch,
        lr: 1e-3,
        ..Default::default()
    }
}

/// Wall-clock a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed())
}
