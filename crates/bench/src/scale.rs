//! Experiment scale selection.
//!
//! The paper trains d=256 / 6-layer models on a 3090 for 30 epochs over ~1M
//! trajectories; this CPU reproduction exposes three scales selected with
//! `START_SCALE={quick,std,full}` (default `quick`). All experiment
//! binaries honour it, so the same harness regenerates every table and
//! figure at any budget.

/// Knobs that grow with the compute budget.
#[derive(Debug, Clone)]
pub struct Scale {
    pub name: &'static str,
    /// Simulated trajectories per city before preprocessing.
    pub bj_trajectories: usize,
    pub porto_trajectories: usize,
    /// Model width / depth.
    pub dim: usize,
    pub gat_layers: usize,
    pub encoder_layers: usize,
    pub heads: usize,
    /// Pre-training budget.
    pub pretrain_epochs: usize,
    pub pretrain_steps_per_epoch: Option<usize>,
    pub batch_size: usize,
    /// Fine-tuning budget.
    pub finetune_epochs: usize,
    pub finetune_steps_per_epoch: Option<usize>,
    /// Evaluation subset sizes.
    pub eval_subset: usize,
    /// Similarity search sizes (queries; negatives are 10x).
    pub num_queries: usize,
}

impl Scale {
    pub fn quick() -> Self {
        Self {
            name: "quick",
            bj_trajectories: 2200,
            porto_trajectories: 1400,
            dim: 48,
            gat_layers: 2,
            encoder_layers: 2,
            heads: 4,
            pretrain_epochs: 4,
            pretrain_steps_per_epoch: Some(50),
            batch_size: 16,
            finetune_epochs: 3,
            finetune_steps_per_epoch: Some(60),
            eval_subset: 220,
            num_queries: 50,
        }
    }

    pub fn std() -> Self {
        Self {
            name: "std",
            bj_trajectories: 6000,
            porto_trajectories: 4000,
            dim: 64,
            gat_layers: 2,
            encoder_layers: 3,
            heads: 4,
            pretrain_epochs: 4,
            pretrain_steps_per_epoch: Some(60),
            batch_size: 16,
            finetune_epochs: 3,
            finetune_steps_per_epoch: Some(60),
            eval_subset: 600,
            num_queries: 150,
        }
    }

    pub fn full() -> Self {
        Self {
            name: "full",
            bj_trajectories: 20000,
            porto_trajectories: 12000,
            dim: 128,
            gat_layers: 3,
            encoder_layers: 6,
            heads: 8,
            pretrain_epochs: 10,
            pretrain_steps_per_epoch: None,
            batch_size: 32,
            finetune_epochs: 5,
            finetune_steps_per_epoch: None,
            eval_subset: 2000,
            num_queries: 500,
        }
    }

    /// Read `START_SCALE` (default quick).
    pub fn from_env() -> Self {
        match std::env::var("START_SCALE").as_deref() {
            Ok("full") => Self::full(),
            Ok("std") => Self::std(),
            _ => Self::quick(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let s = Scale::std();
        let f = Scale::full();
        assert!(q.bj_trajectories < s.bj_trajectories);
        assert!(s.bj_trajectories < f.bj_trajectories);
        assert!(q.dim <= s.dim && s.dim <= f.dim);
    }
}
