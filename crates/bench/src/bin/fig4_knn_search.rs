//! Figure 4: precision of the k-nearest trajectory search (k = 5) as the
//! detour selection proportion `p_d` varies from 0.1 to 0.5, for all nine
//! models on both datasets (zero-shot).
//!
//! Run: `cargo run -p start-bench --release --bin fig4_knn_search`

use start_bench::{bj_mini, dataset_node2vec, porto_mini, ModelKind, Runner, Scale, Table};
use start_eval::metrics::knn_precision;
use start_traj::{make_detour, DetourConfig, TrajDataset, Trajectory};

use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 5;
const PDS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 4 (scale: {}, k = {K})\n", scale.name);
    for (ds, label) in [(bj_mini(&scale), "BJ-mini"), (porto_mini(&scale), "Porto-mini")] {
        run(&ds, label, &scale);
    }
    println!("Shape checks vs the paper: precision falls as p_d grows; START decays slowest;\nTransformer/BERT/PIM-TF/Toast trail (anisotropic zero-shot representations).");
}

fn run(ds: &TrajDataset, label: &str, scale: &Scale) {
    let nq = (scale.num_queries / 2).max(20).min(ds.test().len() / 4);
    let queries: Vec<Trajectory> = ds.test().iter().take(nq).cloned().collect();
    let db: Vec<Trajectory> = ds.test().iter().take(nq * 8).cloned().collect();

    // Transformed (detoured) queries at each p_d.
    let mut rng = StdRng::seed_from_u64(44);
    let mut transformed: Vec<Vec<Trajectory>> = Vec::new();
    for &pd in &PDS {
        let cfg = DetourConfig { select_proportion: pd, ..Default::default() };
        transformed.push(
            queries
                .iter()
                .map(|q| make_detour(&ds.city.net, q, &cfg, &mut rng).unwrap_or_else(|| q.clone()))
                .collect(),
        );
    }

    let n2v = dataset_node2vec(ds, scale.dim);
    let mut header = vec!["Model".to_string()];
    header.extend(PDS.iter().map(|p| format!("p_d={p}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(format!("Fig 4: k-NN precision on {label}"), &header_refs);

    for kind in ModelKind::table2_lineup(scale) {
        let mut runner = Runner::build(&kind, ds, scale, Some(&n2v));
        runner.pretrain(ds, scale);
        let db_embs = runner.encode(&db);
        let q_embs = runner.encode(&queries);
        let mut row = vec![runner.name().to_string()];
        for t in &transformed {
            let t_embs = runner.encode(t);
            row.push(format!("{:.3}", knn_precision(&q_embs, &t_embs, &db_embs, K)));
        }
        eprintln!("  [{}] done", runner.name());
        table.row(row);
    }
    table.print();
}
