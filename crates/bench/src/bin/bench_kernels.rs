//! Kernel microbenchmarks for the blocked matmul family and the fused
//! multi-head attention tape op.
//!
//! Two layers of measurement:
//!
//! 1. Raw kernels — the pre-blocking reference implementations (branchy
//!    zero-skip triple loops, kept verbatim in this binary as `naive_*`)
//!    against the shipped `start_nn::array` kernels, reported as GFLOP/s per
//!    shape.
//! 2. A full Transformer encoder layer, forward + backward — "current main"
//!    (zero-skip reference kernels via `set_reference_kernels`, legacy
//!    per-head attention tape, a fresh graph each step) against this PR
//!    (blocked kernels, fused [`Graph::mh_attention`] op, pooled reused
//!    graph), reported as tokens/sec. Both paths run the same seed and must
//!    agree on the loss to 1e-4 at every step.
//!
//! Results land in `BENCH_kernels.json` at the repo root.
//!
//! Run: `cargo run -p start-bench --release --bin bench_kernels`
//! CI smoke: `cargo run -p start-bench --release --bin bench_kernels -- --smoke`
//! (tiny shapes, asserts fused == unfused and finiteness, no timing, no JSON).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::array::{self, Array};
use start_nn::graph::Graph;
use start_nn::layers::TransformerEncoderLayer;
use start_nn::params::{GradStore, ParamStore};
use start_nn::BufferPool;

// ---------------------------------------------------------------------------
// The "before" side: the pre-blocking zero-skip kernels preserved verbatim
// in `start_nn::array::reference`.

fn naive_matmul(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().0, b.shape().1);
    array::reference::matmul_into(a, b, &mut out);
    out
}

fn naive_matmul_bt(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().0, b.shape().0);
    array::reference::matmul_bt_into(a, b, &mut out);
    out
}

fn naive_matmul_at(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().1, b.shape().1);
    array::reference::matmul_at_into(a, b, &mut out);
    out
}

// ---------------------------------------------------------------------------

fn fill(rows: usize, cols: usize, seed: f32) -> Array {
    Array::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.61 + seed).sin())
}

fn max_abs_diff(a: &Array, b: &Array) -> f32 {
    a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Wall-time `f` enough times to exceed ~80ms and return GFLOP/s.
fn gflops(flops_per_call: f64, mut f: impl FnMut() -> Array) -> f64 {
    // Warmup + sanity.
    let out = f();
    assert!(out.all_finite(), "kernel produced non-finite values");
    let mut reps = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.08 || reps >= 1 << 14 {
            return flops_per_call * f64::from(reps) / dt / 1e9;
        }
        reps *= 4;
    }
}

struct KernelRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    gflops_before: f64,
    gflops_after: f64,
}

fn bench_kernel_shapes(shapes: &[(usize, usize, usize)]) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &(m, k, n) in shapes {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;

        let a = fill(m, k, 0.1);
        let b = fill(k, n, 0.7);
        rows.push(KernelRow {
            kernel: "matmul",
            m,
            k,
            n,
            gflops_before: gflops(flops, || naive_matmul(&a, &b)),
            gflops_after: gflops(flops, || array::matmul(&a, &b)),
        });

        let bt = fill(n, k, 0.7);
        rows.push(KernelRow {
            kernel: "matmul_bt",
            m,
            k,
            n,
            gflops_before: gflops(flops, || naive_matmul_bt(&a, &bt)),
            gflops_after: gflops(flops, || array::matmul_bt(&a, &bt)),
        });

        let at = fill(k, m, 0.1);
        rows.push(KernelRow {
            kernel: "matmul_at",
            m,
            k,
            n,
            gflops_before: gflops(flops, || naive_matmul_at(&at, &b)),
            gflops_after: gflops(flops, || array::matmul_at(&at, &b)),
        });
    }
    rows
}

/// Assert the shipped kernels agree with the naive references on one shape.
fn check_kernels_agree(m: usize, k: usize, n: usize) {
    let a = fill(m, k, 0.3);
    let b = fill(k, n, 0.9);
    let d = max_abs_diff(&naive_matmul(&a, &b), &array::matmul(&a, &b));
    assert!(d <= 1e-4, "matmul diverged from reference: {d}");
    let bt = fill(n, k, 0.9);
    let d = max_abs_diff(&naive_matmul_bt(&a, &bt), &array::matmul_bt(&a, &bt));
    assert!(d <= 1e-4, "matmul_bt diverged from reference: {d}");
    let at = fill(k, m, 0.3);
    let d = max_abs_diff(&naive_matmul_at(&at, &b), &array::matmul_at(&at, &b));
    assert!(d <= 1e-4, "matmul_at diverged from reference: {d}");
}

// ---------------------------------------------------------------------------

struct EncoderBench {
    t: usize,
    dim: usize,
    heads: usize,
    ffn_hidden: usize,
    steps: usize,
    tokens_per_sec_main: f64,
    tokens_per_sec_optimized: f64,
    speedup: f64,
    max_loss_diff: f32,
}

struct EncoderSetup {
    store: ParamStore,
    layer: TransformerEncoderLayer,
    x: Array,
    bias: Array,
}

fn encoder_setup(t: usize, dim: usize, heads: usize, ffn_hidden: usize) -> EncoderSetup {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let layer =
        TransformerEncoderLayer::new(&mut store, &mut rng, "enc", dim, heads, ffn_hidden, 0.0);
    let x = fill(t, dim, 0.2);
    let bias = Array::from_fn(t, t, |r, c| (r as f32 - c as f32) * 0.03);
    EncoderSetup { store, layer, x, bias }
}

/// One forward + backward through the encoder layer; returns the loss.
fn encoder_step(setup: &EncoderSetup, g: &mut Graph, fused: bool) -> f32 {
    let mut rng = StdRng::seed_from_u64(99);
    let x = g.input(setup.x.clone());
    let bias = g.input(setup.bias.clone());
    let y = if fused {
        setup.layer.forward(g, x, Some(bias), &mut rng)
    } else {
        setup.layer.forward_unfused(g, x, Some(bias), &mut rng)
    };
    let sq = g.mul(y, y);
    let loss = g.mean_all(sq);
    let mut grads = GradStore::new(&setup.store);
    g.backward(loss, &mut grads);
    g.value(loss).item()
}

fn bench_encoder(
    t: usize,
    dim: usize,
    heads: usize,
    ffn_hidden: usize,
    steps: usize,
) -> EncoderBench {
    let setup = encoder_setup(t, dim, heads, ffn_hidden);

    // The two paths are timed in interleaved rounds and scored by their
    // fastest round, so slow-timer noise (frequency scaling, co-tenant
    // interference on shared machines) hits both sides equally instead of
    // whichever path happened to run second.
    const ROUNDS: usize = 6;
    let chunk = steps.div_ceil(ROUNDS).max(1);
    let mut main_losses = Vec::new();
    let mut opt_losses = Vec::new();
    let mut best_main = f64::INFINITY;
    let mut best_opt = f64::INFINITY;
    let mut pool = BufferPool::new();
    for _ in 0..ROUNDS {
        // "Current main": zero-skip reference kernels, per-head attention
        // tape, a fresh graph every step.
        array::set_reference_kernels(true);
        let t0 = Instant::now();
        for _ in 0..chunk {
            let mut g = Graph::new(&setup.store, true);
            main_losses.push(encoder_step(&setup, &mut g, false));
        }
        best_main = best_main.min(t0.elapsed().as_secs_f64());
        array::set_reference_kernels(false);

        // This PR: blocked kernels, fused attention op, one pooled graph
        // reused across steps.
        let t1 = Instant::now();
        for _ in 0..chunk {
            let mut g = Graph::with_pool(&setup.store, true, pool);
            opt_losses.push(encoder_step(&setup, &mut g, true));
            pool = g.into_pool();
        }
        best_opt = best_opt.min(t1.elapsed().as_secs_f64());
    }

    let mut max_loss_diff = 0.0f32;
    for (a, b) in main_losses.iter().zip(&opt_losses) {
        assert!(a.is_finite() && b.is_finite(), "encoder loss went non-finite");
        max_loss_diff = max_loss_diff.max((a - b).abs());
    }
    assert!(max_loss_diff <= 1e-4, "fused and unfused encoder losses diverged: {max_loss_diff}");

    let tokens = (t * chunk) as f64;
    EncoderBench {
        t,
        dim,
        heads,
        ffn_hidden,
        steps: chunk * ROUNDS,
        tokens_per_sec_main: tokens / best_main,
        tokens_per_sec_optimized: tokens / best_opt,
        speedup: best_main / best_opt,
        max_loss_diff,
    }
}

/// Tiny-shape correctness pass for CI: no timing, no JSON.
fn smoke() {
    check_kernels_agree(5, 7, 3);
    check_kernels_agree(8, 8, 8);

    let setup = encoder_setup(8, 16, 4, 32);
    let mut g1 = Graph::new(&setup.store, true);
    let unfused = encoder_step(&setup, &mut g1, false);
    let mut g2 = Graph::new(&setup.store, true);
    let fused = encoder_step(&setup, &mut g2, true);
    assert!(unfused.is_finite() && fused.is_finite(), "smoke losses must be finite");
    assert!(
        (unfused - fused).abs() <= 1e-5,
        "smoke: fused {fused} vs unfused {unfused} loss mismatch"
    );

    // Pooled reuse must reproduce the fresh-graph loss bitwise.
    let mut pool = BufferPool::new();
    for _ in 0..2 {
        let mut g = Graph::with_pool(&setup.store, true, pool);
        let pooled = encoder_step(&setup, &mut g, true);
        assert_eq!(pooled.to_bits(), fused.to_bits(), "pooled graph changed the loss");
        pool = g.into_pool();
    }
    println!("bench_kernels --smoke: fused == unfused, all finite, pooled reuse stable");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("START reproduction — kernel throughput (cores: {cores})\n");

    check_kernels_agree(33, 65, 17);

    let shapes = [(64, 64, 64), (128, 256, 64), (256, 64, 256)];
    let rows = bench_kernel_shapes(&shapes);
    for r in &rows {
        println!(
            "  {:<10} {:>3}x{:<3}x{:<3}: {:6.2} -> {:6.2} GFLOP/s ({:.2}x)",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.gflops_before,
            r.gflops_after,
            r.gflops_after / r.gflops_before
        );
    }

    let enc = bench_encoder(256, 64, 4, 128, 30);
    println!(
        "\n  encoder layer T={} d={} h={} ffn={} ({} steps, fwd+bwd):",
        enc.t, enc.dim, enc.heads, enc.ffn_hidden, enc.steps
    );
    println!(
        "    main (zero-skip kernels, per-head tape, fresh graphs): {:8.0} tokens/s\n    this PR (blocked kernels, fused op, pooled graph):     {:8.0} tokens/s\n    speedup: {:.2}x (max loss diff {:.2e})",
        enc.tokens_per_sec_main, enc.tokens_per_sec_optimized, enc.speedup, enc.max_loss_diff
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_throughput\",");
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"gflops_before\": {:.3}, \"gflops_after\": {:.3}, \"speedup\": {:.3}}}{}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.gflops_before,
            r.gflops_after,
            r.gflops_after / r.gflops_before,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"encoder_layer\": {{");
    let _ = writeln!(
        json,
        "    \"t\": {}, \"dim\": {}, \"heads\": {}, \"ffn_hidden\": {},",
        enc.t, enc.dim, enc.heads, enc.ffn_hidden
    );
    let _ = writeln!(json, "    \"steps\": {}, \"direction\": \"forward+backward\",", enc.steps);
    let _ = writeln!(json, "    \"tokens_per_sec_main\": {:.1},", enc.tokens_per_sec_main);
    let _ =
        writeln!(json, "    \"tokens_per_sec_optimized\": {:.1},", enc.tokens_per_sec_optimized);
    let _ = writeln!(json, "    \"speedup_vs_main\": {:.3},", enc.speedup);
    let _ = writeln!(json, "    \"max_loss_diff\": {:.3e}", enc.max_loss_diff);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\n  wrote {path}");
}
