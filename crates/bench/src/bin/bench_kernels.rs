//! Kernel microbenchmarks for the matmul family and the fused multi-head
//! attention tape op, three-way across the [`start_nn::backend`] seam.
//!
//! Two layers of measurement:
//!
//! 1. Raw kernels — the pre-blocking reference implementations (branchy
//!    zero-skip triple loops, kept verbatim in `start_nn::array::reference`)
//!    against the blocked scalar backend and, where the host supports
//!    AVX2+FMA, the SIMD backend; reported as GFLOP/s per shape.
//! 2. A full Transformer encoder layer, forward + backward — "current main"
//!    (zero-skip reference kernels, legacy per-head attention tape, a fresh
//!    graph each step) against the blocked scalar backend and the SIMD
//!    backend (fused [`Graph::mh_attention`] op, pooled reused graph),
//!    reported as tokens/sec. All paths run the same seed and must agree on
//!    the loss to 1e-4 at every step.
//!
//! Results land in `BENCH_kernels.json` at the repo root.
//!
//! Run: `cargo run -p start-bench --release --bin bench_kernels`
//!   (add `--write-floors` to regenerate `KERNEL_FLOORS.json` from this
//!   machine's measurements, at 0.6x so CI noise never trips a fresh floor)
//! CI smoke: `cargo run -p start-bench --release --bin bench_kernels -- --smoke`
//! (correctness on tiny shapes, then the perf-regression gate: per-kernel
//! speedup vs the reference loops must hold the committed
//! `KERNEL_FLOORS.json` figures minus 10% slack.)

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::array::{self, Array};
use start_nn::backend::{self, BackendKind};
use start_nn::graph::Graph;
use start_nn::layers::TransformerEncoderLayer;
use start_nn::params::{GradStore, ParamStore};
use start_nn::BufferPool;

// ---------------------------------------------------------------------------
// The "before" side: the pre-blocking zero-skip kernels preserved verbatim
// in `start_nn::array::reference`.

fn naive_matmul(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().0, b.shape().1);
    array::reference::matmul_into(a, b, &mut out);
    out
}

fn naive_matmul_bt(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().0, b.shape().0);
    array::reference::matmul_bt_into(a, b, &mut out);
    out
}

fn naive_matmul_at(a: &Array, b: &Array) -> Array {
    let mut out = Array::zeros(a.shape().1, b.shape().1);
    array::reference::matmul_at_into(a, b, &mut out);
    out
}

// ---------------------------------------------------------------------------

fn fill(rows: usize, cols: usize, seed: f32) -> Array {
    Array::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.61 + seed).sin())
}

fn max_abs_diff(a: &Array, b: &Array) -> f32 {
    a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Wall-time `f` enough times to exceed `window` seconds and return GFLOP/s.
fn gflops_windowed(flops_per_call: f64, window: f64, mut f: impl FnMut() -> Array) -> f64 {
    // Warmup + sanity.
    let out = f();
    assert!(out.all_finite(), "kernel produced non-finite values");
    let mut reps = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > window || reps >= 1 << 14 {
            return flops_per_call * f64::from(reps) / dt / 1e9;
        }
        reps *= 4;
    }
}

/// Run `f` with the process-global backend forced to `kind`, restoring the
/// previous selection after.
fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let prev = backend::set_backend(Some(kind));
    let out = f();
    backend::set_backend(prev);
    out
}

const KERNELS: [&str; 3] = ["matmul", "matmul_bt", "matmul_at"];

struct KernelRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    gflops_reference: f64,
    gflops_scalar: f64,
    gflops_simd: Option<f64>,
}

impl KernelRow {
    fn speedup(&self, kind: BackendKind) -> f64 {
        match kind {
            BackendKind::Scalar => self.gflops_scalar / self.gflops_reference,
            BackendKind::Simd => self.gflops_simd.map_or(0.0, |g| g / self.gflops_reference),
        }
    }
}

fn bench_kernel_shapes(shapes: &[(usize, usize, usize)], window: f64) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &(m, k, n) in shapes {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        for kernel in KERNELS {
            // Inputs are rebuilt per call inside `run_kernel`; build them
            // once out here so the timed closure measures only the kernel.
            let (a, b, bt, at) =
                (fill(m, k, 0.1), fill(k, n, 0.7), fill(n, k, 0.7), fill(k, m, 0.1));
            let timed: Box<dyn FnMut() -> Array> = match kernel {
                "matmul" => Box::new(|| array::matmul(&a, &b)),
                "matmul_bt" => Box::new(|| array::matmul_bt(&a, &bt)),
                _ => Box::new(|| array::matmul_at(&at, &b)),
            };
            let mut timed = timed;
            let reference = match kernel {
                "matmul" => gflops_windowed(flops, window, || naive_matmul(&a, &b)),
                "matmul_bt" => gflops_windowed(flops, window, || naive_matmul_bt(&a, &bt)),
                _ => gflops_windowed(flops, window, || naive_matmul_at(&at, &b)),
            };
            let scalar =
                with_backend(BackendKind::Scalar, || gflops_windowed(flops, window, &mut timed));
            let simd = backend::simd().map(|_| {
                with_backend(BackendKind::Simd, || gflops_windowed(flops, window, &mut timed))
            });
            rows.push(KernelRow {
                kernel,
                m,
                k,
                n,
                gflops_reference: reference,
                gflops_scalar: scalar,
                gflops_simd: simd,
            });
        }
    }
    rows
}

/// Assert both shipped backends agree with the naive references on one shape.
fn check_kernels_agree(m: usize, k: usize, n: usize) {
    let mut kinds = vec![BackendKind::Scalar];
    if backend::simd().is_some() {
        kinds.push(BackendKind::Simd);
    }
    for kind in kinds {
        with_backend(kind, || {
            let a = fill(m, k, 0.3);
            let b = fill(k, n, 0.9);
            let d = max_abs_diff(&naive_matmul(&a, &b), &array::matmul(&a, &b));
            assert!(d <= 1e-4, "{kind:?} matmul diverged from reference: {d}");
            let bt = fill(n, k, 0.9);
            let d = max_abs_diff(&naive_matmul_bt(&a, &bt), &array::matmul_bt(&a, &bt));
            assert!(d <= 1e-4, "{kind:?} matmul_bt diverged from reference: {d}");
            let at = fill(k, m, 0.3);
            let d = max_abs_diff(&naive_matmul_at(&at, &b), &array::matmul_at(&at, &b));
            assert!(d <= 1e-4, "{kind:?} matmul_at diverged from reference: {d}");
        });
    }
}

// ---------------------------------------------------------------------------
// KERNEL_FLOORS.json: the checked-in perf-regression floors the CI smoke
// gate enforces, mirroring the `start-analysis plan --check` memory gate.

const FLOORS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../KERNEL_FLOORS.json");

/// Gate slack: a measured speedup may undershoot its floor by this fraction
/// before the gate fails (CI machines are noisy; real regressions are not
/// 10% events — the SIMD kernels sit 2–30x above the reference loops).
const FLOOR_SLACK: f64 = 0.10;

struct Floor {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    backend: BackendKind,
    min_speedup: f64,
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the floors file: one `{"kernel": ...}` object per line.
fn parse_floors(json: &str) -> Vec<Floor> {
    json.lines()
        .filter_map(|line| {
            let kernel = json_str_field(line, "kernel")?;
            let backend = match json_str_field(line, "backend")?.as_str() {
                "scalar" => BackendKind::Scalar,
                "simd" => BackendKind::Simd,
                other => panic!("KERNEL_FLOORS.json: unknown backend {other:?}"),
            };
            Some(Floor {
                kernel,
                m: json_num_field(line, "m")? as usize,
                k: json_num_field(line, "k")? as usize,
                n: json_num_field(line, "n")? as usize,
                backend,
                min_speedup: json_num_field(line, "min_speedup_vs_reference")?,
            })
        })
        .collect()
}

/// The CI perf-regression gate: re-measure every floored (kernel, shape,
/// backend) with short timing windows and fail on any speedup-vs-reference
/// more than [`FLOOR_SLACK`] below its committed floor.
fn check_floors() {
    let json = std::fs::read_to_string(FLOORS_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {FLOORS_PATH}: {e}\n\
             regenerate with: cargo run -p start-bench --release --bin bench_kernels -- --write-floors"
        )
    });
    let floors = parse_floors(&json);
    assert!(!floors.is_empty(), "KERNEL_FLOORS.json contains no floor entries");

    let simd_available = backend::simd().is_some();
    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();
    for f in &floors {
        if f.backend == BackendKind::Simd && !simd_available {
            skipped += 1;
            continue;
        }
        let flops = 2.0 * f.m as f64 * f.k as f64 * f.n as f64;
        // Short windows keep the whole gate around a second; the floors are
        // set far enough below real throughput that this noise is absorbed.
        // Inputs are built once so both sides time only the kernel.
        let window = 0.02;
        let (a, b, bt, at) =
            (fill(f.m, f.k, 0.1), fill(f.k, f.n, 0.7), fill(f.n, f.k, 0.7), fill(f.k, f.m, 0.1));
        let (reference, current) = match f.kernel.as_str() {
            "matmul" => (
                gflops_windowed(flops, window, || naive_matmul(&a, &b)),
                with_backend(f.backend, || {
                    gflops_windowed(flops, window, || array::matmul(&a, &b))
                }),
            ),
            "matmul_bt" => (
                gflops_windowed(flops, window, || naive_matmul_bt(&a, &bt)),
                with_backend(f.backend, || {
                    gflops_windowed(flops, window, || array::matmul_bt(&a, &bt))
                }),
            ),
            _ => (
                gflops_windowed(flops, window, || naive_matmul_at(&at, &b)),
                with_backend(f.backend, || {
                    gflops_windowed(flops, window, || array::matmul_at(&at, &b))
                }),
            ),
        };
        let speedup = current / reference;
        checked += 1;
        if speedup < f.min_speedup * (1.0 - FLOOR_SLACK) {
            failures.push(format!(
                "{} {}x{}x{} [{:?}]: speedup {:.2}x below floor {:.2}x (slack {:.0}%)",
                f.kernel,
                f.m,
                f.k,
                f.n,
                f.backend,
                speedup,
                f.min_speedup,
                FLOOR_SLACK * 100.0
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "kernel perf-regression gate failed:\n  {}",
        failures.join("\n  ")
    );
    println!(
        "  perf floors held: {checked} checked, {skipped} skipped \
         (simd {}available)",
        if simd_available { "" } else { "un" }
    );
}

fn write_floors(rows: &[KernelRow]) {
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"note\": \"perf-regression floors for bench_kernels --smoke: \
         speedup vs the zero-skip reference loops, set at 0.6x of a clean \
         measurement; the gate allows a further {:.0}% slack\",",
        FLOOR_SLACK * 100.0
    );
    let _ = writeln!(json, "  \"floors\": [");
    let mut entries = Vec::new();
    for r in rows {
        let mut push = |backend: &str, speedup: f64| {
            entries.push(format!(
                "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
                 \"backend\": \"{}\", \"min_speedup_vs_reference\": {:.2}}}",
                r.kernel,
                r.m,
                r.k,
                r.n,
                backend,
                (speedup * 0.6).max(0.5)
            ));
        };
        push("scalar", r.speedup(BackendKind::Scalar));
        if r.gflops_simd.is_some() {
            push("simd", r.speedup(BackendKind::Simd));
        }
    }
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(FLOORS_PATH, &json).expect("write KERNEL_FLOORS.json");
    println!("\n  wrote {FLOORS_PATH} ({} floors)", entries.len());
}

// ---------------------------------------------------------------------------

struct EncoderBench {
    t: usize,
    dim: usize,
    heads: usize,
    ffn_hidden: usize,
    steps: usize,
    tokens_per_sec_main: f64,
    tokens_per_sec_scalar: f64,
    tokens_per_sec_simd: Option<f64>,
    max_loss_diff: f32,
}

impl EncoderBench {
    /// The headline figure: best available backend over "current main".
    fn best_tokens_per_sec(&self) -> f64 {
        self.tokens_per_sec_simd.unwrap_or(self.tokens_per_sec_scalar)
    }

    fn speedup(&self) -> f64 {
        self.best_tokens_per_sec() / self.tokens_per_sec_main
    }
}

struct EncoderSetup {
    store: ParamStore,
    layer: TransformerEncoderLayer,
    x: Array,
    bias: Array,
}

fn encoder_setup(t: usize, dim: usize, heads: usize, ffn_hidden: usize) -> EncoderSetup {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let layer =
        TransformerEncoderLayer::new(&mut store, &mut rng, "enc", dim, heads, ffn_hidden, 0.0);
    let x = fill(t, dim, 0.2);
    let bias = Array::from_fn(t, t, |r, c| (r as f32 - c as f32) * 0.03);
    EncoderSetup { store, layer, x, bias }
}

/// One forward + backward through the encoder layer; returns the loss.
fn encoder_step(setup: &EncoderSetup, g: &mut Graph, fused: bool) -> f32 {
    let mut rng = StdRng::seed_from_u64(99);
    let x = g.input(setup.x.clone());
    let bias = g.input(setup.bias.clone());
    let y = if fused {
        setup.layer.forward(g, x, Some(bias), &mut rng)
    } else {
        setup.layer.forward_unfused(g, x, Some(bias), &mut rng)
    };
    let sq = g.mul(y, y);
    let loss = g.mean_all(sq);
    let mut grads = GradStore::new(&setup.store);
    g.backward(loss, &mut grads);
    g.value(loss).item()
}

fn bench_encoder(
    t: usize,
    dim: usize,
    heads: usize,
    ffn_hidden: usize,
    steps: usize,
) -> EncoderBench {
    let setup = encoder_setup(t, dim, heads, ffn_hidden);
    let simd_available = backend::simd().is_some();

    // The paths are timed in interleaved rounds and scored by their fastest
    // round, so slow-timer noise (frequency scaling, co-tenant interference
    // on shared machines) hits every side equally instead of whichever path
    // happened to run second.
    const ROUNDS: usize = 6;
    let chunk = steps.div_ceil(ROUNDS).max(1);
    let mut main_losses = Vec::new();
    let mut scalar_losses = Vec::new();
    let mut simd_losses = Vec::new();
    let mut best_main = f64::INFINITY;
    let mut best_scalar = f64::INFINITY;
    let mut best_simd = f64::INFINITY;
    let mut pool = BufferPool::new();
    for _ in 0..ROUNDS {
        // "Current main": zero-skip reference kernels, per-head attention
        // tape, a fresh graph every step.
        array::set_reference_kernels(true);
        let t0 = Instant::now();
        for _ in 0..chunk {
            let mut g = Graph::new(&setup.store, true);
            main_losses.push(encoder_step(&setup, &mut g, false));
        }
        best_main = best_main.min(t0.elapsed().as_secs_f64());
        array::set_reference_kernels(false);

        // Blocked scalar backend: fused attention op, pooled reused graph.
        pool = with_backend(BackendKind::Scalar, || {
            let mut pool = pool;
            let t1 = Instant::now();
            for _ in 0..chunk {
                let mut g = Graph::with_pool(&setup.store, true, pool);
                scalar_losses.push(encoder_step(&setup, &mut g, true));
                pool = g.into_pool();
            }
            best_scalar = best_scalar.min(t1.elapsed().as_secs_f64());
            pool
        });

        // SIMD backend, same fused + pooled configuration.
        if simd_available {
            pool = with_backend(BackendKind::Simd, || {
                let mut pool = pool;
                let t2 = Instant::now();
                for _ in 0..chunk {
                    let mut g = Graph::with_pool(&setup.store, true, pool);
                    simd_losses.push(encoder_step(&setup, &mut g, true));
                    pool = g.into_pool();
                }
                best_simd = best_simd.min(t2.elapsed().as_secs_f64());
                pool
            });
        }
    }

    let mut max_loss_diff = 0.0f32;
    for (i, a) in main_losses.iter().enumerate() {
        assert!(a.is_finite(), "encoder loss went non-finite");
        for other in [&scalar_losses, &simd_losses] {
            if let Some(b) = other.get(i) {
                assert!(b.is_finite(), "encoder loss went non-finite");
                max_loss_diff = max_loss_diff.max((a - b).abs());
            }
        }
    }
    assert!(max_loss_diff <= 1e-4, "encoder losses diverged across backends: {max_loss_diff}");

    let tokens = (t * chunk) as f64;
    EncoderBench {
        t,
        dim,
        heads,
        ffn_hidden,
        steps: chunk * ROUNDS,
        tokens_per_sec_main: tokens / best_main,
        tokens_per_sec_scalar: tokens / best_scalar,
        tokens_per_sec_simd: simd_available.then(|| tokens / best_simd),
        max_loss_diff,
    }
}

/// CI pass: correctness on tiny shapes, then the perf-regression gate.
fn smoke() {
    check_kernels_agree(5, 7, 3);
    check_kernels_agree(8, 8, 8);

    let setup = encoder_setup(8, 16, 4, 32);
    let mut g1 = Graph::new(&setup.store, true);
    let unfused = encoder_step(&setup, &mut g1, false);
    let mut g2 = Graph::new(&setup.store, true);
    let fused = encoder_step(&setup, &mut g2, true);
    assert!(unfused.is_finite() && fused.is_finite(), "smoke losses must be finite");
    assert!(
        (unfused - fused).abs() <= 1e-5,
        "smoke: fused {fused} vs unfused {unfused} loss mismatch"
    );

    // Pooled reuse must reproduce the fresh-graph loss bitwise.
    let mut pool = BufferPool::new();
    for _ in 0..2 {
        let mut g = Graph::with_pool(&setup.store, true, pool);
        let pooled = encoder_step(&setup, &mut g, true);
        assert_eq!(pooled.to_bits(), fused.to_bits(), "pooled graph changed the loss");
        pool = g.into_pool();
    }

    check_floors();
    println!("bench_kernels --smoke: kernels agree, pooled reuse stable, perf floors held");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let write_floors_flag = std::env::args().any(|a| a == "--write-floors");

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let simd_name = backend::simd().map_or("unavailable", |b| b.name());
    println!("START reproduction — kernel throughput (cores: {cores}, simd: {simd_name})\n");

    check_kernels_agree(33, 65, 17);

    let shapes = [(64, 64, 64), (128, 256, 64), (256, 64, 256)];
    let rows = bench_kernel_shapes(&shapes, 0.08);
    for r in &rows {
        let simd = r.gflops_simd.map_or_else(|| "     n/a".to_string(), |g| format!("{g:8.2}"));
        println!(
            "  {:<10} {:>3}x{:<3}x{:<3}: ref {:6.2}  scalar {:6.2} ({:4.2}x)  simd {simd} ({:5.2}x) GFLOP/s",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.gflops_reference,
            r.gflops_scalar,
            r.speedup(BackendKind::Scalar),
            r.speedup(BackendKind::Simd),
        );
    }
    // No shape class may lose to the pre-blocking reference loops — the
    // dispatch thresholds exist precisely so small shapes fall back to the
    // cheapest kernel instead of paying packing overhead.
    for r in &rows {
        assert!(
            r.speedup(BackendKind::Scalar) >= 1.0,
            "{} {}x{}x{} scalar backend slower than reference: {:.3}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.speedup(BackendKind::Scalar)
        );
        if r.gflops_simd.is_some() {
            assert!(
                r.speedup(BackendKind::Simd) >= 1.0,
                "{} {}x{}x{} simd backend slower than reference: {:.3}x",
                r.kernel,
                r.m,
                r.k,
                r.n,
                r.speedup(BackendKind::Simd)
            );
        }
    }

    let enc = bench_encoder(256, 64, 4, 128, 30);
    println!(
        "\n  encoder layer T={} d={} h={} ffn={} ({} steps, fwd+bwd):",
        enc.t, enc.dim, enc.heads, enc.ffn_hidden, enc.steps
    );
    println!(
        "    main (zero-skip kernels, per-head tape, fresh graphs): {:8.0} tokens/s\n    \
         scalar backend (blocked kernels, fused op, pooled graph): {:8.0} tokens/s\n    \
         simd backend   (avx2+fma kernels, fused op, pooled graph): {} tokens/s\n    \
         speedup: {:.2}x (max loss diff {:.2e})",
        enc.tokens_per_sec_main,
        enc.tokens_per_sec_scalar,
        enc.tokens_per_sec_simd.map_or_else(|| "     n/a".to_string(), |t| format!("{t:8.0}")),
        enc.speedup(),
        enc.max_loss_diff
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_throughput\",");
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    let _ = writeln!(json, "  \"simd\": \"{simd_name}\",");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let simd = r.gflops_simd.map_or_else(|| "null".to_string(), |g| format!("{g:.3}"));
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"gflops_reference\": {:.3}, \"gflops_scalar\": {:.3}, \"gflops_simd\": {}, \
             \"scalar_speedup\": {:.3}, \"simd_speedup\": {:.3}}}{}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.gflops_reference,
            r.gflops_scalar,
            simd,
            r.speedup(BackendKind::Scalar),
            r.speedup(BackendKind::Simd),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"encoder_layer\": {{");
    let _ = writeln!(
        json,
        "    \"t\": {}, \"dim\": {}, \"heads\": {}, \"ffn_hidden\": {},",
        enc.t, enc.dim, enc.heads, enc.ffn_hidden
    );
    let _ = writeln!(json, "    \"steps\": {}, \"direction\": \"forward+backward\",", enc.steps);
    let _ = writeln!(json, "    \"tokens_per_sec_main\": {:.1},", enc.tokens_per_sec_main);
    let _ = writeln!(json, "    \"tokens_per_sec_scalar\": {:.1},", enc.tokens_per_sec_scalar);
    let _ = writeln!(
        json,
        "    \"tokens_per_sec_simd\": {},",
        enc.tokens_per_sec_simd.map_or_else(|| "null".to_string(), |t| format!("{t:.1}"))
    );
    let _ = writeln!(json, "    \"speedup_vs_main\": {:.3},", enc.speedup());
    let _ = writeln!(json, "    \"max_loss_diff\": {:.3e}", enc.max_loss_diff);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\n  wrote {path}");

    if write_floors_flag {
        write_floors(&rows);
    }
}
