//! Peak tape-memory benchmark for the static liveness planner.
//!
//! Two configurations are measured, each as one recorded pretrain shard
//! tape (forward + backward):
//!
//! 1. `standard_shard` — the deterministic `start_core::StandardShard`
//!    fixture, the graph the ≥30% planned-vs-baseline acceptance floor is
//!    defined on (also what `start-analysis plan --check` lints).
//! 2. `fig10_encoder` — the START encoder at the Fig. 10 experiment scale
//!    (`start_bench::Scale`, porto-mini dataset), i.e. the config whose
//!    efficiency the paper's Figure 10 studies.
//!
//! For each: the three static peaks from `MemoryPlan` (baseline / planned /
//! runtime — see `start_nn::liveness` for what each can and cannot
//! realize), the peak the runtime's byte accounting *actually* observed
//! with the plan on and off, pooled-run `zero_skips` counters, and a
//! bitwise loss comparison between the two modes.
//!
//! Results land in `BENCH_memory.json` at the repo root.
//!
//! Run: `cargo run -p start-bench --release --bin bench_memory`
//! CI smoke: `cargo run -p start-bench --release --bin bench_memory -- --smoke`
//! (standard shard only, asserts the floor + bitwise identity, no JSON).

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_bench::{porto_mini, start_config, Scale};
use start_core::{build_shard_loss, StandardShard, StartModel};
use start_nn::graph::Graph;
use start_nn::liveness::MemoryPlan;
use start_nn::params::{GradStore, ParamStore};
use start_nn::{BufferPool, NodeId};

struct Figures {
    label: &'static str,
    nodes: usize,
    tape_bytes: usize,
    baseline_peak_bytes: usize,
    planned_peak_bytes: usize,
    runtime_peak_bytes: usize,
    /// Peak observed by the graph's byte accounting, plan executed.
    actual_peak_bytes_plan_on: usize,
    /// Same with the plan disabled (buffers held until `reset`).
    actual_peak_bytes_plan_off: usize,
    loss_bitwise_identical: bool,
    pool_hits: u64,
    pool_misses: u64,
    pool_zero_skips: u64,
}

impl Figures {
    fn reduction(&self) -> f64 {
        1.0 - self.planned_peak_bytes as f64 / self.baseline_peak_bytes as f64
    }
}

/// Record the same tape twice — once plain, once planned over a pooled
/// graph reused for three steps (so the zero-skip counters see warm-pool
/// traffic) — and collect every figure.
fn measure<'s>(
    label: &'static str,
    store: &'s ParamStore,
    record: &dyn Fn(&mut Graph<'s>) -> NodeId,
) -> Figures {
    // Plan off: the pre-planner runtime, releases only at reset.
    let mut g_off = Graph::new(store, true);
    let loss_off = record(&mut g_off);
    let mut grads_off = GradStore::new(store);
    g_off.backward(loss_off, &mut grads_off);
    let loss_off_bits = g_off.value(loss_off).item().to_bits();
    let actual_off = g_off.memory_stats().peak_bytes;

    // Plan on, pooled, three steps: step 0 fills the pool, the rest reuse
    // it, so `zero_skips` reflects steady-state matmul-output traffic.
    let mut pool = BufferPool::new();
    let mut out = None;
    for _ in 0..3 {
        let mut g = Graph::with_pool(store, true, pool);
        let loss = record(&mut g);
        let plan = MemoryPlan::analyze(&g, loss);
        let mut grads = GradStore::new(store);
        g.backward_planned(loss, &mut grads, &plan);
        let stats = g.pool_stats();
        out = Some((plan, g.value(loss).item().to_bits(), g.memory_stats().peak_bytes, stats));
        pool = g.into_pool();
    }
    let (plan, loss_on_bits, actual_on, stats) = out.expect("three steps ran");

    Figures {
        label,
        nodes: plan.num_nodes(),
        tape_bytes: plan.tape_bytes(),
        baseline_peak_bytes: plan.baseline_peak_bytes(),
        planned_peak_bytes: plan.planned_peak_bytes(),
        runtime_peak_bytes: plan.runtime_peak_bytes(),
        actual_peak_bytes_plan_on: actual_on,
        actual_peak_bytes_plan_off: actual_off,
        loss_bitwise_identical: loss_on_bits == loss_off_bits,
        pool_hits: stats.hits,
        pool_misses: stats.misses,
        pool_zero_skips: stats.zero_skips,
    }
}

fn print_figures(f: &Figures) {
    let kib = |b: usize| b as f64 / 1024.0;
    println!("  {} ({} nodes):", f.label, f.nodes);
    println!("    tape bytes                 {:>10.1} KiB", kib(f.tape_bytes));
    println!("    baseline peak (no plan)    {:>10.1} KiB", kib(f.baseline_peak_bytes));
    println!("    planned peak (optimal)     {:>10.1} KiB", kib(f.planned_peak_bytes));
    println!("    runtime peak (realized)    {:>10.1} KiB", kib(f.runtime_peak_bytes));
    println!("    actual peak, plan on       {:>10.1} KiB", kib(f.actual_peak_bytes_plan_on));
    println!("    actual peak, plan off      {:>10.1} KiB", kib(f.actual_peak_bytes_plan_off));
    println!("    reduction planned/baseline {:>9.1}%", 100.0 * f.reduction());
    println!(
        "    pool: {} hits / {} misses / {} zero-fills skipped",
        f.pool_hits, f.pool_misses, f.pool_zero_skips
    );
    println!("    loss bitwise plan on == off: {}", f.loss_bitwise_identical);
}

fn check(f: &Figures) {
    assert!(
        f.planned_peak_bytes <= f.runtime_peak_bytes
            && f.runtime_peak_bytes <= f.baseline_peak_bytes,
        "{}: peaks must order planned <= runtime <= baseline",
        f.label
    );
    assert!(f.loss_bitwise_identical, "{}: plan changed the computed loss", f.label);
    assert!(
        f.actual_peak_bytes_plan_on < f.actual_peak_bytes_plan_off,
        "{}: the executed plan did not reduce the observed peak",
        f.label
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    println!("bench_memory: static memory planner, peak-live-bytes");
    println!("  building the standard pretrain shard fixture...");
    let fix = StandardShard::build();
    let std_figs = measure("standard_shard", &fix.model.store, &|g| fix.record(g).loss);
    print_figures(&std_figs);
    check(&std_figs);
    assert!(
        std_figs.reduction() >= 0.30,
        "standard shard planned peak is only {:.1}% below baseline (floor: 30%)",
        100.0 * std_figs.reduction()
    );

    if smoke {
        println!("bench_memory --smoke: ok");
        return;
    }

    let scale = Scale::from_env();
    println!("  building porto-mini at scale `{}` for the fig10 encoder...", scale.name);
    let ds = porto_mini(&scale);
    let model = StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 1234);
    let shard: Vec<usize> = (0..scale.batch_size.min(ds.train().len())).collect();
    let fig10_figs = measure("fig10_encoder", &model.store, &|g| {
        let mut rng = StdRng::seed_from_u64(7);
        build_shard_loss(&model, ds.train(), &ds.historical, g, &shard, &mut rng)
            .expect("fig10 shard must produce a loss")
            .loss
    });
    print_figures(&fig10_figs);
    check(&fig10_figs);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"memory_plan\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    for (i, f) in [&std_figs, &fig10_figs].iter().enumerate() {
        let _ = writeln!(json, "  \"{}\": {{", f.label);
        let _ = writeln!(json, "    \"nodes\": {},", f.nodes);
        let _ = writeln!(json, "    \"tape_bytes\": {},", f.tape_bytes);
        let _ = writeln!(json, "    \"baseline_peak_bytes\": {},", f.baseline_peak_bytes);
        let _ = writeln!(json, "    \"planned_peak_bytes\": {},", f.planned_peak_bytes);
        let _ = writeln!(json, "    \"runtime_peak_bytes\": {},", f.runtime_peak_bytes);
        let _ =
            writeln!(json, "    \"actual_peak_bytes_plan_on\": {},", f.actual_peak_bytes_plan_on);
        let _ =
            writeln!(json, "    \"actual_peak_bytes_plan_off\": {},", f.actual_peak_bytes_plan_off);
        let _ = writeln!(json, "    \"reduction_planned_vs_baseline\": {:.3},", f.reduction());
        let _ = writeln!(
            json,
            "    \"pool\": {{\"hits\": {}, \"misses\": {}, \"zero_skips\": {}}},",
            f.pool_hits, f.pool_misses, f.pool_zero_skips
        );
        let _ = writeln!(json, "    \"loss_bitwise_identical\": {}", f.loss_bitwise_identical);
        let _ = writeln!(json, "  }}{}", if i == 0 { "," } else { "" });
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memory.json");
    std::fs::write(path, &json).expect("write BENCH_memory.json");
    println!("\n  wrote {path}");
}
