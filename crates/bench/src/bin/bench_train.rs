//! Training-throughput benchmark for the data-parallel engine: pre-trains
//! the same START model at several worker counts and reports wall-clock,
//! throughput and the speedup over the sequential loop.
//!
//! Results land in `BENCH_train.json` at the repo root. The speedup is only
//! meaningful on a multi-core machine — the core count is recorded so
//! single-core numbers are not mistaken for an engine regression.
//!
//! Run: `cargo run -p start-bench --release --bin bench_train`

use std::fmt::Write as _;

use start_bench::{porto_mini, start_config, timed, Scale};
use start_core::{pretrain, PretrainConfig, StartModel};

struct Run {
    workers: usize,
    wall_secs: f64,
    steps: u64,
    trajs_per_sec: f64,
    final_loss: f32,
}

fn main() {
    let scale = Scale::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("START reproduction — training throughput (scale: {}, cores: {cores})\n", scale.name);
    let ds = porto_mini(&scale);

    let base = PretrainConfig {
        epochs: scale.pretrain_epochs,
        batch_size: scale.batch_size,
        max_steps_per_epoch: scale.pretrain_steps_per_epoch,
        base_lr: 5e-4,
        ..Default::default()
    };

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let cfg = PretrainConfig { workers, ..base.clone() };
        let mut model =
            StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 1234);
        let (report, t) = timed(|| pretrain(&mut model, ds.train(), &ds.historical, &cfg));
        let wall = t.as_secs_f64();
        let trajs = report.steps as f64 * cfg.batch_size as f64;
        println!(
            "  workers={workers}: {wall:.2}s, {} steps, {:.1} trajs/s, final loss {:.4}",
            report.steps,
            trajs / wall,
            report.final_loss()
        );
        runs.push(Run {
            workers,
            wall_secs: wall,
            steps: report.steps,
            trajs_per_sec: trajs / wall,
            final_loss: report.final_loss(),
        });
    }

    let seq = runs[0].wall_secs;
    let speedup4 = runs.iter().find(|r| r.workers == 4).map_or(f64::NAN, |r| seq / r.wall_secs);
    println!("\n  speedup workers=4 vs workers=1: {speedup4:.2}x on {cores} core(s)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"training_throughput\",");
    let _ = writeln!(json, "  \"dataset\": \"porto-mini\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    let _ = writeln!(json, "  \"epochs\": {},", base.epochs);
    let _ = writeln!(json, "  \"batch_size\": {},", base.batch_size);
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"wall_secs\": {:.3}, \"steps\": {}, \
             \"trajs_per_sec\": {:.2}, \"final_loss\": {:.6}}}{}",
            r.workers,
            r.wall_secs,
            r.steps,
            r.trajs_per_sec,
            r.final_loss,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_workers4_vs_1\": {speedup4:.3}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(path, &json).expect("write BENCH_train.json");
    println!("  wrote {path}");
}
