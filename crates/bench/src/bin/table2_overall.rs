//! Table II: overall performance of nine models on three downstream tasks,
//! for both datasets.
//!
//! Tasks per the paper: travel time estimation (MAE/MAPE/RMSE, fine-tuned),
//! trajectory classification (BJ: occupied binary — ACC/F1/AUC; Porto:
//! driver id multi-class — Micro-F1/Macro-F1/Recall@5, fine-tuned) and most
//! similar trajectory search (MR/HR@1/HR@5, zero-shot on the detour
//! benchmark with p_d = 0.2, t_d = 0.2).
//!
//! Run: `cargo run -p start-bench --release --bin table2_overall`

use std::collections::HashMap;

use start_bench::{
    bj_mini, dataset_node2vec, f3, porto_mini, timed, ModelKind, Runner, Scale, Table,
};
use start_eval::metrics::{
    accuracy, auc, f1_binary, hit_ratio, macro_f1, mean_rank, micro_f1, recall_at_k,
    regression_report, truth_ranks,
};
use start_traj::{build_benchmark, DetourConfig, TrajDataset, Trajectory};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Table II (scale: {})\n", scale.name);
    for (ds, is_bj) in [(bj_mini(&scale), true), (porto_mini(&scale), false)] {
        run_dataset(&ds, is_bj, &scale);
    }
    println!("Shape checks vs the paper: START should lead every column; Trembr should be the\nstrongest baseline family member; PIM-TF and Transformer should trail badly on MR.");
}

fn run_dataset(ds: &TrajDataset, is_bj: bool, scale: &Scale) {
    let name = &ds.city.name;
    println!("--- dataset {name}: {} train / {} test ---", ds.train().len(), ds.test().len());

    // Detour benchmark for the zero-shot similarity task.
    let nq = scale.num_queries.min(ds.test().len() / 11);
    let bench = build_benchmark(&ds.city.net, ds.test(), nq, nq * 10, &DetourConfig::default());

    // Classification labels (test pool capped to the evaluation subset).
    let (train_labels, mut test_pool, mut test_labels, num_classes) = labels_for(ds, is_bj);
    test_pool.truncate(scale.eval_subset);
    test_labels.truncate(scale.eval_subset);
    let eta_test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let eta_truth: Vec<f32> = eta_test.iter().map(Trajectory::travel_time_secs).collect();

    let n2v = dataset_node2vec(ds, scale.dim);
    let header: Vec<&str> = if is_bj {
        vec!["Model", "MAE", "MAPE%", "RMSE", "ACC", "F1", "AUC", "MR", "HR@1", "HR@5"]
    } else {
        vec!["Model", "MAE", "MAPE%", "RMSE", "MicroF1", "MacroF1", "Rec@5", "MR", "HR@1", "HR@5"]
    };
    let mut table = Table::new(format!("Table II on {name}"), &header);

    for kind in ModelKind::table2_lineup(scale) {
        let mut runner = Runner::build(&kind, ds, scale, Some(&n2v));
        let model_name = runner.name();
        let (_, t_pre) = timed(|| runner.pretrain(ds, scale));
        let snapshot = runner.snapshot();

        // (1) Zero-shot similarity search.
        let q_embs = runner.encode(&bench.queries);
        let db_embs = runner.encode(&bench.database);
        let ranks = truth_ranks(&q_embs, &db_embs, |q| bench.truth(q));
        let (mr, hr1, hr5) = (mean_rank(&ranks), hit_ratio(&ranks, 1), hit_ratio(&ranks, 5));

        // (2) Travel time estimation.
        let preds = runner.eta(ds.train(), &eta_test, scale);
        let reg = regression_report(&eta_truth, &preds);

        // (3) Classification.
        runner.restore(&snapshot);
        let probs = runner.classify(ds.train(), &train_labels, num_classes, &test_pool, scale);
        let (c1, c2, c3) = if is_bj {
            (
                accuracy(&test_labels, &probs),
                f1_binary(&test_labels, &probs),
                auc(&test_labels, &probs),
            )
        } else {
            (
                micro_f1(&test_labels, &probs),
                macro_f1(&test_labels, &probs, num_classes),
                recall_at_k(&test_labels, &probs, 5),
            )
        };

        table.row(vec![
            model_name.to_string(),
            f3(reg.mae / 60.0), // minutes, like the paper's BJ numbers
            format!("{:.2}", reg.mape),
            f3(reg.rmse / 60.0),
            f3(c1),
            f3(c2),
            f3(c3),
            f3(mr),
            f3(hr1),
            f3(hr5),
        ]);
        eprintln!("  [{model_name}] pretrain {:.1}s", t_pre.as_secs_f32());
    }
    table.print();
}

/// (train labels, usable test pool, test labels, num classes).
fn labels_for(ds: &TrajDataset, is_bj: bool) -> (Vec<usize>, Vec<Trajectory>, Vec<usize>, usize) {
    if is_bj {
        let train_labels = ds.train().iter().map(|t| t.occupied as usize).collect();
        let test: Vec<Trajectory> = ds.test().to_vec();
        let test_labels = test.iter().map(|t| t.occupied as usize).collect();
        (train_labels, test, test_labels, 2)
    } else {
        // Dense driver-id classes from the training split; test trajectories
        // of unseen drivers are dropped (cannot be classified).
        let mut mapping: HashMap<u32, usize> = HashMap::new();
        for t in ds.train() {
            let next = mapping.len();
            mapping.entry(t.driver).or_insert(next);
        }
        let train_labels = ds.train().iter().map(|t| mapping[&t.driver]).collect();
        let test: Vec<Trajectory> =
            ds.test().iter().filter(|t| mapping.contains_key(&t.driver)).cloned().collect();
        let test_labels = test.iter().map(|t| mapping[&t.driver]).collect();
        (train_labels, test, test_labels, mapping.len())
    }
}
