//! Figure 9: parameter sensitivity — encoder layers L2, embedding size d,
//! and batch size N_b, measured by classification accuracy on BJ-mini.
//!
//! Run: `cargo run -p start-bench --release --bin fig9_sensitivity`

use start_bench::{bj_mini, start_config, ModelKind, Runner, Scale, Table};
use start_eval::metrics::accuracy;
use start_traj::Trajectory;

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 9 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let test_labels: Vec<usize> = test.iter().map(|t| t.occupied as usize).collect();
    let train_labels: Vec<usize> = ds.train().iter().map(|t| t.occupied as usize).collect();

    let acc_of = |scale: &Scale, f: &dyn Fn(&mut start_core::StartConfig, &mut Scale)| -> f32 {
        let mut sc = scale.clone();
        let mut cfg = start_config(scale);
        f(&mut cfg, &mut sc);
        cfg.dim = sc.dim;
        cfg.ffn_hidden = sc.dim;
        cfg.gat_heads = vec![sc.heads; cfg.gat_layers];
        cfg.encoder_heads = sc.heads;
        let kind = ModelKind::Start(Box::new(cfg));
        let mut runner = Runner::build(&kind, &ds, &sc, None);
        runner.pretrain(&ds, &sc);
        let probs = runner.classify(ds.train(), &train_labels, 2, &test, &sc);
        accuracy(&test_labels, &probs)
    };

    // (a) Encoder layers L2.
    let mut ta = Table::new("Fig 9(a): sensitivity to encoder layers L2", &["L2", "ACC"]);
    for l2 in [1usize, 2, 3, 4] {
        let acc = acc_of(&scale, &|c, _| c.encoder_layers = l2);
        eprintln!("  [L2={l2}] acc {acc:.3}");
        ta.row(vec![l2.to_string(), format!("{acc:.3}")]);
    }
    ta.print();

    // (b) Embedding size d.
    let mut tb = Table::new("Fig 9(b): sensitivity to embedding size d", &["d", "ACC"]);
    for d in [16usize, 32, 48, 64] {
        let acc = acc_of(&scale, &|_, s| s.dim = d);
        eprintln!("  [d={d}] acc {acc:.3}");
        tb.row(vec![d.to_string(), format!("{acc:.3}")]);
    }
    tb.print();

    // (c) Batch size N_b (contrastive negatives scale with it).
    let mut tc = Table::new("Fig 9(c): sensitivity to batch size N_b", &["N_b", "ACC"]);
    for nb in [4usize, 8, 16, 32] {
        let acc = acc_of(&scale, &|_, s| s.batch_size = nb);
        eprintln!("  [N_b={nb}] acc {acc:.3}");
        tc.row(vec![nb.to_string(), format!("{acc:.3}")]);
    }
    tc.print();
    println!("Shape checks vs the paper: accuracy rises then saturates/dips with d and L2\n(overfitting); very large batches do not help (too many hard negatives).");
}
