//! ANN scale sweep: HNSW vs brute force over synthetic embedding stores.
//!
//! The paper's efficiency story (Fig. 4/10) is a similarity-search
//! workload; ROADMAP item 2 scales it from the brute-force scan (exact,
//! O(N) per query) to the `start-ann` HNSW index (approximate, ~O(log N)).
//! This bench measures that trade at store sizes from 10k up: for each
//! size it builds both indexes over the *same* clustered synthetic
//! embeddings, takes the brute-force answers as recall ground truth, and
//! records build time, QPS, recall@10, and resident bytes into
//! `BENCH_ann.json`.
//!
//! The vectors are a cluster mixture (256 centres + noise), the shape
//! trajectory embeddings actually have — and a regime where the HNSW graph
//! has real structure to exploit, unlike adversarial uniform noise.
//!
//! Run: `cargo run -p start-bench --release --bin bench_search`
//!   (sweep 10k → 100k; add `--huge` to extend the sweep to 1M)
//! CI smoke: `cargo run -p start-bench --release --bin bench_search -- --smoke`
//!   (2k store: recall sanity + the typed dimension-mismatch contract,
//!   no JSON).

use std::fmt::Write as _;

use start_bench::timed;
use start_serve::{AnnError, EmbeddingStore, Hnsw, HnswConfig, Precision, VectorIndex};

const DIM: usize = 64;
const K: usize = 10;
const NUM_QUERIES: usize = 100;
const NUM_CENTERS: usize = 256;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f32 {
    ((splitmix(state) >> 11) as f64 / (1u64 << 53) as f64) as f32
}

/// `n` clustered vectors, flat row-major. Centres are shared across calls
/// with the same seed, so queries drawn with a different stream still live
/// in the same mixture.
fn synth_vectors(n: usize, centers: &[f32], stream_seed: u64) -> Vec<f32> {
    let mut state = stream_seed;
    let mut out = Vec::with_capacity(n * DIM);
    for _ in 0..n {
        let c = (splitmix(&mut state) as usize % NUM_CENTERS) * DIM;
        for j in 0..DIM {
            out.push(centers[c + j] + 0.25 * (unit(&mut state) - 0.5));
        }
    }
    out
}

fn synth_centers(seed: u64) -> Vec<f32> {
    let mut state = seed;
    (0..NUM_CENTERS * DIM).map(|_| 2.0 * (unit(&mut state) - 0.5)).collect()
}

fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::F16 => "f16",
        Precision::I8 => "int8",
    }
}

struct Point {
    n: usize,
    precision: Precision,
    brute_build_secs: f64,
    hnsw_build_secs: f64,
    brute_qps: f64,
    hnsw_qps: f64,
    recall_at_k: f64,
    hnsw_bytes: usize,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.hnsw_qps / self.brute_qps
    }
}

/// One sweep point: build both indexes over the same store, query both
/// with the same held-out queries, score recall against the exact answers.
fn run_point(n: usize, centers: &[f32], precision: Precision) -> Point {
    let data = synth_vectors(n, centers, 0x00da_7a00 + n as u64);
    let queries = synth_vectors(NUM_QUERIES, centers, 0x00c0_ffee + n as u64);

    let (brute, brute_build) = timed(|| {
        let mut store = EmbeddingStore::new(DIM);
        for (i, row) in data.chunks_exact(DIM).enumerate() {
            store.insert(i as u64, row).expect("brute insert");
        }
        store
    });
    let hnsw_cfg = HnswConfig::builder().precision(precision).build().expect("valid hnsw config");
    let (hnsw, hnsw_build) = timed(|| {
        let mut index = Hnsw::new(DIM, hnsw_cfg);
        for (i, row) in data.chunks_exact(DIM).enumerate() {
            index.insert(i as u64, row).expect("hnsw insert");
        }
        index
    });

    let (truth, brute_secs) = timed(|| {
        queries.chunks_exact(DIM).map(|q| brute.knn(q, K).expect("brute knn")).collect::<Vec<_>>()
    });
    let (answers, _) = timed(|| {
        queries.chunks_exact(DIM).map(|q| hnsw.knn(q, K).expect("hnsw knn")).collect::<Vec<_>>()
    });
    // Time the HNSW queries over enough repetitions to dominate clock
    // noise — answers are microseconds each at these sizes.
    let reps = 10;
    let (_, hnsw_secs) = timed(|| {
        for _ in 0..reps {
            for q in queries.chunks_exact(DIM) {
                std::hint::black_box(hnsw.knn(q, K).expect("hnsw knn"));
            }
        }
    });

    let mut hits = 0usize;
    let mut want = 0usize;
    for (t, a) in truth.iter().zip(&answers) {
        want += t.len();
        hits += a.iter().filter(|n| t.iter().any(|m| m.id == n.id)).count();
    }

    Point {
        n,
        precision,
        brute_build_secs: brute_build.as_secs_f64(),
        hnsw_build_secs: hnsw_build.as_secs_f64(),
        brute_qps: NUM_QUERIES as f64 / brute_secs.as_secs_f64(),
        hnsw_qps: (reps * NUM_QUERIES) as f64 / hnsw_secs.as_secs_f64(),
        recall_at_k: hits as f64 / want as f64,
        hnsw_bytes: hnsw.memory_bytes(),
    }
}

fn print_point(p: &Point) {
    println!(
        "  n={:>9} {:>4}  build {:>7.2}s  brute {:>9.1} q/s  hnsw {:>10.1} q/s  \
         speedup {:>7.1}x  recall@{K} {:.4}",
        p.n,
        precision_label(p.precision),
        p.hnsw_build_secs,
        p.brute_qps,
        p.hnsw_qps,
        p.speedup(),
        p.recall_at_k,
    );
}

/// One serving-precision measurement: a reduced-precision brute-force
/// store vs the exact f32 scan over the same rows and queries.
struct ServingPoint {
    precision: Precision,
    recall_at_k: f64,
    bytes: usize,
}

/// The reduced-precision serving path: build brute-force stores (the
/// `ServeConfig::precision` configuration) at each storage precision over
/// the same data, take the f32 store's answers as ground truth, and score
/// the quantized stores' recall@K plus resident embedding bytes.
fn run_serving_precision(n: usize, centers: &[f32]) -> (usize, Vec<ServingPoint>) {
    let data = synth_vectors(n, centers, 0x00da_7a00 + n as u64);
    let queries = synth_vectors(NUM_QUERIES, centers, 0x00c0_ffee + n as u64);

    let build = |precision: Precision| {
        let mut store = EmbeddingStore::with_precision(DIM, precision);
        for (i, row) in data.chunks_exact(DIM).enumerate() {
            store.insert(i as u64, row).expect("serving insert");
        }
        store
    };
    let exact = build(Precision::F32);
    let truth: Vec<_> =
        queries.chunks_exact(DIM).map(|q| exact.knn(q, K).expect("exact knn")).collect();

    let points = [Precision::F16, Precision::I8]
        .into_iter()
        .map(|precision| {
            let store = build(precision);
            let mut hits = 0usize;
            let mut want = 0usize;
            for (t, q) in truth.iter().zip(queries.chunks_exact(DIM)) {
                let a = store.knn(q, K).expect("quantized knn");
                want += t.len();
                hits += a.iter().filter(|x| t.iter().any(|m| m.id == x.id)).count();
            }
            ServingPoint {
                precision,
                recall_at_k: hits as f64 / want as f64,
                bytes: store.memory_bytes(),
            }
        })
        .collect();
    (exact.memory_bytes(), points)
}

fn print_serving(exact_bytes: usize, points: &[ServingPoint]) {
    println!("  serving precision (brute force, f32 truth, {exact_bytes} bytes at f32):");
    for p in points {
        println!(
            "    {:>4}  recall@{K} {:.4}  resident {:>10} bytes ({:.2}x smaller)",
            precision_label(p.precision),
            p.recall_at_k,
            p.bytes,
            exact_bytes as f64 / p.bytes as f64,
        );
    }
}

/// The smoke regression: a malformed vector is a typed error on every
/// backend, and the index keeps answering afterwards — the bug this PR
/// exists to fix stays fixed.
fn assert_dimension_mismatch_is_typed() {
    let mut brute = EmbeddingStore::new(DIM);
    let mut hnsw = Hnsw::new(DIM, HnswConfig::default());
    let good = vec![0.5f32; DIM];
    let bad = vec![0.5f32; DIM - 1];
    brute.insert(1, &good).expect("good brute insert");
    hnsw.insert(1, &good).expect("good hnsw insert");
    for err in [
        brute.insert(2, &bad).expect_err("bad brute insert must fail"),
        EmbeddingStore::knn(&brute, &bad, 1).expect_err("bad brute query must fail"),
        hnsw.insert(2, &bad).expect_err("bad hnsw insert must fail"),
        Hnsw::knn(&hnsw, &bad, 1).expect_err("bad hnsw query must fail"),
    ] {
        assert_eq!(err, AnnError::DimensionMismatch { expected: DIM, got: DIM - 1 });
    }
    assert_eq!(EmbeddingStore::knn(&brute, &good, 1).expect("brute survives")[0].id, 1);
    assert_eq!(Hnsw::knn(&hnsw, &good, 1).expect("hnsw survives")[0].id, 1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let huge = std::env::args().any(|a| a == "--huge");
    println!("bench_search: HNSW vs brute-force kNN scale sweep (dim {DIM}, k {K})");
    let centers = synth_centers(0x5eed_c0de);

    if smoke {
        assert_dimension_mismatch_is_typed();
        let p = run_point(2_000, &centers, Precision::F32);
        print_point(&p);
        assert!(p.recall_at_k >= 0.9, "smoke recall@{K} too low: {:.3}", p.recall_at_k);
        assert!(p.speedup() > 1.0, "HNSW slower than brute force at 2k: {:.2}x", p.speedup());
        let (exact_bytes, serving) = run_serving_precision(2_000, &centers);
        print_serving(exact_bytes, &serving);
        let f16 = serving
            .iter()
            .find(|s| s.precision == Precision::F16)
            .expect("serving sweep includes f16");
        assert!(
            f16.recall_at_k >= 0.99,
            "f16 serving recall@{K} is {:.4} (floor: 0.99)",
            f16.recall_at_k
        );
        println!("bench_search --smoke: ok (typed errors held, recall {:.3})", p.recall_at_k);
        return;
    }

    let mut sizes = vec![10_000usize, 30_000, 100_000];
    if huge {
        sizes.push(1_000_000);
    }
    let mut sweep = Vec::new();
    for &n in &sizes {
        sweep.push(run_point(n, &centers, Precision::F32));
        print_point(sweep.last().expect("just pushed"));
    }
    // One quantized point at the largest size: the memory/recall trade.
    let largest = *sizes.last().expect("non-empty sweep");
    let int8 = run_point(largest, &centers, Precision::I8);
    print_point(&int8);

    // The reduced-precision *serving* path (brute-force store, the
    // `ServeConfig::precision` configuration) at the largest size.
    let (exact_bytes, serving) = run_serving_precision(largest, &centers);
    print_serving(exact_bytes, &serving);
    let f16_serving =
        serving.iter().find(|s| s.precision == Precision::F16).expect("serving sweep includes f16");
    assert!(
        f16_serving.recall_at_k >= 0.99,
        "f16 serving recall@{K} at {largest} is {:.4} (floor: 0.99)",
        f16_serving.recall_at_k
    );

    let at_100k = sweep
        .iter()
        .find(|p| p.n == 100_000)
        .expect("sweep always contains the 100k acceptance point");
    assert!(
        at_100k.speedup() >= 20.0,
        "HNSW is only {:.1}x brute force at 100k (floor: 20x)",
        at_100k.speedup()
    );
    assert!(
        at_100k.recall_at_k >= 0.95,
        "HNSW recall@{K} at 100k is {:.4} (floor: 0.95)",
        at_100k.recall_at_k
    );

    let cfg = HnswConfig::default();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ann\",");
    let _ = writeln!(json, "  \"dim\": {DIM},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"queries\": {NUM_QUERIES},");
    let _ = writeln!(
        json,
        "  \"hnsw\": {{\"m\": {}, \"ef_construction\": {}, \"ef_search\": {}}},",
        cfg.m, cfg.ef_construction, cfg.ef_search
    );
    let _ = writeln!(
        json,
        "  \"machine_cores\": {},",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let _ = writeln!(json, "  \"sweep\": [");
    let points: Vec<&Point> = sweep.iter().chain(std::iter::once(&int8)).collect();
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"n\": {},", p.n);
        let _ = writeln!(json, "      \"precision\": \"{}\",", precision_label(p.precision));
        let _ = writeln!(json, "      \"brute_build_secs\": {:.4},", p.brute_build_secs);
        let _ = writeln!(json, "      \"hnsw_build_secs\": {:.4},", p.hnsw_build_secs);
        let _ = writeln!(json, "      \"brute_qps\": {:.1},", p.brute_qps);
        let _ = writeln!(json, "      \"hnsw_qps\": {:.1},", p.hnsw_qps);
        let _ = writeln!(json, "      \"speedup_vs_brute\": {:.2},", p.speedup());
        let _ = writeln!(json, "      \"recall_at_10\": {:.4},", p.recall_at_k);
        let _ = writeln!(json, "      \"hnsw_bytes\": {}", p.hnsw_bytes);
        let _ = writeln!(json, "    }}{}", if i + 1 < points.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serving_precision\": {{");
    let _ = writeln!(json, "    \"n\": {largest},");
    let _ = writeln!(json, "    \"index\": \"brute_force\",");
    let _ = writeln!(json, "    \"f32_bytes\": {exact_bytes},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, s) in serving.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"precision\": \"{}\", \"recall_at_10\": {:.4}, \"bytes\": {}}}{}",
            precision_label(s.precision),
            s.recall_at_k,
            s.bytes,
            if i + 1 < serving.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"floors\": {{\"f16_recall_at_10\": 0.99}}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"speedup_at_100k\": {:.2}, \"recall_at_10_at_100k\": {:.4}, \
         \"floors\": {{\"speedup\": 20.0, \"recall\": 0.95}}}}",
        at_100k.speedup(),
        at_100k.recall_at_k
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ann.json");
    std::fs::write(path, &json).expect("write BENCH_ann.json");
    println!("\n  wrote {path}");
}
