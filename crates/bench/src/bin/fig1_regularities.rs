//! Figure 1: temporal regularities and travel semantics in the (synthetic)
//! trajectory data — the paper's motivating statistics.
//!
//! (a) road visit-frequency skew, (b) hourly trajectory counts over a week,
//! (c) travel-time distribution of one road at different hours.
//!
//! Run: `cargo run -p start-bench --release --bin fig1_regularities`

use start_bench::{bj_mini, Scale, Table};
use start_roadnet::SegmentId;
use start_traj::{hour_of_day, is_weekend};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 1 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);

    // (a) Visit-frequency skew across roads.
    let mut visits: Vec<u64> =
        (0..ds.num_segments()).map(|i| ds.transfer.visit_count(SegmentId(i as u32))).collect();
    visits.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = visits.iter().sum();
    let top10 = visits.iter().take(visits.len() / 10).sum::<u64>() as f64 / total as f64;
    let mut ta = Table::new(
        "Fig 1(a): trajectory frequencies across roads (skew)",
        &["decile of roads", "share of visits"],
    );
    let decile = visits.len() / 10;
    for d in 0..10 {
        let share: u64 = visits[d * decile..((d + 1) * decile).min(visits.len())].iter().sum();
        ta.row(vec![
            format!("{}–{}%", d * 10, d * 10 + 10),
            format!("{:.1}%", 100.0 * share as f64 / total as f64),
        ]);
    }
    ta.row(vec!["gini".into(), format!("{:.3}", ds.transfer.visit_gini())]);
    ta.print();
    println!(
        "Shape check: top-10% roads take {:.0}% of all visits (paper: arterials dominate).\n",
        top10 * 100.0
    );

    // (b) Periodic pattern: trajectory counts per hour, weekday vs weekend.
    let mut weekday = [0usize; 24];
    let mut weekend = [0usize; 24];
    for t in &ds.split.trajectories {
        let h = hour_of_day(t.departure()) as usize % 24;
        if is_weekend(t.departure()) {
            weekend[h] += 1;
        } else {
            weekday[h] += 1;
        }
    }
    let mut tb = Table::new(
        "Fig 1(b): periodic patterns of urban traffic (#departures per hour)",
        &["hour", "weekday", "weekend"],
    );
    for h in 0..24 {
        tb.row(vec![format!("{h:02}:00"), weekday[h].to_string(), weekend[h].to_string()]);
    }
    tb.print();
    let rush = weekday[8] + weekday[18];
    let night = weekday[2] + weekday[3];
    println!("Shape check: weekday rush hours (8h+18h = {rush}) >> night (2h+3h = {night}).\n");

    // (c) Time-interval distribution: travel time of the busiest road by hour.
    let busiest = (0..ds.num_segments() as u32)
        .max_by_key(|&i| ds.transfer.visit_count(SegmentId(i)))
        .map(SegmentId)
        .expect("non-empty network");
    let mut sums = [0.0f64; 24];
    let mut counts = [0usize; 24];
    for t in &ds.split.trajectories {
        for i in 0..t.roads.len() {
            if t.roads[i] != busiest {
                continue;
            }
            let exit = if i + 1 < t.roads.len() { t.times[i + 1] } else { t.arrival };
            let h = hour_of_day(t.times[i]) as usize % 24;
            sums[h] += (exit - t.times[i]) as f64;
            counts[h] += 1;
        }
    }
    let mut tc = Table::new(
        "Fig 1(c): irregular time intervals (mean travel time of busiest road, s)",
        &["hour", "mean travel time (s)", "n"],
    );
    for h in 0..24 {
        let mean = if counts[h] > 0 { sums[h] / counts[h] as f64 } else { f64::NAN };
        tc.row(vec![format!("{h:02}:00"), format!("{mean:.1}"), counts[h].to_string()]);
    }
    tc.print();
    println!("Shape check: the same road is slower at rush hours than at night — the irregular-interval signal TAT-Enc consumes.");
}
