//! Figure 6: performance as the training-set size varies — pre-trained START
//! vs the No-Pre-train (purely supervised) variant, on ETA MAPE and
//! classification accuracy.
//!
//! Run: `cargo run -p start-bench --release --bin fig6_train_size`

use start_bench::{bj_mini, ModelKind, Runner, Scale, Table};
use start_eval::metrics::{accuracy, mape};
use start_traj::Trajectory;

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 6 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let eta_truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();
    let cls_truth: Vec<usize> = test.iter().map(|t| t.occupied as usize).collect();

    let full = ds.train().len();
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let mut table = Table::new(
        "Fig 6: performance when train size varies (BJ-mini)",
        &[
            "train size",
            "ETA MAPE (pretrain)",
            "ETA MAPE (no pretrain)",
            "ACC (pretrain)",
            "ACC (no pretrain)",
        ],
    );

    for frac in fractions {
        let n = ((full as f64 * frac) as usize).max(scale.batch_size * 2);
        let train = &ds.train()[..n.min(full)];
        let labels: Vec<usize> = train.iter().map(|t| t.occupied as usize).collect();

        let mut row = vec![n.to_string()];
        let mut eta_cells = Vec::new();
        let mut acc_cells = Vec::new();
        for pretrained in [true, false] {
            let mut runner = Runner::build(&ModelKind::start(&scale), &ds, &scale, None);
            if pretrained {
                // Pre-training also sees only the reduced split, as in Fig. 6.
                let sub = reduced_dataset(&ds, n.min(full));
                runner.pretrain(&sub, &scale);
            }
            let snapshot = runner.snapshot();
            let preds = runner.eta(train, &test, &scale);
            eta_cells.push(format!("{:.2}", mape(&eta_truth, &preds)));
            runner.restore(&snapshot);
            let probs = runner.classify(train, &labels, 2, &test, &scale);
            acc_cells.push(format!("{:.3}", accuracy(&cls_truth, &probs)));
            eprintln!("  [n={n} pretrain={pretrained}] done");
        }
        row.extend(eta_cells);
        row.extend(acc_cells);
        table.row(row);
    }
    table.print();
    println!("Shape checks vs the paper: both improve with more data; the pre-trained model wins\nat every size, with the largest margin at the smallest size.");
}

/// A copy of the dataset whose training split is truncated to `n`
/// trajectories (eval/test untouched).
fn reduced_dataset(ds: &start_traj::TrajDataset, n: usize) -> start_traj::TrajDataset {
    let mut trajectories: Vec<Trajectory> = ds.train()[..n].to_vec();
    let train_end = trajectories.len();
    trajectories.extend_from_slice(ds.eval());
    let eval_end = trajectories.len();
    trajectories.extend_from_slice(ds.test());
    start_traj::TrajDataset {
        city: ds.city.clone(),
        split: start_traj::SplitDataset {
            trajectories,
            train_end,
            eval_end,
            stats: ds.split.stats.clone(),
        },
        transfer: ds.transfer.clone(),
        historical: ds.historical.clone(),
    }
}
