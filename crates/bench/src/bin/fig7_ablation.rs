//! Figure 7: ablation study — every sub-module of START removed or replaced,
//! on both datasets. One metric per task, as in the paper: ETA MAPE,
//! classification ACC, and similarity-search mean rank.
//!
//! Variants (all switches on `StartConfig`):
//!   TPE-GAT:   w/o TPE-GAT, w/ Node2vec, w/o TransProb
//!   TAT-Enc:   w/o Time Emb, w/o Time interval, w/ Hop, w/o Log, w/o Adaptive
//!   SSL tasks: w/o Mask, w/o Contra
//!
//! Run: `cargo run -p start-bench --release --bin fig7_ablation`

use start_bench::{
    bj_mini, dataset_node2vec, porto_mini, start_config, ModelKind, Runner, Scale, Table,
};
use start_core::{IntervalMode, RoadEncoder, StartConfig};
use start_eval::metrics::{accuracy, mape, mean_rank, micro_f1, truth_ranks};
use start_traj::{build_benchmark, DetourConfig, TrajDataset, Trajectory};

fn variants(scale: &Scale) -> Vec<(&'static str, StartConfig)> {
    let base = start_config(scale);
    let mut out: Vec<(&'static str, StartConfig)> = vec![("START", base.clone())];
    let mut v = |name: &'static str, f: &dyn Fn(&mut StartConfig)| {
        let mut c = base.clone();
        f(&mut c);
        out.push((name, c));
    };
    v("w/o TPE-GAT", &|c| c.road_encoder = RoadEncoder::RandomEmbedding);
    v("w/ Node2vec", &|c| c.road_encoder = RoadEncoder::Node2VecEmbedding);
    v("w/o TransProb", &|c| c.road_encoder = RoadEncoder::GatNoTransProb);
    v("w/o Time Emb", &|c| c.use_time_embedding = false);
    v("w/o Time interval", &|c| c.interval_mode = IntervalMode::None);
    v("w/ Hop", &|c| c.interval_mode = IntervalMode::Hop);
    v("w/o Log", &|c| c.use_log_decay = false);
    v("w/o Adaptive", &|c| c.use_adaptive_interval = false);
    v("w/o Mask", &|c| c.use_mask_loss = false);
    v("w/o Contra", &|c| c.use_contrastive_loss = false);
    out
}

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 7 (scale: {})\n", scale.name);
    for (ds, is_bj) in [(bj_mini(&scale), true), (porto_mini(&scale), false)] {
        run(&ds, is_bj, &scale);
    }
    println!("Shape checks vs the paper: every ablation hurts at least one metric; w/ Hop worse\nthan w/o Time interval; w/o Log worse than w/o Time interval; w/ Node2vec worse than\nw/o TransProb (features matter beyond structure).");
}

fn run(ds: &TrajDataset, is_bj: bool, scale: &Scale) {
    let name = &ds.city.name;
    let nq = scale.num_queries.min(ds.test().len() / 11);
    let bench = build_benchmark(&ds.city.net, ds.test(), nq, nq * 10, &DetourConfig::default());
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let eta_truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();
    let (train_labels, test_labels, classes): (Vec<usize>, Vec<usize>, usize) = if is_bj {
        (
            ds.train().iter().map(|t| t.occupied as usize).collect(),
            test.iter().map(|t| t.occupied as usize).collect(),
            2,
        )
    } else {
        // Occupied is defined for Porto-mini too; using it keeps the ablation
        // grid cheap while still exercising classification.
        (
            ds.train().iter().map(|t| t.occupied as usize).collect(),
            test.iter().map(|t| t.occupied as usize).collect(),
            2,
        )
    };
    let n2v = dataset_node2vec(ds, scale.dim);

    let metric_name = if is_bj { "ACC" } else { "MicroF1" };
    let mut table = Table::new(
        format!("Fig 7 ablations on {name}"),
        &["Variant", "ETA MAPE", metric_name, "Similarity MR"],
    );
    for (vname, cfg) in variants(scale) {
        let kind = ModelKind::Start(Box::new(cfg));
        let mut runner = Runner::build(&kind, ds, scale, Some(&n2v));
        runner.pretrain(ds, scale);
        let snapshot = runner.snapshot();

        let q = runner.encode(&bench.queries);
        let db = runner.encode(&bench.database);
        let mr = mean_rank(&truth_ranks(&q, &db, |i| bench.truth(i)));

        let preds = runner.eta(ds.train(), &test, scale);
        let eta = mape(&eta_truth, &preds);

        runner.restore(&snapshot);
        let probs = runner.classify(ds.train(), &train_labels, classes, &test, scale);
        let cls =
            if is_bj { accuracy(&test_labels, &probs) } else { micro_f1(&test_labels, &probs) };

        eprintln!("  [{vname}] done");
        table.row(vec![
            vname.to_string(),
            format!("{eta:.2}"),
            format!("{cls:.3}"),
            format!("{mr:.2}"),
        ]);
    }
    table.print();
}
