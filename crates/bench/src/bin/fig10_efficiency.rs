//! Figure 10: efficiency and scalability on Porto-mini.
//!
//! (a) inference time to embed N trajectories, per model;
//! (b) mean per-query cost of the most-similar search — deep models
//!     (embed + O(d) distance) vs classical O(L²) measures;
//! (c) mean rank of START vs the classical measures on the detour benchmark.
//!
//! Run: `cargo run -p start-bench --release --bin fig10_efficiency`

use start_bench::{dataset_node2vec, porto_mini, timed, ModelKind, Runner, Scale, Table};
use start_eval::classic::{dtw, edr, frechet, lcss, midpoints};
use start_eval::metrics::{mean_rank, truth_ranks};
use start_roadnet::Point;
use start_traj::{build_benchmark, DetourConfig, Trajectory};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 10 (scale: {})\n", scale.name);
    let ds = porto_mini(&scale);

    // ---- (a) inference time vs number of trajectories -------------------
    let sizes: Vec<usize> =
        [100usize, 200, 400].iter().map(|&s| s.min(ds.split.trajectories.len())).collect();
    let pool: Vec<Trajectory> =
        ds.split.trajectories.iter().take(*sizes.last().unwrap()).cloned().collect();

    let n2v = dataset_node2vec(&ds, scale.dim);
    let mut header = vec!["Model".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s} trajs (s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut ta = Table::new("Fig 10(a): inference time to embed trajectories", &header_refs);

    let mut start_runner: Option<Runner> = None;
    for kind in ModelKind::table2_lineup(&scale) {
        let mut runner = Runner::build(&kind, &ds, &scale, Some(&n2v));
        // Timing does not need a converged model; skip pre-training except
        // for START, which fig 10(c) reuses for ranking quality.
        if matches!(kind, ModelKind::Start(_)) {
            runner.pretrain(&ds, &scale);
        }
        let mut row = vec![runner.name().to_string()];
        for &s in &sizes {
            let (_, t) = timed(|| runner.encode(&pool[..s]));
            row.push(format!("{:.2}", t.as_secs_f32()));
        }
        ta.row(row);
        eprintln!("  [{}] timed", runner.name());
        if matches!(kind, ModelKind::Start(_)) {
            start_runner = Some(runner);
        }
    }
    ta.print();
    println!("Shape check: self-attention models embed faster than RNN seq2seq models (O(1) vs\nO(L) sequential steps); START pays a small TPE-GAT + interval-matrix overhead.\n");

    // ---- (b) per-query similarity search cost ---------------------------
    let start = start_runner.expect("START was built above");
    let nq = scale.num_queries.min(ds.test().len() / 11);
    let bench = build_benchmark(&ds.city.net, ds.test(), nq, nq * 10, &DetourConfig::default());
    let db_points: Vec<Vec<Point>> =
        bench.database.iter().map(|t| midpoints(&ds.city.net, t)).collect();
    let q_points: Vec<Vec<Point>> =
        bench.queries.iter().map(|t| midpoints(&ds.city.net, t)).collect();

    let mut tb = Table::new(
        "Fig 10(b): mean per-query most-similar-search cost (ms)",
        &["method", "ms/query", "DB size"],
    );
    // Deep model: embedding the query + database + distance scan.
    let (deep_ranks, t_deep) = timed(|| {
        let q = start.encode(&bench.queries);
        let db = start.encode(&bench.database);
        truth_ranks(&q, &db, |i| bench.truth(i))
    });
    tb.row(vec![
        "START (embed+O(d))".into(),
        format!("{:.2}", t_deep.as_secs_f32() * 1000.0 / nq as f32),
        bench.database.len().to_string(),
    ]);

    // Classical measures: full scan per query with O(L^2) comparisons.
    let classic: Vec<(&str, Box<dyn Fn(&[Point], &[Point]) -> f64>)> = vec![
        ("DTW", Box::new(dtw)),
        ("LCSS", Box::new(|a, b| lcss(a, b, 150.0))),
        ("Frechet", Box::new(frechet)),
        ("EDR", Box::new(|a, b| edr(a, b, 150.0))),
    ];
    let mut classic_ranks: Vec<(&str, Vec<usize>)> = Vec::new();
    for (cname, f) in &classic {
        let (ranks, t) = timed(|| {
            q_points
                .iter()
                .enumerate()
                .map(|(qi, qp)| {
                    let dists: Vec<f64> = db_points.iter().map(|dp| f(qp, dp)).collect();
                    let truth_d = dists[bench.truth(qi)];
                    dists
                        .iter()
                        .enumerate()
                        .filter(|(i, d)| *i != bench.truth(qi) && **d < truth_d)
                        .count()
                        + 1
                })
                .collect::<Vec<usize>>()
        });
        tb.row(vec![
            (*cname).into(),
            format!("{:.2}", t.as_secs_f32() * 1000.0 / nq as f32),
            bench.database.len().to_string(),
        ]);
        classic_ranks.push((cname, ranks));
        eprintln!("  [{cname}] timed");
    }
    tb.print();
    println!("Shape check: deep per-query cost is an order of magnitude under the O(L^2) scans\nand both grow linearly with database size.\n");

    // ---- (c) mean rank: START vs classical measures ----------------------
    let mut tc = Table::new("Fig 10(c): mean rank on the detour benchmark", &["method", "MR"]);
    tc.row(vec!["START".into(), format!("{:.2}", mean_rank(&deep_ranks))]);
    for (cname, ranks) in &classic_ranks {
        tc.row(vec![(*cname).into(), format!("{:.2}", mean_rank(ranks))]);
    }
    tc.print();
    println!("Shape check: START's MR is competitive with or better than the classical measures\nwhile being far cheaper per query.");
}
