//! Table I: dataset statistics after preprocessing.
//!
//! Run: `cargo run -p start-bench --release --bin table1_stats`

use start_bench::{bj_mini, geolife_mini, porto_mini, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Table I (scale: {})\n", scale.name);
    let bj = bj_mini(&scale);
    let porto = porto_mini(&scale);
    let geolife = geolife_mini();

    let mut table = Table::new(
        "Table I: statistics of the datasets after preprocessing",
        &["Dataset", "#Trajectory", "#Usr", "#RoadSegment", "train", "eval", "test"],
    );
    for ds in [&bj, &porto, &geolife] {
        let r = ds.table1_row();
        table.row(vec![
            r.name,
            r.num_trajectories.to_string(),
            r.num_users.to_string(),
            r.num_segments.to_string(),
            r.train.to_string(),
            r.eval.to_string(),
            r.test.to_string(),
        ]);
    }
    table.print();

    println!("Filter breakdown (BJ-mini): {:?}", bj.split.stats);
    println!("Filter breakdown (Porto-mini): {:?}", porto.split.stats);
    println!(
        "\nPaper shape check: BJ larger than Porto in both trajectories ({} > {}) and road segments ({} > {}).",
        bj.split.stats.kept,
        porto.split.stats.kept,
        bj.num_segments(),
        porto.num_segments()
    );
}
