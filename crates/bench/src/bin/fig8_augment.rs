//! Figure 8: the 4x4 grid of contrastive data-augmentation pairs, measured
//! by downstream ETA MAPE on BJ-mini (lower = better, as in the paper's
//! heat map).
//!
//! Run: `cargo run -p start-bench --release --bin fig8_augment`

use start_bench::{bj_mini, start_config, ModelKind, Runner, Scale, Table};
use start_eval::metrics::mape;
use start_traj::{Augmentation, Trajectory};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 8 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();

    let augs = Augmentation::ALL;
    let short = |a: Augmentation| match a {
        Augmentation::Trim => "Trim",
        Augmentation::TemporalShift => "Shift",
        Augmentation::Mask => "Mask",
        Augmentation::Dropout => "Drop",
    };
    let mut header = vec!["pair"];
    header.extend(augs.iter().map(|&a| short(a)));
    let mut table = Table::new("Fig 8: ETA MAPE for augmentation pairs (BJ-mini)", &header);

    // The grid is symmetric: compute the upper triangle and mirror it.
    let mut grid = [[f32::NAN; 4]; 4];
    for i in 0..4 {
        for j in i..4 {
            let mut cfg = start_config(&scale);
            cfg.augmentations = (augs[i], augs[j]);
            let kind = ModelKind::Start(Box::new(cfg));
            let mut runner = Runner::build(&kind, &ds, &scale, None);
            runner.pretrain(&ds, &scale);
            let preds = runner.eta(ds.train(), &test, &scale);
            let m = mape(&truth, &preds);
            grid[i][j] = m;
            grid[j][i] = m;
            eprintln!("  [{} + {}] MAPE {m:.2}", short(augs[i]), short(augs[j]));
        }
    }
    for i in 0..4 {
        let mut row = vec![short(augs[i]).to_string()];
        for j in 0..4 {
            row.push(format!("{:.2}", grid[i][j]));
        }
        table.row(row);
    }
    table.print();
    println!("Shape check vs the paper: Temporal Shifting and Road Segments Mask pairs should be\namong the best cells (temporal augmentation matters); Dropout is a solid cheap option.");
}
