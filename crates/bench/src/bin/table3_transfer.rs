//! Table III: transferring pre-trained models across datasets to the small
//! Geolife-mini set (ETA on Car/Taxi trips; 4-way transport-mode
//! classification).
//!
//! Rows: No-Pre-train Geolife, Pre-train Geolife, Porto-START, BJ-START,
//! Porto-Trembr, BJ-Trembr. TPE-GAT parameters are road-count independent,
//! so START transfers across heterogeneous road networks; Trembr's embedding
//! table does not (only shape-matching tensors are copied).
//!
//! Run: `cargo run -p start-bench --release --bin table3_transfer`

use start_bench::{bj_mini, geolife_mini, porto_mini, ModelKind, Runner, Scale, Table};
use start_eval::metrics::{macro_f1, micro_f1, recall_at_k, regression_report};
use start_traj::{TrajDataset, Trajectory, TravelMode};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Table III (scale: {})\n", scale.name);

    let geolife = geolife_mini();
    let bj = bj_mini(&scale);
    let porto = porto_mini(&scale);
    println!(
        "Geolife-mini: {} trajectories over the BJ road network ({} segments); Porto has a heterogeneous network ({} segments).\n",
        geolife.split.stats.kept,
        geolife.num_segments(),
        porto.num_segments()
    );

    let mut table = Table::new(
        "Table III: transfer to Geolife-mini",
        &["Model", "MAE(min)", "MAPE%", "RMSE(min)", "MicroF1", "MacroF1", "Recall@2"],
    );

    // (1) START trained directly on Geolife, without / with pre-training.
    {
        let mut no_pre = Runner::build(&ModelKind::start(&scale), &geolife, &scale, None);
        evaluate("No Pre-train Geolife", &mut no_pre, &geolife, &scale, &mut table);
    }
    {
        let mut pre = Runner::build(&ModelKind::start(&scale), &geolife, &scale, None);
        pre.pretrain(&geolife, &scale);
        evaluate("Pre-train Geolife", &mut pre, &geolife, &scale, &mut table);
    }

    // (2) START pre-trained on Porto / BJ, transferred to Geolife.
    for (src_name, src) in [("Porto-START", &porto), ("BJ-START", &bj)] {
        let mut source = Runner::build(&ModelKind::start(&scale), src, &scale, None);
        source.pretrain(src, &scale);
        let blob = source.snapshot();
        let mut target = Runner::build(&ModelKind::start(&scale), &geolife, &scale, None);
        // Shape-matching tensors transfer; TPE-GAT weights are road-count
        // independent, so the whole encoder moves across cities.
        target.restore(&blob);
        evaluate(src_name, &mut target, &geolife, &scale, &mut table);
    }

    // (3) Trembr transferred the same way (embedding tables do not match
    // across networks, so most of the first stage is lost).
    for (src_name, src) in [("Porto-Trembr", &porto), ("BJ-Trembr", &bj)] {
        let mut source = Runner::build(&ModelKind::Trembr, src, &scale, None);
        source.pretrain(src, &scale);
        let blob = source.snapshot();
        let mut target = Runner::build(&ModelKind::Trembr, &geolife, &scale, None);
        target.restore(&blob);
        evaluate(src_name, &mut target, &geolife, &scale, &mut table);
    }

    table.print();
    println!("Shape checks vs the paper: BJ-START > Porto-START > Pre-train Geolife > No Pre-train;\ntransferred Trembr should be the weakest (seq2seq does not transfer).");
}

fn evaluate(
    name: &str,
    runner: &mut Runner,
    geolife: &TrajDataset,
    scale: &Scale,
    table: &mut Table,
) {
    let snapshot = runner.snapshot();

    // ETA on Car/Taxi trips only (as in the paper).
    let car_train: Vec<Trajectory> =
        geolife.train().iter().filter(|t| t.mode == TravelMode::CarTaxi).cloned().collect();
    let car_test: Vec<Trajectory> =
        geolife.test().iter().filter(|t| t.mode == TravelMode::CarTaxi).cloned().collect();
    let truth: Vec<f32> = car_test.iter().map(Trajectory::travel_time_secs).collect();
    let preds = runner.eta(&car_train, &car_test, scale);
    let reg = regression_report(&truth, &preds);

    // 4-way transport mode classification.
    runner.restore(&snapshot);
    let train_labels: Vec<usize> = geolife.train().iter().map(|t| t.mode.class_index()).collect();
    let test: Vec<Trajectory> = geolife.test().to_vec();
    let test_labels: Vec<usize> = test.iter().map(|t| t.mode.class_index()).collect();
    let probs = runner.classify(geolife.train(), &train_labels, 4, &test, scale);

    table.row(vec![
        name.to_string(),
        format!("{:.3}", reg.mae / 60.0),
        format!("{:.2}", reg.mape),
        format!("{:.3}", reg.rmse / 60.0),
        format!("{:.3}", micro_f1(&test_labels, &probs)),
        format!("{:.3}", macro_f1(&test_labels, &probs, 4)),
        format!("{:.3}", recall_at_k(&test_labels, &probs, 2)),
    ]);
    eprintln!("  [{name}] done");
}
