//! Serving-throughput benchmark: the micro-batched `EmbeddingService`
//! against legacy one-call-per-request encoding, at bitwise-identical
//! output.
//!
//! Three measurements over the same request stream:
//!
//! 1. **per_call** — the pre-service pattern: one `Encoder::encode` call
//!    per trajectory (what every caller of the old `encode_trajectories`
//!    entry point did per request). Each call pays the road-representation
//!    forward pass for a single trajectory.
//! 2. **service** — the same requests through `EmbeddingService` with the
//!    cache *off*: micro-batching amortizes the road representations over
//!    the batch and answers with bit-for-bit the per_call embeddings
//!    (asserted). The headline figure is this speedup, which the
//!    acceptance floor requires to be ≥ 2×.
//! 3. **service_cached** — a skewed request stream (each distinct
//!    trajectory asked for ~4×) with the cache *on*, reporting the hit
//!    rate and cached throughput.
//!
//! Workers and submitters share one machine, so the speedup is
//! batching + cache economics, not extra silicon: per_call is a single
//! thread and the service figure uses one encode worker too.
//!
//! Results land in `BENCH_serve.json` at the repo root.
//!
//! Run: `cargo run -p start-bench --release --bin bench_serve`
//! CI smoke: `cargo run -p start-bench --release --bin bench_serve -- --smoke`
//! (tiny stream, asserts bitwise identity, no JSON).

use start_sync::Arc;
use std::fmt::Write as _;
use std::time::Duration;

use start_bench::{bj_mini, start_config, timed, Scale};
use start_core::{EncodeOptions, StartModel};
use start_serve::{EmbeddingService, ServeConfig, ServiceStats};
use start_traj::Trajectory;

struct Figures {
    requests: usize,
    per_call_secs: f64,
    service_secs: f64,
    cached_requests: usize,
    cached_secs: f64,
    stats: ServiceStats,
    cached_stats: ServiceStats,
}

impl Figures {
    fn per_call_rps(&self) -> f64 {
        self.requests as f64 / self.per_call_secs
    }
    fn service_rps(&self) -> f64 {
        self.requests as f64 / self.service_secs
    }
    fn cached_rps(&self) -> f64 {
        self.cached_requests as f64 / self.cached_secs
    }
    fn speedup(&self) -> f64 {
        self.service_rps() / self.per_call_rps()
    }
}

fn serve_config(workers: usize, cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        queue_cap: 512,
        cache_capacity,
        ..ServeConfig::default()
    }
}

fn run(model: &Arc<StartModel>, requests: &[Trajectory]) -> Figures {
    // 1. Legacy shape: one encode call per request, single thread.
    let opts = EncodeOptions::default();
    let encoder = model.encoder();
    let (per_call_out, per_call_secs) = timed(|| {
        let mut out: Vec<Vec<f32>> = Vec::with_capacity(requests.len());
        for t in requests {
            let emb = encoder.encode(std::slice::from_ref(t), &opts).expect("per-call encode");
            out.extend(emb);
        }
        out
    });

    // 2. The service, cache off, one worker: same bits, batched schedule.
    let service = EmbeddingService::start(Arc::clone(model), serve_config(1, 0));
    let (served, service_secs) = timed(|| service.encode(requests).expect("service encode"));
    let stats = service.shutdown();
    assert_eq!(served.len(), per_call_out.len());
    for (i, (s, p)) in served.iter().zip(&per_call_out).enumerate() {
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(p) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {i}: service output diverged from per-call encode"
            );
        }
    }

    // 3. A skewed stream with the cache on: each distinct trajectory ~4×.
    let distinct = (requests.len() / 4).max(1);
    let cached_stream: Vec<Trajectory> =
        (0..requests.len()).map(|i| requests[(i * 7919) % distinct].clone()).collect();
    let service = EmbeddingService::start(Arc::clone(model), serve_config(1, 4096));
    let (cached_out, cached_secs) =
        timed(|| service.encode(&cached_stream).expect("cached service encode"));
    let cached_stats = service.shutdown();
    for (out, t_idx) in cached_out.iter().zip((0..requests.len()).map(|i| (i * 7919) % distinct)) {
        let reference = &per_call_out[t_idx];
        assert!(
            out.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached answer diverged from the per-call encode"
        );
    }

    Figures {
        requests: requests.len(),
        per_call_secs: per_call_secs.as_secs_f64(),
        service_secs: service_secs.as_secs_f64(),
        cached_requests: cached_stream.len(),
        cached_secs: cached_secs.as_secs_f64(),
        stats,
        cached_stats,
    }
}

fn print_figures(f: &Figures) {
    println!("  requests              : {}", f.requests);
    println!("  per-call encode       : {:.2} req/s ({:.3}s)", f.per_call_rps(), f.per_call_secs);
    println!("  service (cache off)   : {:.2} req/s ({:.3}s)", f.service_rps(), f.service_secs);
    println!("  speedup               : {:.2}x", f.speedup());
    println!(
        "  service queue wait    : p50 {}us  p99 {}us",
        f.stats.queue_wait.p50_us, f.stats.queue_wait.p99_us
    );
    println!(
        "  service batch encode  : p50 {}us  p99 {}us  mean batch {:.1}",
        f.stats.encode.p50_us,
        f.stats.encode.p99_us,
        f.stats.mean_batch_size()
    );
    println!(
        "  service (cache on)    : {:.2} req/s, hit rate {:.3}",
        f.cached_rps(),
        f.cached_stats.cache.hit_rate()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("bench_serve: micro-batched serving vs per-call encoding");

    let scale =
        if smoke { Scale { bj_trajectories: 260, ..Scale::quick() } } else { Scale::from_env() };
    println!("  building bj-mini at scale `{}`...", scale.name);
    let ds = bj_mini(&scale);
    let model =
        Arc::new(StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 77));
    let n = if smoke { 48 } else { 512.min(ds.test().len() + ds.train().len()) };
    let mut requests: Vec<Trajectory> = ds.test().to_vec();
    requests.extend_from_slice(ds.train());
    requests.truncate(n);

    let figs = run(&model, &requests);
    print_figures(&figs);

    if smoke {
        println!("bench_serve --smoke: ok (bitwise identity held)");
        return;
    }

    assert!(
        figs.speedup() >= 2.0,
        "service throughput is only {:.2}x the per-call baseline (floor: 2x)",
        figs.speedup()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"requests\": {},", figs.requests);
    let _ = writeln!(json, "  \"per_call_rps\": {:.2},", figs.per_call_rps());
    let _ = writeln!(json, "  \"service_rps\": {:.2},", figs.service_rps());
    let _ = writeln!(json, "  \"speedup_vs_per_call\": {:.3},", figs.speedup());
    let _ = writeln!(json, "  \"bitwise_identical_to_per_call\": true,");
    let _ = writeln!(
        json,
        "  \"queue_wait_us\": {{\"p50\": {}, \"p99\": {}}},",
        figs.stats.queue_wait.p50_us, figs.stats.queue_wait.p99_us
    );
    let _ = writeln!(
        json,
        "  \"batch_encode_us\": {{\"p50\": {}, \"p99\": {}}},",
        figs.stats.encode.p50_us, figs.stats.encode.p99_us
    );
    let _ = writeln!(json, "  \"mean_batch_size\": {:.2},", figs.stats.mean_batch_size());
    let _ = writeln!(json, "  \"cached\": {{");
    let _ = writeln!(json, "    \"requests\": {},", figs.cached_requests);
    let _ = writeln!(json, "    \"service_rps\": {:.2},", figs.cached_rps());
    let _ = writeln!(json, "    \"hit_rate\": {:.3}", figs.cached_stats.cache.hit_rate());
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\n  wrote {path}");
}
