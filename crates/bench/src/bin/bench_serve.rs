//! Serving benchmark: the micro-batched `EmbeddingService` and the sharded
//! `Router` against legacy one-call-per-request encoding, at
//! bitwise-identical output.
//!
//! Five measurements:
//!
//! 1. **per_call** — the pre-service pattern: one `Encoder::encode` call
//!    per trajectory (what every caller of the old deprecated entry points
//!    did per request). Each call pays the road-representation forward
//!    pass for a single trajectory.
//! 2. **service** — the same requests through `EmbeddingService` with the
//!    cache *off*: micro-batching amortizes the road representations over
//!    the batch and answers with bit-for-bit the per_call embeddings
//!    (asserted). The headline figure is this speedup, which the
//!    acceptance floor requires to be ≥ 2×.
//! 3. **service_cached** — a skewed request stream (each distinct
//!    trajectory asked for ~4×) with the cache *on*, reporting the hit
//!    rate and cached throughput.
//! 4. **router scaling** — a fixed-size working set served at 1, 2 and 4
//!    `Router` replicas, each replica's LRU cache sized at 40% of the
//!    working set. Fingerprint sharding makes the per-replica caches
//!    *partitions* (not copies), so aggregate capacity — and the hit rate
//!    on a uniform-random stream — grows with the replica count; on this
//!    single-core host that cache economics, not extra silicon, is the
//!    entire speedup. Floors: ≥ 1.7× at 2 replicas, ≥ 3× at 4. Each point
//!    runs as an isolated child process through the `start_serve::sweep`
//!    orchestrator (cold caches, own allocator arena), points run
//!    sequentially so timed children never contend for the core.
//! 5. **hot swap audit** — a request stream submitted to a 2-replica
//!    router with `Router::publish` fired mid-stream: every reply is
//!    audited via `wait_versioned` against offline references for *both*
//!    checkpoints — zero dropped, zero mismatched, every reply bitwise the
//!    output of exactly the version that tagged it.
//!
//! Results land in `BENCH_serve.json` at the repo root.
//!
//! Run: `cargo run -p start-bench --release --bin bench_serve`
//! CI smoke: `cargo run -p start-bench --release --bin bench_serve -- --smoke`
//! (tiny streams, asserts bitwise identity and a clean swap audit, runs a
//! two-point sweep without floors, no JSON).

use start_sync::Arc;
use std::fmt::Write as _;
use std::time::Duration;

use start_bench::{bj_mini, start_config, timed, Scale};
use start_core::{EncodeOptions, StartModel};
use start_serve::{
    emit_result, run_sweep, Router, RouterConfig, ServeConfig, ServiceStats, SweepJob,
};
use start_traj::Trajectory;

struct Figures {
    requests: usize,
    per_call_secs: f64,
    service_secs: f64,
    cached_requests: usize,
    cached_secs: f64,
    stats: ServiceStats,
    cached_stats: ServiceStats,
}

impl Figures {
    fn per_call_rps(&self) -> f64 {
        self.requests as f64 / self.per_call_secs
    }
    fn service_rps(&self) -> f64 {
        self.requests as f64 / self.service_secs
    }
    fn cached_rps(&self) -> f64 {
        self.cached_requests as f64 / self.cached_secs
    }
    fn speedup(&self) -> f64 {
        self.service_rps() / self.per_call_rps()
    }
}

fn serve_config(workers: usize, cache_capacity: usize) -> ServeConfig {
    ServeConfig::builder()
        .workers(workers)
        .max_batch(32)
        .max_wait(Duration::from_millis(1))
        .queue_cap(512)
        .cache_capacity(cache_capacity)
        .build()
        .expect("bench serve config is valid")
}

fn run(model: &Arc<StartModel>, requests: &[Trajectory]) -> Figures {
    // 1. Legacy shape: one encode call per request, single thread.
    let opts = EncodeOptions::default();
    let encoder = model.encoder();
    let (per_call_out, per_call_secs) = timed(|| {
        let mut out: Vec<Vec<f32>> = Vec::with_capacity(requests.len());
        for t in requests {
            let emb = encoder.encode(std::slice::from_ref(t), &opts).expect("per-call encode");
            out.extend(emb);
        }
        out
    });

    // 2. The service, cache off, one worker: same bits, batched schedule.
    let service = start_serve::EmbeddingService::start(Arc::clone(model), serve_config(1, 0));
    let (served, service_secs) = timed(|| service.encode(requests).expect("service encode"));
    let stats = service.shutdown();
    assert_eq!(served.len(), per_call_out.len());
    for (i, (s, p)) in served.iter().zip(&per_call_out).enumerate() {
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(p) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {i}: service output diverged from per-call encode"
            );
        }
    }

    // 3. A skewed stream with the cache on: each distinct trajectory ~4×.
    let distinct = (requests.len() / 4).max(1);
    let cached_stream: Vec<Trajectory> =
        (0..requests.len()).map(|i| requests[(i * 7919) % distinct].clone()).collect();
    let service = start_serve::EmbeddingService::start(Arc::clone(model), serve_config(1, 4096));
    let (cached_out, cached_secs) =
        timed(|| service.encode(&cached_stream).expect("cached service encode"));
    let cached_stats = service.shutdown();
    for (out, t_idx) in cached_out.iter().zip((0..requests.len()).map(|i| (i * 7919) % distinct)) {
        let reference = &per_call_out[t_idx];
        assert!(
            out.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached answer diverged from the per-call encode"
        );
    }

    Figures {
        requests: requests.len(),
        per_call_secs: per_call_secs.as_secs_f64(),
        service_secs: service_secs.as_secs_f64(),
        cached_requests: cached_stream.len(),
        cached_secs: cached_secs.as_secs_f64(),
        stats,
        cached_stats,
    }
}

fn print_figures(f: &Figures) {
    println!("  requests              : {}", f.requests);
    println!("  per-call encode       : {:.2} req/s ({:.3}s)", f.per_call_rps(), f.per_call_secs);
    println!("  service (cache off)   : {:.2} req/s ({:.3}s)", f.service_rps(), f.service_secs);
    println!("  speedup               : {:.2}x", f.speedup());
    println!(
        "  service queue wait    : p50 {}us  p99 {}us",
        f.stats.queue_wait.p50_us, f.stats.queue_wait.p99_us
    );
    println!(
        "  service batch encode  : p50 {}us  p99 {}us  mean batch {:.1}",
        f.stats.encode.p50_us,
        f.stats.encode.p99_us,
        f.stats.mean_batch_size()
    );
    println!(
        "  service (cache on)    : {:.2} req/s, hit rate {:.3}",
        f.cached_rps(),
        f.cached_stats.cache.hit_rate()
    );
}

// ---------------------------------------------------------------------------
// Section 4: router replica scaling, one child process per point
// ---------------------------------------------------------------------------

/// Workload knobs for one scaling point. The per-replica cache holds 40% of
/// the distinct working set, so aggregate capacity covers 40/80/160% of it
/// at 1/2/4 replicas — the measured uniform-random hit rates track that
/// coverage, and throughput tracks the miss rate.
struct ScalingWorkload {
    /// Distinct trajectories in the working set.
    working_set: usize,
    /// Warmup requests (unmeasured; fills the caches to steady state).
    warmup: usize,
    /// Measured requests.
    measured: usize,
}

impl ScalingWorkload {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self { working_set: 40, warmup: 120, measured: 160 }
        } else {
            Self { working_set: 360, warmup: 720, measured: 1200 }
        }
    }

    fn cache_capacity(&self) -> usize {
        (self.working_set * 2 / 5).max(1)
    }
}

/// Deterministic uniform stream over `working_set` indices (an LCG, so
/// every child and every replica count sees the identical request order).
fn uniform_stream(seed: u64, len: usize, working_set: usize) -> Vec<usize> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % working_set
        })
        .collect()
}

/// Child side of the scaling sweep: serve the standard workload at
/// `replicas` replicas and emit `rps hit_rate requests` as the result
/// payload.
fn run_scaling_child(replicas: usize, smoke: bool) {
    let scale = scale_for(smoke);
    let ds = bj_mini(&scale);
    let model =
        Arc::new(StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 77));
    let wl = ScalingWorkload::new(smoke);
    let pool = request_pool(&ds, wl.working_set);

    // Single-request batches: the road-representation forward dominates a
    // batch's cost and is skipped only when *every* view in the batch is
    // cached, so at `max_batch` 32 a 77%-hit replica still pays it for
    // ~every batch (0.77^32 ≈ 0) and the cache win vanishes into batch
    // amortization. With one view per batch, served cost tracks the miss
    // count — which is exactly what the aggregate-cache-capacity story
    // says should shrink as replicas are added.
    let serve = ServeConfig::builder()
        .workers(1)
        .max_batch(1)
        .queue_cap(512)
        .cache_capacity(wl.cache_capacity())
        .build()
        .expect("scaling serve config is valid");
    let cfg = RouterConfig::builder()
        .replicas(replicas)
        .serve(serve)
        .build()
        .expect("scaling router config is valid");
    let router = Router::start(model, cfg);

    let warm: Vec<Trajectory> =
        uniform_stream(11, wl.warmup, wl.working_set).iter().map(|&i| pool[i].clone()).collect();
    router.encode(&warm).expect("warmup encode");

    let measured: Vec<Trajectory> =
        uniform_stream(97, wl.measured, wl.working_set).iter().map(|&i| pool[i].clone()).collect();
    let before = router.stats();
    let (_, secs) = timed(|| router.encode(&measured).expect("measured encode"));
    let after = router.stats();
    router.shutdown();

    let hits: u64 = after.replicas.iter().map(|s| s.cache.hits).sum::<u64>()
        - before.replicas.iter().map(|s| s.cache.hits).sum::<u64>();
    let lookups: u64 = after.replicas.iter().map(|s| s.cache.hits + s.cache.misses).sum::<u64>()
        - before.replicas.iter().map(|s| s.cache.hits + s.cache.misses).sum::<u64>();
    let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    let rps = wl.measured as f64 / secs.as_secs_f64();
    emit_result(&format!("{rps:.3} {hit_rate:.4} {}", wl.measured));
}

/// One parsed scaling point.
struct ScalingPoint {
    replicas: usize,
    rps: f64,
    hit_rate: f64,
    requests: usize,
}

/// Parent side: run the 1/2/4-replica points as child processes through
/// the sweep orchestrator, one sweep per point — timed points must not
/// share the single core, so the fan-out here is across *sweeps*, not
/// within one.
fn run_scaling_sweep(replica_counts: &[usize], smoke: bool) -> Vec<ScalingPoint> {
    let exe = std::env::current_exe().expect("current exe path");
    replica_counts
        .iter()
        .map(|&replicas| {
            let mut args = vec!["--scaling-child".to_string(), replicas.to_string()];
            if smoke {
                args.push("--smoke".to_string());
            }
            let job = SweepJob::new(format!("replicas-{replicas}"), args);
            let runs = run_sweep(&exe, std::slice::from_ref(&job)).expect("scaling sweep");
            let run = runs.into_iter().next().expect("one run per sweep");
            let mut parts = run.payload.split_whitespace();
            let rps: f64 = parts.next().and_then(|s| s.parse().ok()).expect("rps payload");
            let hit_rate: f64 =
                parts.next().and_then(|s| s.parse().ok()).expect("hit-rate payload");
            let requests: usize =
                parts.next().and_then(|s| s.parse().ok()).expect("requests payload");
            ScalingPoint { replicas, rps, hit_rate, requests }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Section 5: mid-stream checkpoint hot-swap audit
// ---------------------------------------------------------------------------

struct SwapAudit {
    requests: usize,
    replies_v0: usize,
    replies_v1: usize,
    dropped: usize,
    mismatched: usize,
    drained_batches: u64,
}

/// Submit a request stream to a 2-replica router, publish checkpoint `next`
/// mid-stream, and audit every reply against the offline reference of the
/// version that tagged it.
fn run_swap_audit(
    model: &Arc<StartModel>,
    next: Arc<StartModel>,
    requests: &[Trajectory],
) -> SwapAudit {
    let opts = EncodeOptions::default();
    let ref_v0 = model.encoder().encode(requests, &opts).expect("v0 reference encode");
    let ref_v1 = next.encoder().encode(requests, &opts).expect("v1 reference encode");

    // Cache off so every reply exercises the versioned encode path; small
    // batches so the swap lands between micro-batches, not around one giant
    // one.
    let serve = ServeConfig::builder()
        .workers(1)
        .max_batch(8)
        .max_wait(Duration::from_millis(1))
        .queue_cap(requests.len().max(1))
        .cache_capacity(0)
        .build()
        .expect("swap-audit serve config is valid");
    let cfg = RouterConfig::builder().replicas(2).serve(serve).build().expect("swap router config");
    let router = Router::start(Arc::clone(model), cfg);

    let handles: Vec<_> =
        requests.iter().map(|t| router.submit(t).expect("submit during swap audit")).collect();
    // Let a few old-version micro-batches flush, then swap while the rest
    // are still queued or in flight.
    std::thread::sleep(Duration::from_millis(5));
    let reports = router.publish(next).expect("mid-stream publish");
    let drained_batches = reports.iter().map(|r| r.drained_batches).sum();

    let mut audit = SwapAudit {
        requests: requests.len(),
        replies_v0: 0,
        replies_v1: 0,
        dropped: 0,
        mismatched: 0,
        drained_batches,
    };
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait_versioned() {
            Ok((emb, version)) => {
                let reference = match version {
                    0 => {
                        audit.replies_v0 += 1;
                        &ref_v0[i]
                    }
                    _ => {
                        audit.replies_v1 += 1;
                        &ref_v1[i]
                    }
                };
                let matches = emb.len() == reference.len()
                    && emb.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits());
                if !matches {
                    audit.mismatched += 1;
                }
            }
            Err(_) => audit.dropped += 1,
        }
    }
    router.shutdown();
    audit
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn scale_for(smoke: bool) -> Scale {
    if smoke {
        Scale { bj_trajectories: 260, ..Scale::quick() }
    } else {
        Scale::from_env()
    }
}

/// The first `n` distinct trajectories of the dataset's test+train pool.
fn request_pool(ds: &start_traj::TrajDataset, n: usize) -> Vec<Trajectory> {
    let mut pool: Vec<Trajectory> = ds.test().to_vec();
    pool.extend_from_slice(ds.train());
    pool.truncate(n);
    pool
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(pos) = args.iter().position(|a| a == "--scaling-child") {
        let replicas: usize =
            args.get(pos + 1).and_then(|s| s.parse().ok()).expect("--scaling-child <replicas>");
        run_scaling_child(replicas, smoke);
        return;
    }

    println!("bench_serve: micro-batched serving vs per-call encoding");
    let scale = scale_for(smoke);
    println!("  building bj-mini at scale `{}`...", scale.name);
    let ds = bj_mini(&scale);
    let model =
        Arc::new(StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 77));
    let n = if smoke { 48 } else { 512.min(ds.test().len() + ds.train().len()) };
    let requests = request_pool(&ds, n);

    let figs = run(&model, &requests);
    print_figures(&figs);

    // Section 5: mid-stream hot swap, audited reply by reply. The next
    // checkpoint is the same architecture at different weights (a fresh
    // seed) — maximally distinguishable from v0 bit-for-bit.
    println!("  hot-swap audit...");
    let next =
        Arc::new(StartModel::new(start_config(&scale), &ds.city.net, Some(&ds.transfer), None, 78));
    let audit_stream: Vec<Trajectory> =
        requests.iter().take(if smoke { 48 } else { 240 }).cloned().collect();
    let audit = run_swap_audit(&model, next, &audit_stream);
    println!(
        "  hot swap              : {} replies ({} v0 / {} v1), {} dropped, {} mismatched, \
         {} batches drained at swap",
        audit.requests,
        audit.replies_v0,
        audit.replies_v1,
        audit.dropped,
        audit.mismatched,
        audit.drained_batches
    );
    assert_eq!(audit.dropped, 0, "hot swap dropped replies");
    assert_eq!(audit.mismatched, 0, "hot swap produced replies matching neither checkpoint");
    assert_eq!(audit.replies_v0 + audit.replies_v1, audit.requests);

    // Section 4: replica scaling through the sweep orchestrator. Smoke runs
    // a two-point sweep to exercise the parent/child protocol end to end,
    // without floors.
    let replica_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    println!("  replica scaling sweep ({replica_counts:?})...");
    let points = run_scaling_sweep(replica_counts, smoke);
    let base_rps = points[0].rps;
    for p in &points {
        println!(
            "  router x{}             : {:.2} req/s, hit rate {:.3}, {:.2}x vs 1 replica",
            p.replicas,
            p.rps,
            p.hit_rate,
            p.rps / base_rps
        );
    }

    if smoke {
        println!("bench_serve --smoke: ok (bitwise identity and swap audit held)");
        return;
    }

    assert!(
        figs.speedup() >= 2.0,
        "service throughput is only {:.2}x the per-call baseline (floor: 2x)",
        figs.speedup()
    );
    let speedup_at = |r: usize| -> f64 {
        points.iter().find(|p| p.replicas == r).map(|p| p.rps / base_rps).unwrap_or(0.0)
    };
    assert!(
        speedup_at(2) >= 1.7,
        "2-replica router is only {:.2}x the 1-replica throughput (floor: 1.7x)",
        speedup_at(2)
    );
    assert!(
        speedup_at(4) >= 3.0,
        "4-replica router is only {:.2}x the 1-replica throughput (floor: 3x)",
        speedup_at(4)
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"requests\": {},", figs.requests);
    let _ = writeln!(json, "  \"per_call_rps\": {:.2},", figs.per_call_rps());
    let _ = writeln!(json, "  \"service_rps\": {:.2},", figs.service_rps());
    let _ = writeln!(json, "  \"speedup_vs_per_call\": {:.3},", figs.speedup());
    let _ = writeln!(json, "  \"bitwise_identical_to_per_call\": true,");
    let _ = writeln!(
        json,
        "  \"queue_wait_us\": {{\"p50\": {}, \"p99\": {}}},",
        figs.stats.queue_wait.p50_us, figs.stats.queue_wait.p99_us
    );
    let _ = writeln!(
        json,
        "  \"batch_encode_us\": {{\"p50\": {}, \"p99\": {}}},",
        figs.stats.encode.p50_us, figs.stats.encode.p99_us
    );
    let _ = writeln!(json, "  \"mean_batch_size\": {:.2},", figs.stats.mean_batch_size());
    let _ = writeln!(json, "  \"cached\": {{");
    let _ = writeln!(json, "    \"requests\": {},", figs.cached_requests);
    let _ = writeln!(json, "    \"service_rps\": {:.2},", figs.cached_rps());
    let _ = writeln!(json, "    \"hit_rate\": {:.3}", figs.cached_stats.cache.hit_rate());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"scaling\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replicas\": {}, \"requests\": {}, \"rps\": {:.2}, \"hit_rate\": {:.3}, \
             \"speedup_vs_1_replica\": {:.3}}}{}",
            p.replicas,
            p.requests,
            p.rps,
            p.hit_rate,
            p.rps / base_rps,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"hot_swap\": {{");
    let _ = writeln!(json, "    \"requests\": {},", audit.requests);
    let _ = writeln!(json, "    \"replies_v0\": {},", audit.replies_v0);
    let _ = writeln!(json, "    \"replies_v1\": {},", audit.replies_v1);
    let _ = writeln!(json, "    \"dropped\": {},", audit.dropped);
    let _ = writeln!(json, "    \"mismatched\": {},", audit.mismatched);
    let _ = writeln!(json, "    \"drained_batches_at_swap\": {}", audit.drained_batches);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\n  wrote {path}");
}
