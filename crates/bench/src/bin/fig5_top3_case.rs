//! Figure 5: case study — top-3 most similar trajectories retrieved by
//! START vs Trembr for sample queries. The paper plots them on the map; we
//! print route overlap and OD agreement so the comparison is quantitative.
//!
//! Run: `cargo run -p start-bench --release --bin fig5_top3_case`

use std::collections::HashSet;

use start_bench::{bj_mini, ModelKind, Runner, Scale, Table};
use start_eval::metrics::knn_indices;
use start_traj::{TrajDataset, Trajectory};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 5 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);
    let mut db: Vec<Trajectory> =
        ds.test().iter().take(400.min(ds.test().len())).cloned().collect();
    // Two sample queries, as in the paper: prefer long trajectories so the
    // retrieved routes have room to overlap.
    let mut by_len: Vec<usize> = (0..db.len()).collect();
    by_len.sort_by_key(|&i| std::cmp::Reverse(db[i].len()));
    let queries = [db[by_len[0]].clone(), db[by_len[3]].clone()];
    // Seed the database with genuinely similar trajectories (detours of the
    // queries), mirroring the paper's setting where near-duplicates exist.
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = start_traj::DetourConfig::default();
        for q in &queries {
            for _ in 0..2 {
                if let Some(d) = start_traj::make_detour(&ds.city.net, q, &cfg, &mut rng) {
                    db.push(d);
                }
            }
        }
    }

    for kind in [ModelKind::start(&scale), ModelKind::Trembr] {
        let mut runner = Runner::build(&kind, &ds, &scale, None);
        runner.pretrain(&ds, &scale);
        let db_embs = runner.encode(&db);
        let q_embs = runner.encode(&queries);
        let mut table = Table::new(
            format!("Fig 5: top-3 retrieved by {}", runner.name()),
            &["query", "rank", "db idx", "road overlap (Jaccard)", "same OD region", "len"],
        );
        for (qi, q) in queries.iter().enumerate() {
            // Rank 0 is the query itself (it is in the database): skip it.
            let knn = knn_indices(&q_embs[qi], &db_embs, 4);
            let mut rank = 0;
            for &i in &knn {
                if trajectories_equal(&db[i], q) {
                    continue;
                }
                rank += 1;
                if rank > 3 {
                    break;
                }
                table.row(vec![
                    format!("q{qi}"),
                    rank.to_string(),
                    i.to_string(),
                    format!("{:.3}", jaccard(q, &db[i])),
                    close_od(&ds, q, &db[i]).to_string(),
                    db[i].len().to_string(),
                ]);
            }
        }
        table.print();
    }
    println!("Shape check vs the paper: START's top-3 overlap the query's roads and OD far more\nthan Trembr's (it retrieves shape- and semantics-similar trajectories).");
}

fn trajectories_equal(a: &Trajectory, b: &Trajectory) -> bool {
    a.roads == b.roads && a.times == b.times
}

fn jaccard(a: &Trajectory, b: &Trajectory) -> f32 {
    let sa: HashSet<_> = a.roads.iter().collect();
    let sb: HashSet<_> = b.roads.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f32 / union as f32
}

/// Whether both endpoints are within a quarter of the city radius.
fn close_od(ds: &TrajDataset, a: &Trajectory, b: &Trajectory) -> bool {
    let mid = |t: &Trajectory, end: bool| {
        let seg = if end { t.destination() } else { t.origin() };
        ds.city.net.segment(seg).midpoint()
    };
    let span = {
        // Rough city diameter from two far segments.
        let p0 = ds.city.net.segment(start_roadnet::SegmentId(0)).midpoint();
        ds.city.net.segments().iter().map(|s| s.midpoint().distance(p0)).fold(0.0f64, f64::max)
    };
    mid(a, false).distance(mid(b, false)) < span * 0.25
        && mid(a, true).distance(mid(b, true)) < span * 0.25
}
