//! Figure 3: ETA MAPE on BJ under different scenarios — departure-hour
//! buckets, weekday vs weekend, and trajectory hop buckets — for START, the
//! `w/o Temporal` ablation, and the best baseline (Trembr).
//!
//! Run: `cargo run -p start-bench --release --bin fig3_eta_slices`

use start_bench::{bj_mini, start_config, ModelKind, Runner, Scale, Table};
use start_core::IntervalMode;
use start_eval::metrics::mape;
use start_traj::{hour_of_day, is_weekend, Trajectory};

fn main() {
    let scale = Scale::from_env();
    println!("START reproduction — Figure 3 (scale: {})\n", scale.name);
    let ds = bj_mini(&scale);
    let test: Vec<Trajectory> = ds.test().iter().take(scale.eval_subset).cloned().collect();
    let truth: Vec<f32> = test.iter().map(Trajectory::travel_time_secs).collect();

    // The three contenders of Fig. 3.
    let mut kinds: Vec<(String, ModelKind)> = Vec::new();
    kinds.push(("START".into(), ModelKind::start(&scale)));
    let mut no_temporal = start_config(&scale);
    no_temporal.use_time_embedding = false;
    no_temporal.interval_mode = IntervalMode::None;
    kinds.push(("w/o Temporal".into(), ModelKind::Start(Box::new(no_temporal))));
    kinds.push(("Trembr".into(), ModelKind::Trembr));

    let mut preds_by_model: Vec<(String, Vec<f32>)> = Vec::new();
    for (name, kind) in kinds {
        let mut runner = Runner::build(&kind, &ds, &scale, None);
        runner.pretrain(&ds, &scale);
        let preds = runner.eta(ds.train(), &test, &scale);
        eprintln!("  [{name}] trained");
        preds_by_model.push((name, preds));
    }

    // (a) Departure-hour buckets.
    let hour_bucket = |t: &Trajectory| match hour_of_day(t.departure()) as usize {
        0..=6 => "00-07",
        7..=9 => "07-10",
        10..=15 => "10-16",
        16..=20 => "16-21",
        _ => "21-24",
    };
    slice_table("Fig 3(a): MAPE by departure time", &test, &truth, &preds_by_model, hour_bucket);

    // (b) Weekday vs weekend.
    let day_bucket = |t: &Trajectory| if is_weekend(t.departure()) { "weekend" } else { "weekday" };
    slice_table("Fig 3(b): MAPE weekday vs weekend", &test, &truth, &preds_by_model, day_bucket);

    // (c) Hop buckets.
    let hop_bucket = |t: &Trajectory| match t.hops() {
        0..=19 => "<20",
        20..=59 => "20-60",
        60..=99 => "60-100",
        _ => ">=100",
    };
    slice_table("Fig 3(c): MAPE by trajectory hops", &test, &truth, &preds_by_model, hop_bucket);

    println!("Shape checks vs the paper: START lowest in every slice; w/o Temporal degrades most\nat peak hours (its whole edge is the temporal signal).");
}

fn slice_table(
    title: &str,
    test: &[Trajectory],
    truth: &[f32],
    preds_by_model: &[(String, Vec<f32>)],
    bucket: impl Fn(&Trajectory) -> &'static str,
) {
    // Stable bucket order = order of first appearance after sorting keys.
    let mut buckets: Vec<&'static str> = test.iter().map(&bucket).collect();
    buckets.sort_unstable();
    buckets.dedup();

    let mut header = vec!["bucket", "n"];
    for (name, _) in preds_by_model {
        header.push(name);
    }
    let mut table = Table::new(title, &header);
    for b in buckets {
        let idx: Vec<usize> = (0..test.len()).filter(|&i| bucket(&test[i]) == b).collect();
        if idx.is_empty() {
            continue;
        }
        let t: Vec<f32> = idx.iter().map(|&i| truth[i]).collect();
        let mut row = vec![b.to_string(), idx.len().to_string()];
        for (_, preds) in preds_by_model {
            let p: Vec<f32> = idx.iter().map(|&i| preds[i]).collect();
            row.push(format!("{:.2}", mape(&t, &p)));
        }
        table.row(row);
    }
    table.print();
}
