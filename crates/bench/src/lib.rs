//! `start-bench`: the experiment harness regenerating every table and
//! figure of the paper's evaluation (§IV). One binary per artifact — see
//! DESIGN.md §3 for the experiment index — plus Criterion benches for the
//! timing studies (Fig. 10).

pub mod datasets;
pub mod report;
pub mod scale;
pub mod zoo;

pub use datasets::{bj_mini, driver_labels, geolife_mini, porto_mini};
pub use report::{f1, f3, Table};
pub use scale::Scale;
pub use zoo::{dataset_node2vec, start_config, timed, ModelKind, Runner};
