//! Criterion bench for Fig 10(b): per-query similarity-search cost —
//! embedding-space O(d) scans vs the classical O(L²) dynamic programs.
//!
//! Run: `cargo bench -p start-bench --bench bench_search`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use start_bench::{bj_mini, Scale};
use start_eval::classic::{dtw, edr, frechet, lcss, midpoints};
use start_roadnet::Point;

fn bench_search(c: &mut Criterion) {
    let scale = Scale { bj_trajectories: 900, ..Scale::quick() };
    let ds = bj_mini(&scale);
    let db: Vec<Vec<Point>> =
        ds.test().iter().take(100).map(|t| midpoints(&ds.city.net, t)).collect();
    let query = midpoints(&ds.city.net, &ds.test()[101]);

    // Embedding-space scan: O(d) per database entry. Uses fixed vectors so
    // only the scan cost is measured (embedding cost is bench_inference's
    // subject).
    let d = 64;
    let db_embs: Vec<Vec<f32>> =
        (0..db.len()).map(|i| (0..d).map(|j| ((i * d + j) as f32).sin()).collect()).collect();
    let q_emb: Vec<f32> = (0..d).map(|j| (j as f32).cos()).collect();

    let mut group = c.benchmark_group("per_query_scan_over_100_db_entries");
    group.sample_size(20);
    group.bench_function("embedding_O(d)", |b| {
        b.iter(|| {
            db_embs
                .iter()
                .map(|e| e.iter().zip(&q_emb).map(|(x, y)| (x - y) * (x - y)).sum::<f32>())
                .fold(f32::INFINITY, f32::min)
        })
    });
    for (name, f) in [
        ("DTW", Box::new(dtw) as Box<dyn Fn(&[Point], &[Point]) -> f64>),
        ("LCSS", Box::new(|a: &[Point], b: &[Point]| lcss(a, b, 150.0))),
        ("Frechet", Box::new(frechet)),
        ("EDR", Box::new(|a: &[Point], b: &[Point]| edr(a, b, 150.0))),
    ] {
        group.bench_with_input(BenchmarkId::new("classic", name), &db, |bch, db| {
            bch.iter(|| db.iter().map(|entry| f(&query, entry)).fold(f64::INFINITY, f64::min))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
