//! Criterion bench for Fig 10(a): trajectory-embedding throughput of START
//! vs representative baselines (self-attention vs RNN cost profile).
//!
//! Run: `cargo bench -p start-bench --bench bench_inference`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use start_bench::{bj_mini, ModelKind, Runner, Scale};
use start_traj::Trajectory;

fn bench_inference(c: &mut Criterion) {
    let scale = Scale { bj_trajectories: 900, ..Scale::quick() };
    let ds = bj_mini(&scale);
    let n2v = start_bench::dataset_node2vec(&ds, scale.dim);
    let pool: Vec<Trajectory> = ds.split.trajectories.iter().take(64).cloned().collect();

    let mut group = c.benchmark_group("embed_64_trajectories");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pool.len() as u64));
    // One per architecture family: START (GAT+transformer+interval), pure
    // transformer (Toast), RNN seq2seq (Trembr), RNN + node2vec (PIM).
    for kind in [ModelKind::start(&scale), ModelKind::Toast, ModelKind::Trembr, ModelKind::Pim] {
        let runner = Runner::build(&kind, &ds, &scale, Some(&n2v));
        group.bench_with_input(BenchmarkId::from_parameter(runner.name()), &pool, |b, pool| {
            b.iter(|| runner.encode(pool));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
