//! Top-k-detour ground-truth generation for the similarity-search
//! experiments (§IV-D4).
//!
//! For a query trajectory, a consecutive sub-trajectory covering at most
//! `p_d` of its length is replaced by an alternative route between the same
//! two roads, found with Yen's top-k search, whose travel time differs from
//! the original by more than the threshold `t_d`. The detoured copy is the
//! unique ground-truth match of the query inside a database padded with
//! detours of unrelated trajectories.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use start_roadnet::{yen_ksp, RoadNetwork, SegmentId};

use crate::congestion::congestion_factor;
use crate::types::{Timestamp, Trajectory};

/// Parameters of the detour generator, defaulting to the paper's
/// (`p_d = 0.2`, `t_d = 0.2`, top-k with k = 8).
#[derive(Debug, Clone)]
pub struct DetourConfig {
    /// Max fraction of the trajectory replaced.
    pub select_proportion: f64,
    /// Minimum relative travel-time difference of the replacement.
    pub time_threshold: f64,
    /// Yen's k.
    pub k: usize,
    pub seed: u64,
}

impl Default for DetourConfig {
    fn default() -> Self {
        Self { select_proportion: 0.2, time_threshold: 0.2, k: 8, seed: 99 }
    }
}

/// A query set with its detour database (§IV-D4 setup).
#[derive(Debug, Clone)]
pub struct DetourBenchmark {
    /// The original query trajectories (`D_Q`).
    pub queries: Vec<Trajectory>,
    /// The database `D_D = D_Q' ∪ D_N'`; entry `i` (for `i < queries.len()`)
    /// is the detour of query `i`, i.e. its ground truth.
    pub database: Vec<Trajectory>,
}

impl DetourBenchmark {
    /// Ground-truth database index for query `q`.
    pub fn truth(&self, q: usize) -> usize {
        q
    }
}

/// Produce a detoured variant of `traj`, or `None` if no qualifying
/// alternative route exists anywhere along it.
pub fn make_detour(
    net: &RoadNetwork,
    traj: &Trajectory,
    cfg: &DetourConfig,
    rng: &mut StdRng,
) -> Option<Trajectory> {
    let n = traj.len();
    let sub_len = ((n as f64 * cfg.select_proportion) as usize).clamp(2, n.saturating_sub(1));
    let expected_time = |seg: SegmentId, t: Timestamp| {
        let s = net.segment(seg);
        s.free_flow_secs() as f64 / congestion_factor(s.kind, t) as f64
    };

    for _attempt in 0..8 {
        let i = rng.gen_range(0..n - sub_len + 1);
        let j = i + sub_len - 1;
        let (from, to) = (traj.roads[i], traj.roads[j]);
        if from == to {
            continue;
        }
        let t0 = traj.times[i];
        let exit_j = if j + 1 < n { traj.times[j + 1] } else { traj.arrival };
        let orig_time = (exit_j - t0) as f64;
        if orig_time <= 0.0 {
            continue;
        }

        let paths = yen_ksp(net, from, to, cfg.k, |_, next| expected_time(next, t0));
        let original_sub = &traj.roads[i..=j];
        let candidate = paths.iter().find(|p| {
            if p.segments == original_sub {
                return false;
            }
            let rel = (p.cost - orig_time).abs() / orig_time;
            rel > cfg.time_threshold
        });
        // Fall back to any alternative shape if no path clears the time bar.
        let candidate = candidate.or_else(|| paths.iter().find(|p| p.segments != original_sub))?;

        // Assemble: prefix + replacement + suffix.
        let mut roads = traj.roads[..i].to_vec();
        roads.extend_from_slice(&candidate.segments);
        roads.extend_from_slice(&traj.roads[j + 1..]);

        // Timestamps: prefix kept; replacement gets expected durations from
        // t0; suffix keeps its original per-road durations, shifted.
        let mut times = traj.times[..i].to_vec();
        let mut t = t0 as f64;
        for &seg in &candidate.segments {
            times.push(t as Timestamp);
            t += expected_time(seg, t as Timestamp);
        }
        let shift = t as Timestamp - exit_j;
        for k in j + 1..n {
            times.push(traj.times[k] + shift);
        }
        let arrival = traj.arrival + shift;

        let detoured = Trajectory { roads, times, arrival, ..traj.clone() };
        if detoured.validate().is_ok() && detoured.len() >= 2 {
            return Some(detoured);
        }
    }
    None
}

/// Build the full §IV-D4 benchmark: `num_queries` queries with detour ground
/// truths plus `num_negatives` detoured distractors.
pub fn build_benchmark(
    net: &RoadNetwork,
    test_pool: &[Trajectory],
    num_queries: usize,
    num_negatives: usize,
    cfg: &DetourConfig,
) -> DetourBenchmark {
    assert!(
        test_pool.len() >= num_queries + num_negatives,
        "pool of {} too small for {num_queries} queries + {num_negatives} negatives",
        test_pool.len()
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..test_pool.len()).collect();
    // Fisher-Yates to decouple query choice from dataset order.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    let mut queries = Vec::with_capacity(num_queries);
    let mut database = Vec::with_capacity(num_queries + num_negatives);
    let mut negatives = Vec::with_capacity(num_negatives);
    for &idx in &order {
        let traj = &test_pool[idx];
        let need_queries = queries.len() < num_queries;
        let need_negs = negatives.len() < num_negatives;
        if !need_queries && !need_negs {
            break;
        }
        if let Some(det) = make_detour(net, traj, cfg, &mut rng) {
            if need_queries {
                queries.push(traj.clone());
                database.push(det);
            } else {
                negatives.push(det);
            }
        }
    }
    assert_eq!(queries.len(), num_queries, "not enough detourable queries");
    database.extend(negatives);
    DetourBenchmark { queries, database }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{SimConfig, Simulator};
    use start_roadnet::synth::{generate_city, CityConfig};

    fn setup() -> (start_roadnet::City, Vec<Trajectory>) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 120, num_drivers: 6, ..Default::default() },
        );
        let data = sim.generate();
        (city, data)
    }

    #[test]
    fn detour_differs_but_shares_endpoints() {
        let (city, data) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DetourConfig::default();
        let mut made = 0;
        for traj in data.iter().take(30) {
            if let Some(det) = make_detour(&city.net, traj, &cfg, &mut rng) {
                made += 1;
                assert_eq!(det.origin(), traj.origin());
                assert_eq!(det.destination(), traj.destination());
                assert_ne!(det.roads, traj.roads, "detour must change the route");
                assert!(city.net.is_path(&det.roads), "detour must stay connected");
                assert!(det.validate().is_ok());
            }
        }
        assert!(made >= 20, "only {made}/30 detours made");
    }

    #[test]
    fn benchmark_has_queries_truths_and_negatives() {
        let (city, data) = setup();
        let bench = build_benchmark(&city.net, &data, 20, 40, &DetourConfig::default());
        assert_eq!(bench.queries.len(), 20);
        assert_eq!(bench.database.len(), 60);
        for q in 0..20 {
            let truth = &bench.database[bench.truth(q)];
            assert_eq!(truth.origin(), bench.queries[q].origin());
            assert_eq!(truth.destination(), bench.queries[q].destination());
        }
    }

    #[test]
    #[should_panic(expected = "pool of")]
    fn benchmark_rejects_undersized_pool() {
        let (city, data) = setup();
        build_benchmark(&city.net, &data[..10], 20, 40, &DetourConfig::default());
    }
}
