//! Bundled datasets: city + simulated trajectories + preprocessing + the
//! derived artifacts every experiment needs (transfer matrix, historical
//! durations, Table I statistics).

use start_roadnet::{City, TransferMatrix};

use crate::preprocess::{preprocess, PreprocessConfig, SplitDataset};
use crate::simulate::{historical_mean_durations, SimConfig, Simulator};
use crate::types::Trajectory;

/// A fully prepared dataset, the unit of work for all experiments.
pub struct TrajDataset {
    pub city: City,
    pub split: SplitDataset,
    /// Transfer probabilities (Eq. 2), computed on the *training* split only
    /// to avoid leaking test-time travel patterns into TPE-GAT.
    pub transfer: TransferMatrix,
    /// Historical mean traversal time per segment (training split).
    pub historical: Vec<f32>,
}

impl TrajDataset {
    /// Simulate, preprocess and derive auxiliary structures.
    pub fn build(city: City, sim_cfg: SimConfig, pre_cfg: &PreprocessConfig) -> Self {
        let raw = Simulator::new(&city.net, sim_cfg).generate();
        let split = preprocess(raw, pre_cfg);
        let transfer = TransferMatrix::from_sequences(
            city.net.num_segments(),
            split.train().iter().map(|t| t.roads.as_slice()),
        );
        let historical = historical_mean_durations(&city.net, split.train());
        Self { city, split, transfer, historical }
    }

    pub fn num_segments(&self) -> usize {
        self.city.net.num_segments()
    }

    pub fn num_drivers(&self) -> usize {
        self.split.stats.num_users
    }

    pub fn train(&self) -> &[Trajectory] {
        self.split.train()
    }

    pub fn eval(&self) -> &[Trajectory] {
        self.split.eval()
    }

    pub fn test(&self) -> &[Trajectory] {
        self.split.test()
    }

    /// Table I row for this dataset.
    pub fn table1_row(&self) -> Table1Row {
        Table1Row {
            name: self.city.name.clone(),
            num_trajectories: self.split.stats.kept,
            num_users: self.split.stats.num_users,
            num_segments: self.num_segments(),
            train: self.train().len(),
            eval: self.eval().len(),
            test: self.test().len(),
        }
    }
}

/// One row of Table I (dataset statistics after preprocessing).
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub name: String,
    pub num_trajectories: usize,
    pub num_users: usize,
    pub num_segments: usize,
    pub train: usize,
    pub eval: usize,
    pub test: usize,
}

impl std::fmt::Display for Table1Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} #Trajectory {:>7}  #Usr {:>5}  #RoadSegment {:>6}  train/eval/test {}/{}/{}",
            self.name,
            self.num_trajectories,
            self.num_users,
            self.num_segments,
            self.train,
            self.eval,
            self.test
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_roadnet::synth::{generate_city, CityConfig};

    #[test]
    fn build_produces_consistent_dataset() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = SimConfig { num_trajectories: 200, num_drivers: 10, ..Default::default() };
        let ds = TrajDataset::build(city, sim, &PreprocessConfig::default());
        assert!(ds.split.stats.kept > 100, "most simulated trips should survive filters");
        assert_eq!(ds.historical.len(), ds.num_segments());
        // Transfer matrix covers training transitions.
        assert!(ds.transfer.num_observed_transitions() > 0);
        let row = ds.table1_row();
        assert_eq!(row.train + row.eval + row.test, row.num_trajectories);
    }
}
