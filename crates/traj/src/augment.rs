//! The four trajectory data-augmentation strategies of §III-C2, used to
//! build positive views for contrastive learning.
//!
//! Each strategy maps a [`Trajectory`] to a [`TrajView`] — a (possibly
//! shorter) road/time sequence plus masking and embedding-dropout directives
//! that the encoder honours when embedding the view.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::types::{Timestamp, Trajectory};
use start_roadnet::SegmentId;

/// An encoder-ready view of a trajectory produced by augmentation.
#[derive(Debug, Clone)]
pub struct TrajView {
    pub roads: Vec<SegmentId>,
    pub times: Vec<Timestamp>,
    /// Positions whose road id and time indexes are replaced by
    /// `[MASK]`/`[MASKT]` special tokens.
    pub masked: Vec<bool>,
    /// Token-level embedding dropout probability (the *Dropout* strategy);
    /// 0 disables it.
    pub embed_dropout: f32,
}

impl TrajView {
    /// An identity view of a trajectory.
    pub fn identity(t: &Trajectory) -> Self {
        Self {
            roads: t.roads.clone(),
            times: t.times.clone(),
            masked: vec![false; t.len()],
            embed_dropout: 0.0,
        }
    }

    pub fn len(&self) -> usize {
        self.roads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roads.is_empty()
    }
}

/// The four augmentation strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Augmentation {
    /// Remove a continuous subsequence at the origin or destination
    /// (ratio sampled from 0.05-0.15).
    Trim,
    /// Perturb the travel times of ~15% of roads toward their historical
    /// average: `t_aug = t_cur - (t_cur - t_his) * r3`, `r3 ~ U(0.15, 0.30)`.
    TemporalShift,
    /// Span-mask roads and their time indexes (missing-value view).
    Mask,
    /// Token dropout at the embedding layer (SimCSE-style noise).
    Dropout,
}

impl Augmentation {
    pub const ALL: [Augmentation; 4] = [
        Augmentation::Trim,
        Augmentation::TemporalShift,
        Augmentation::Mask,
        Augmentation::Dropout,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Augmentation::Trim => "Trajectory Trimming",
            Augmentation::TemporalShift => "Temporal Shifting",
            Augmentation::Mask => "Road Segments Mask",
            Augmentation::Dropout => "Dropout",
        }
    }

    /// Apply this strategy. `historical_durations` is the per-segment mean
    /// traversal time (`t_his`), required by [`Augmentation::TemporalShift`].
    pub fn apply(
        self,
        traj: &Trajectory,
        historical_durations: &[f32],
        rng: &mut StdRng,
    ) -> TrajView {
        match self {
            Augmentation::Trim => trim(traj, rng),
            Augmentation::TemporalShift => temporal_shift(traj, historical_durations, rng),
            Augmentation::Mask => mask(traj, rng),
            Augmentation::Dropout => {
                let mut v = TrajView::identity(traj);
                v.embed_dropout = 0.1;
                v
            }
        }
    }
}

fn trim(traj: &Trajectory, rng: &mut StdRng) -> TrajView {
    let mut v = TrajView::identity(traj);
    let r1 = rng.gen_range(0.05..0.15f64);
    let cut = ((traj.len() as f64 * r1) as usize).min(traj.len().saturating_sub(2));
    if cut == 0 {
        return v;
    }
    if rng.gen::<bool>() {
        // Trim at the origin.
        v.roads.drain(..cut);
        v.times.drain(..cut);
        v.masked.drain(..cut);
    } else {
        // Trim at the destination.
        let keep = v.roads.len() - cut;
        v.roads.truncate(keep);
        v.times.truncate(keep);
        v.masked.truncate(keep);
    }
    v
}

fn temporal_shift(traj: &Trajectory, historical: &[f32], rng: &mut StdRng) -> TrajView {
    const SELECT_RATIO: f64 = 0.15; // r2 in the paper
    let mut v = TrajView::identity(traj);
    let n = traj.len();
    // Per-road traversal durations (the last road's exit is the arrival).
    let mut durations: Vec<f64> = (0..n)
        .map(|i| {
            let exit = if i + 1 < n { traj.times[i + 1] } else { traj.arrival };
            (exit - traj.times[i]) as f64
        })
        .collect();
    for (i, d) in durations.iter_mut().enumerate() {
        if rng.gen::<f64>() < SELECT_RATIO {
            let r3 = rng.gen_range(0.15..0.30f64);
            let t_his = historical.get(traj.roads[i].index()).copied().unwrap_or(*d as f32) as f64;
            *d -= (*d - t_his) * r3;
            *d = d.max(1.0);
        }
    }
    // Rebuild visit timestamps cumulatively from the original departure.
    let mut t = traj.departure() as f64;
    for (time, &d) in v.times.iter_mut().zip(&durations) {
        *time = t as Timestamp;
        t += d;
    }
    v
}

fn mask(traj: &Trajectory, rng: &mut StdRng) -> TrajView {
    let mut v = TrajView::identity(traj);
    v.masked = choose_span_mask(traj.len(), 2, 0.15, rng);
    v
}

/// Select consecutive spans of length `span_len` until `ratio` of the
/// sequence is masked (§III-C1). Shared by the Road-Segments-Mask
/// augmentation and the span-masked recovery pre-training task.
pub fn choose_span_mask(len: usize, span_len: usize, ratio: f64, rng: &mut StdRng) -> Vec<bool> {
    let mut masked = vec![false; len];
    if len == 0 || span_len == 0 {
        return masked;
    }
    let budget = ((len as f64 * ratio).round() as usize).max(1);
    let mut count = 0;
    let mut guard = 0;
    while count < budget && guard < len * 10 {
        guard += 1;
        let start = rng.gen_range(0..len);
        let end = (start + span_len).min(len);
        for m in &mut masked[start..end] {
            if !*m {
                *m = true;
                count += 1;
                if count >= budget {
                    break;
                }
            }
        }
    }
    masked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TravelMode;
    use rand::SeedableRng;

    fn traj(len: usize) -> Trajectory {
        Trajectory {
            roads: (0..len as u32).map(SegmentId).collect(),
            times: (0..len as i64).map(|i| 1000 + i * 60).collect(),
            driver: 0,
            occupied: false,
            mode: TravelMode::CarTaxi,
            arrival: 1000 + len as i64 * 60,
        }
    }

    #[test]
    fn trim_removes_prefix_or_suffix_only() {
        let t = traj(40);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = Augmentation::Trim.apply(&t, &[], &mut rng);
            assert!(v.len() >= 2 && v.len() <= 40);
            // The view must be a contiguous sub-slice of the original.
            let start = t.roads.iter().position(|r| *r == v.roads[0]).unwrap();
            assert_eq!(&t.roads[start..start + v.len()], v.roads.as_slice());
            assert_eq!(&t.times[start..start + v.len()], v.times.as_slice());
        }
    }

    #[test]
    fn temporal_shift_moves_times_toward_historical() {
        let t = traj(30);
        // Historical duration much larger than the observed 60 s.
        let hist = vec![600.0f32; 30];
        let mut rng = StdRng::seed_from_u64(2);
        let v = Augmentation::TemporalShift.apply(&t, &hist, &mut rng);
        assert_eq!(v.len(), 30);
        assert_eq!(v.times[0], t.times[0], "departure unchanged");
        // Some durations must have been stretched (toward 600 s).
        let orig_span = t.arrival - t.departure();
        let new_span = v.times[29] - v.times[0];
        assert!(new_span > orig_span - 60, "shift should stretch the span here");
        // Times stay sorted.
        assert!(v.times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn mask_respects_ratio_roughly() {
        let t = traj(100);
        let mut rng = StdRng::seed_from_u64(3);
        let v = Augmentation::Mask.apply(&t, &[], &mut rng);
        let m = v.masked.iter().filter(|&&b| b).count();
        assert!((10..=25).contains(&m), "masked {m}/100");
        assert_eq!(v.roads, t.roads, "mask does not alter the sequence");
    }

    #[test]
    fn dropout_sets_embedding_flag_only() {
        let t = traj(10);
        let mut rng = StdRng::seed_from_u64(4);
        let v = Augmentation::Dropout.apply(&t, &[], &mut rng);
        assert_eq!(v.embed_dropout, 0.1);
        assert_eq!(v.roads, t.roads);
        assert!(v.masked.iter().all(|m| !m));
    }

    #[test]
    fn span_mask_produces_spans() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = choose_span_mask(200, 4, 0.2, &mut rng);
        let count = m.iter().filter(|&&b| b).count();
        assert!((30..=60).contains(&count), "masked {count}");
        // There must exist at least one run of length >= 2 (spans, not i.i.d.).
        let has_run = m.windows(2).any(|w| w[0] && w[1]);
        assert!(has_run);
    }

    #[test]
    fn span_mask_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(choose_span_mask(0, 2, 0.15, &mut rng).is_empty());
        let one = choose_span_mask(1, 2, 0.15, &mut rng);
        assert_eq!(one.len(), 1);
    }
}
