//! `start-traj`: trajectory data substrate of the START reproduction.
//!
//! Covers Definitions 2-3 of the paper and the full data pipeline of §IV-A:
//!
//! - [`types`] — GPS and road-network-constrained trajectories, the
//!   simulation clock with the paper's `mi(t)` / `di(t)` index functions;
//! - [`congestion`] — the demand and congestion curves giving the synthetic
//!   data its temporal regularities (Fig. 1);
//! - [`simulate`] — the congestion-aware trajectory simulator substituting
//!   for the proprietary taxi fleets (DESIGN.md §4);
//! - [`map_match`] — HMM (Viterbi) map matching from raw GPS to road
//!   sequences;
//! - [`preprocess`] — the paper's filters and chronological splits;
//! - [`augment`] — the four contrastive data-augmentation strategies
//!   (§III-C2) and the span-mask selector (§III-C1);
//! - [`detour`] — top-k-detour ground-truth generation for similarity
//!   search (§IV-D4);
//! - [`dataset`] — bundled, experiment-ready datasets with Table I stats.

pub mod augment;
pub mod congestion;
pub mod dataset;
pub mod detour;
pub mod map_match;
pub mod preprocess;
pub mod simulate;
pub mod types;

pub use augment::{choose_span_mask, Augmentation, TrajView};
pub use congestion::{congestion_factor, demand_intensity};
pub use dataset::{Table1Row, TrajDataset};
pub use detour::{build_benchmark, make_detour, DetourBenchmark, DetourConfig};
pub use map_match::{map_match, MatchConfig, MatchError};
pub use preprocess::{preprocess, PreprocessConfig, PreprocessStats, SplitDataset};
pub use simulate::{historical_mean_durations, SimConfig, Simulator};
pub use types::{
    day_of_week_index, hour_of_day, is_weekend, minute_index, GpsPoint, RawTrajectory, Timestamp,
    Trajectory, TravelMode,
};
