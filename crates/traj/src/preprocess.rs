//! Dataset preprocessing (§IV-A): filtering rules and chronological splits.
//!
//! The paper removes loop trajectories, trajectories shorter than six roads,
//! and users with fewer than 20 trajectories; caps trajectory length at 128;
//! drops roads never covered by a trajectory; and splits chronologically
//! (6:2:2 for Porto, 18/5/7 days for BJ — we use ratio-based chronological
//! splits for both).

use std::collections::HashMap;

use crate::types::Trajectory;

/// Filtering thresholds, defaulting to the paper's.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    pub min_len: usize,
    pub max_len: usize,
    pub min_user_trajectories: usize,
    pub remove_loops: bool,
    /// Chronological split fractions (train, eval); test gets the remainder.
    pub train_frac: f64,
    pub eval_frac: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            min_len: 6,
            max_len: 128,
            min_user_trajectories: 5,
            remove_loops: true,
            train_frac: 0.6,
            eval_frac: 0.2,
        }
    }
}

/// Result of preprocessing: filtered trajectories and split boundaries.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    pub trajectories: Vec<Trajectory>,
    /// `trajectories[..train_end]` is the training split.
    pub train_end: usize,
    /// `trajectories[train_end..eval_end]` is the validation split.
    pub eval_end: usize,
    pub stats: PreprocessStats,
}

impl SplitDataset {
    pub fn train(&self) -> &[Trajectory] {
        &self.trajectories[..self.train_end]
    }

    pub fn eval(&self) -> &[Trajectory] {
        &self.trajectories[self.train_end..self.eval_end]
    }

    pub fn test(&self) -> &[Trajectory] {
        &self.trajectories[self.eval_end..]
    }
}

/// Counters for Table I.
#[derive(Debug, Clone, Default)]
pub struct PreprocessStats {
    pub input: usize,
    /// Structurally malformed records (see [`Trajectory::validate`]) dropped
    /// before any paper filter runs.
    pub dropped_invalid: usize,
    pub dropped_short: usize,
    pub dropped_long: usize,
    pub dropped_loops: usize,
    pub dropped_rare_users: usize,
    pub kept: usize,
    pub num_users: usize,
}

/// Apply the paper's filters and chronological split.
pub fn preprocess(mut trajectories: Vec<Trajectory>, cfg: &PreprocessConfig) -> SplitDataset {
    let mut stats = PreprocessStats { input: trajectories.len(), ..Default::default() };

    // Guard against malformed user data first: downstream code (interval
    // matrices, splits) indexes roads/times in lockstep and assumes sorted
    // timestamps, so structurally invalid records are dropped, not crashed on.
    trajectories.retain(|t| {
        if t.validate().is_err() {
            stats.dropped_invalid += 1;
            return false;
        }
        true
    });

    trajectories.retain(|t| {
        if t.len() < cfg.min_len {
            stats.dropped_short += 1;
            return false;
        }
        if t.len() > cfg.max_len {
            stats.dropped_long += 1;
            return false;
        }
        if cfg.remove_loops && t.is_loop() {
            stats.dropped_loops += 1;
            return false;
        }
        true
    });

    // Drop users with too few trajectories.
    let mut per_user: HashMap<u32, usize> = HashMap::new();
    for t in &trajectories {
        *per_user.entry(t.driver).or_insert(0) += 1;
    }
    let before = trajectories.len();
    trajectories.retain(|t| per_user[&t.driver] >= cfg.min_user_trajectories);
    stats.dropped_rare_users = before - trajectories.len();

    // Chronological split.
    trajectories.sort_by_key(Trajectory::departure);
    let n = trajectories.len();
    stats.kept = n;
    stats.num_users =
        trajectories.iter().map(|t| t.driver).collect::<std::collections::HashSet<_>>().len();
    let train_end = (n as f64 * cfg.train_frac).round() as usize;
    let eval_end = train_end + (n as f64 * cfg.eval_frac).round() as usize;
    SplitDataset { trajectories, train_end, eval_end: eval_end.min(n), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TravelMode;
    use start_roadnet::SegmentId;

    fn traj(len: usize, driver: u32, depart: i64, looped: bool) -> Trajectory {
        let mut roads: Vec<SegmentId> = (0..len as u32).map(SegmentId).collect();
        if looped && len > 1 {
            let first = roads[0];
            *roads.last_mut().unwrap() = first;
        }
        let times: Vec<i64> = (0..len as i64).map(|i| depart + i * 30).collect();
        let arrival = *times.last().unwrap() + 30;
        Trajectory { roads, times, driver, occupied: false, mode: TravelMode::CarTaxi, arrival }
    }

    #[test]
    fn filters_apply_in_order() {
        let cfg = PreprocessConfig { min_user_trajectories: 2, ..Default::default() };
        let mut unsorted_times = traj(10, 0, 60, false);
        unsorted_times.times.swap(2, 3);
        let mut length_mismatch = traj(10, 0, 70, false);
        length_mismatch.times.pop();
        let data = vec![
            traj(3, 0, 0, false),    // too short
            traj(200, 0, 10, false), // too long
            traj(10, 0, 20, true),   // loop
            traj(10, 1, 30, false),  // rare user (only 1 traj)
            traj(10, 2, 40, false),
            traj(12, 2, 50, false),
            unsorted_times,  // malformed: timestamps out of order
            length_mismatch, // malformed: roads/times disagree
        ];
        let out = preprocess(data, &cfg);
        assert_eq!(out.stats.dropped_invalid, 2);
        assert_eq!(out.stats.dropped_short, 1);
        assert_eq!(out.stats.dropped_long, 1);
        assert_eq!(out.stats.dropped_loops, 1);
        assert_eq!(out.stats.dropped_rare_users, 1);
        assert_eq!(out.stats.kept, 2);
        assert_eq!(out.stats.num_users, 1);
    }

    #[test]
    fn splits_are_chronological_and_partition() {
        let cfg = PreprocessConfig { min_user_trajectories: 1, ..Default::default() };
        let data: Vec<Trajectory> =
            (0..100).map(|i| traj(10, i % 7, (100 - i as i64) * 1000, false)).collect();
        let out = preprocess(data, &cfg);
        assert_eq!(out.train().len() + out.eval().len() + out.test().len(), 100);
        assert_eq!(out.train().len(), 60);
        assert_eq!(out.eval().len(), 20);
        // Chronological: max train departure <= min test departure.
        let max_train = out.train().iter().map(Trajectory::departure).max().unwrap();
        let min_test = out.test().iter().map(Trajectory::departure).min().unwrap();
        assert!(max_train <= min_test);
    }
}
