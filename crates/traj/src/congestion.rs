//! The congestion model that gives the synthetic city its temporal
//! regularities (DESIGN.md §4).
//!
//! Travel speed on a segment at time `t` is
//! `max_speed * congestion_factor(kind, t)`, where the factor dips during
//! weekday rush hours — strongest on arterials. This produces both
//! macro-periodicity (Fig. 1b: rush-hour trajectory counts) and
//! micro-irregularity (Fig. 1c: the travel time of a road depends on when it
//! is traversed), the two signals TAT-Enc is built to exploit.

use start_roadnet::RoadKind;

use crate::types::{hour_of_day, is_weekend, Timestamp};

/// Smooth bump centered at `center` with width `width` (hours), value in [0, 1].
fn bump(hour: f32, center: f32, width: f32) -> f32 {
    let d = (hour - center) / width;
    (-0.5 * d * d).exp()
}

/// Demand intensity in [0, 1]: how many trips depart around this time.
/// Weekdays are bimodal (morning + evening peaks); weekends are a single
/// broad midday bump. This is the sampling density for departure times.
pub fn demand_intensity(t: Timestamp) -> f32 {
    let h = hour_of_day(t);
    if is_weekend(t) {
        0.15 + 0.55 * bump(h, 14.0, 4.0)
    } else {
        let morning = bump(h, 8.3, 1.2);
        let evening = bump(h, 18.0, 1.6);
        0.10 + 0.80 * morning.max(evening) + 0.15 * bump(h, 13.0, 3.0)
    }
}

/// Speed multiplier in (0, 1]: 1 = free flow, lower = congested.
///
/// Arterials (trunk/primary) suffer most at peak; residential streets are
/// mildly affected. The congestion level is what irregular inter-road time
/// intervals encode, per the paper's Fig. 1(c) motivation.
pub fn congestion_factor(kind: RoadKind, t: Timestamp) -> f32 {
    let h = hour_of_day(t);
    let peak = if is_weekend(t) {
        0.35 * bump(h, 15.0, 3.0)
    } else {
        let morning = bump(h, 8.3, 1.1);
        let evening = bump(h, 18.0, 1.4);
        morning.max(evening)
    };
    let severity = match kind {
        RoadKind::Motorway | RoadKind::Trunk => 0.60,
        RoadKind::Primary => 0.55,
        RoadKind::Secondary => 0.40,
        RoadKind::Tertiary => 0.30,
        RoadKind::Residential => 0.20,
    };
    (1.0 - severity * peak).clamp(0.25, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SECS_PER_DAY, SECS_PER_HOUR};

    const TUESDAY: i64 = SECS_PER_DAY; // day index 2
    const SATURDAY: i64 = 5 * SECS_PER_DAY;

    #[test]
    fn weekday_demand_is_bimodal() {
        let at = |h: i64| demand_intensity(TUESDAY + h * SECS_PER_HOUR);
        assert!(at(8) > at(11), "morning peak should beat late morning");
        assert!(at(18) > at(15), "evening peak should beat mid afternoon");
        assert!(at(3) < 0.2, "night demand should be low");
    }

    #[test]
    fn weekend_demand_is_unimodal_midday() {
        let at = |h: i64| demand_intensity(SATURDAY + h * SECS_PER_HOUR);
        assert!(at(14) > at(8), "weekend midday beats weekend morning-rush hour");
        assert!(at(14) > at(20));
    }

    #[test]
    fn rush_hour_congestion_hits_arterials_hardest() {
        let rush = TUESDAY + 8 * SECS_PER_HOUR + 20 * 60;
        let night = TUESDAY + 3 * SECS_PER_HOUR;
        let primary_rush = congestion_factor(RoadKind::Primary, rush);
        let primary_night = congestion_factor(RoadKind::Primary, night);
        let resi_rush = congestion_factor(RoadKind::Residential, rush);
        assert!(primary_rush < primary_night, "arterial must slow at rush hour");
        assert!(primary_rush < resi_rush, "arterial slows more than residential");
        assert!(primary_night > 0.95, "free flow at night");
    }

    #[test]
    fn factor_stays_in_bounds() {
        for kind in RoadKind::ALL {
            for h in 0..24 {
                for day in [TUESDAY, SATURDAY] {
                    let f = congestion_factor(kind, day + h * SECS_PER_HOUR);
                    assert!((0.25..=1.0).contains(&f));
                }
            }
        }
    }
}
