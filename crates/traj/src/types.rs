//! Trajectory data types (Definitions 2 and 3 of the paper) and the
//! simulation clock.

use serde::{Deserialize, Serialize};
use start_roadnet::SegmentId;

/// Seconds since the dataset epoch (midnight of a Monday, so weekday math is
/// trivial and deterministic — no calendar library needed).
pub type Timestamp = i64;

pub const SECS_PER_MINUTE: i64 = 60;
pub const SECS_PER_HOUR: i64 = 3600;
pub const SECS_PER_DAY: i64 = 86_400;
pub const SECS_PER_WEEK: i64 = 7 * SECS_PER_DAY;

/// Minute-of-day index in `1..=1440`, the `mi(t)` function of §III-B1.
pub fn minute_index(t: Timestamp) -> u32 {
    (t.rem_euclid(SECS_PER_DAY) / SECS_PER_MINUTE) as u32 + 1
}

/// Day-of-week index in `1..=7` (1 = Monday), the `di(t)` function of §III-B1.
pub fn day_of_week_index(t: Timestamp) -> u32 {
    (t.rem_euclid(SECS_PER_WEEK) / SECS_PER_DAY) as u32 + 1
}

/// Whether a timestamp falls on Saturday or Sunday.
pub fn is_weekend(t: Timestamp) -> bool {
    day_of_week_index(t) >= 6
}

/// Hour of day `0..24` as a float (for congestion curves and Fig. 3 slices).
pub fn hour_of_day(t: Timestamp) -> f32 {
    (t.rem_euclid(SECS_PER_DAY)) as f32 / SECS_PER_HOUR as f32
}

/// One GPS sample `<lat, lon, t>` (Definition 2). Coordinates are local
/// projected meters, consistent with [`start_roadnet::Point`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    pub x: f64,
    pub y: f64,
    pub t: Timestamp,
}

/// A raw GPS trajectory (Definition 2) before map matching.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawTrajectory {
    pub points: Vec<GpsPoint>,
    pub driver: u32,
}

/// Transport mode, used by the Geolife-like transfer dataset (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TravelMode {
    CarTaxi,
    Bus,
    Bike,
    Walk,
}

impl TravelMode {
    pub const ALL: [TravelMode; 4] =
        [TravelMode::CarTaxi, TravelMode::Bus, TravelMode::Bike, TravelMode::Walk];

    pub fn class_index(self) -> usize {
        match self {
            TravelMode::CarTaxi => 0,
            TravelMode::Bus => 1,
            TravelMode::Bike => 2,
            TravelMode::Walk => 3,
        }
    }

    /// Typical speed ceiling in km/h; cars use the road limit instead.
    pub fn speed_cap_kmh(self) -> f32 {
        match self {
            TravelMode::CarTaxi => f32::INFINITY,
            TravelMode::Bus => 35.0,
            TravelMode::Bike => 16.0,
            TravelMode::Walk => 5.0,
        }
    }
}

/// A road-network constrained trajectory (Definition 3): a time-ordered
/// sequence of adjacent road segments with visit timestamps and the labels
/// used by the downstream tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trajectory {
    pub roads: Vec<SegmentId>,
    /// Visit timestamp of each road, same length as `roads`.
    pub times: Vec<Timestamp>,
    /// Driver id (multi-class label on Porto-mini, user filter on both).
    pub driver: u32,
    /// Whether the taxi carries passengers (binary label on BJ-mini).
    pub occupied: bool,
    /// Transport mode (label on Geolife-mini).
    pub mode: TravelMode,
    /// Ground-truth arrival time at the destination (departure is `times[0]`).
    pub arrival: Timestamp,
}

impl Trajectory {
    pub fn len(&self) -> usize {
        self.roads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roads.is_empty()
    }

    pub fn departure(&self) -> Timestamp {
        self.times[0]
    }

    /// Total travel time in seconds — the regression target of Eq. (16).
    pub fn travel_time_secs(&self) -> f32 {
        (self.arrival - self.departure()) as f32
    }

    pub fn origin(&self) -> SegmentId {
        self.roads[0]
    }

    pub fn destination(&self) -> SegmentId {
        *self.roads.last().expect("non-empty trajectory")
    }

    /// Number of hops (Fig. 3c buckets).
    pub fn hops(&self) -> usize {
        self.roads.len().saturating_sub(1)
    }

    /// A trajectory is a loop when it returns to its origin (§IV-A removes these).
    pub fn is_loop(&self) -> bool {
        self.roads.len() > 1 && self.origin() == self.destination()
    }

    /// Internal consistency: matching lengths and non-decreasing timestamps.
    pub fn validate(&self) -> Result<(), String> {
        if self.roads.is_empty() {
            return Err("empty trajectory".into());
        }
        if self.roads.len() != self.times.len() {
            return Err(format!(
                "roads ({}) and times ({}) length mismatch",
                self.roads.len(),
                self.times.len()
            ));
        }
        if self.times.windows(2).any(|w| w[1] < w[0]) {
            return Err("timestamps not sorted".into());
        }
        if self.arrival < *self.times.last().expect("non-empty") {
            return Err("arrival before last visit".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minute_and_day_indices_are_one_based() {
        assert_eq!(minute_index(0), 1);
        assert_eq!(minute_index(SECS_PER_DAY - 1), 1440);
        assert_eq!(day_of_week_index(0), 1); // Monday
        assert_eq!(day_of_week_index(5 * SECS_PER_DAY), 6); // Saturday
        assert!(is_weekend(6 * SECS_PER_DAY));
        assert!(!is_weekend(4 * SECS_PER_DAY));
    }

    #[test]
    fn indices_wrap_across_weeks() {
        let t = 3 * SECS_PER_WEEK + 2 * SECS_PER_DAY + 90 * SECS_PER_MINUTE;
        assert_eq!(day_of_week_index(t), 3); // Wednesday
        assert_eq!(minute_index(t), 91);
        assert!((hour_of_day(t) - 1.5).abs() < 1e-6);
    }

    fn traj(roads: &[u32], times: &[i64]) -> Trajectory {
        Trajectory {
            roads: roads.iter().map(|&r| SegmentId(r)).collect(),
            times: times.to_vec(),
            driver: 0,
            occupied: false,
            mode: TravelMode::CarTaxi,
            arrival: *times.last().unwrap() + 30,
        }
    }

    #[test]
    fn validation_catches_misordered_times() {
        let good = traj(&[1, 2, 3], &[0, 10, 20]);
        assert!(good.validate().is_ok());
        let bad = traj(&[1, 2, 3], &[0, 20, 10]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn loop_detection_and_travel_time() {
        let looped = traj(&[5, 2, 5], &[0, 10, 20]);
        assert!(looped.is_loop());
        let t = traj(&[1, 2], &[100, 160]);
        assert_eq!(t.travel_time_secs(), 90.0);
        assert_eq!(t.hops(), 1);
    }
}
