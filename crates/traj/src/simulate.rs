//! Congestion-aware trajectory simulator — the stand-in for the BJ/Porto
//! taxi fleets (DESIGN.md §1, §4).
//!
//! Each simulated driver has a home area, a persistent route-choice bias and
//! a driving-style factor, so driver identity is *learnable* from
//! trajectories (the Porto multi-class task). Departure times follow the
//! bimodal weekday demand curve; realized travel times follow the congestion
//! model, so ETA depends on departure time and route (the BJ regression
//! task); the occupied flag correlates with hour and origin region (the BJ
//! binary task).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use start_roadnet::{dijkstra, Point, RoadNetwork, SegmentId};

use crate::congestion::{congestion_factor, demand_intensity};
use crate::types::{GpsPoint, RawTrajectory, Timestamp, Trajectory, TravelMode, SECS_PER_DAY};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub num_trajectories: usize,
    pub num_drivers: usize,
    /// Dataset time span in days; day 0 is a Monday.
    pub days: i64,
    /// Bounds on trajectory hop length, pre-filtering.
    pub min_len: usize,
    pub max_len: usize,
    /// Mode mixture (weight per mode). Taxis-only by default.
    pub mode_weights: Vec<(TravelMode, f64)>,
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_trajectories: 4000,
            num_drivers: 60,
            days: 28,
            min_len: 6,
            max_len: 128,
            mode_weights: vec![(TravelMode::CarTaxi, 1.0)],
            seed: 4242,
        }
    }
}

impl SimConfig {
    /// A small multi-modal config for the Geolife-like transfer dataset.
    pub fn geolife_like() -> Self {
        Self {
            num_trajectories: 900,
            num_drivers: 24,
            days: 28,
            mode_weights: vec![
                (TravelMode::CarTaxi, 0.30),
                (TravelMode::Walk, 0.25),
                (TravelMode::Bike, 0.25),
                (TravelMode::Bus, 0.20),
            ],
            seed: 20070101,
            ..Self::default()
        }
    }
}

struct Driver {
    home: SegmentId,
    /// Deterministic per-driver edge-cost perturbation seed.
    bias_seed: u64,
    /// Multiplier on driving speed (style), ~N(1, 0.05).
    style: f32,
}

/// Deterministic per-(driver, segment) cost multiplier in [0.75, 1.25].
/// This is what gives each driver a persistent, learnable route signature.
fn driver_edge_bias(bias_seed: u64, seg: SegmentId) -> f64 {
    // splitmix64
    let mut z = bias_seed ^ (seg.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.75 + 0.5 * (z as f64 / u64::MAX as f64)
}

/// The trajectory simulator.
pub struct Simulator<'n> {
    net: &'n RoadNetwork,
    cfg: SimConfig,
    drivers: Vec<Driver>,
    center: Point,
    max_radius: f64,
}

impl<'n> Simulator<'n> {
    pub fn new(net: &'n RoadNetwork, cfg: SimConfig) -> Self {
        assert!(net.num_segments() > 0, "empty road network");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = net.num_segments();
        let drivers = (0..cfg.num_drivers)
            .map(|_| Driver {
                home: SegmentId(rng.gen_range(0..n) as u32),
                bias_seed: rng.gen(),
                style: 1.0 + rng.gen_range(-0.08..0.08f32),
            })
            .collect();
        // City centroid for the occupancy hotspot.
        let (mut cx, mut cy, mut max_radius) = (0.0, 0.0, 0.0f64);
        for s in net.segments() {
            let m = s.midpoint();
            cx += m.x;
            cy += m.y;
        }
        let center = Point::new(cx / n as f64, cy / n as f64);
        for s in net.segments() {
            max_radius = max_radius.max(s.midpoint().distance(center));
        }
        Self { net, cfg, drivers, center, max_radius: max_radius.max(1.0) }
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Traversal duration of one segment entered at time `t` (seconds).
    fn segment_duration(
        &self,
        seg: SegmentId,
        t: Timestamp,
        mode: TravelMode,
        style: f32,
        rng: &mut StdRng,
    ) -> f64 {
        let s = self.net.segment(seg);
        let base_kmh = s.max_speed_kmh.min(mode.speed_cap_kmh());
        let factor = if mode == TravelMode::CarTaxi || mode == TravelMode::Bus {
            congestion_factor(s.kind, t)
        } else {
            1.0 // bikes and pedestrians do not suffer car congestion
        };
        let speed_mps = (base_kmh * factor * style / 3.6).max(0.5);
        // Log-normal noise, sigma ~ 0.15.
        let noise = (rng.gen_range(-0.15..0.15f32) + rng.gen_range(-0.15..0.15f32)).exp();
        (s.length_m as f64 / speed_mps as f64) * noise as f64
    }

    /// Sample a departure time from the demand curve by rejection sampling.
    fn sample_departure(&self, rng: &mut StdRng) -> Timestamp {
        loop {
            let t = rng.gen_range(0..self.cfg.days * SECS_PER_DAY);
            if rng.gen::<f32>() < demand_intensity(t) {
                return t;
            }
        }
    }

    /// Sample one trajectory; `None` when the OD draw fails length bounds.
    fn sample_one(&self, rng: &mut StdRng) -> Option<Trajectory> {
        let n = self.net.num_segments();
        let driver_idx = rng.gen_range(0..self.drivers.len());
        let driver = &self.drivers[driver_idx];
        let mode = self.sample_mode(rng);

        // Origin: near home 60% of the time; else uniform.
        let origin = if rng.gen::<f64>() < 0.6 {
            let home_mid = self.net.segment(driver.home).midpoint();
            let radius = self.max_radius * 0.25;
            let near = self.net.segments_near(home_mid, radius);
            if near.is_empty() {
                driver.home
            } else {
                near[rng.gen_range(0..near.len())].0
            }
        } else {
            SegmentId(rng.gen_range(0..n) as u32)
        };
        let dest = SegmentId(rng.gen_range(0..n) as u32);
        if dest == origin {
            return None;
        }

        // Route choice: expected-time Dijkstra with persistent driver bias.
        let departure = self.sample_departure(rng);
        let bias_seed = driver.bias_seed;
        let path = dijkstra(self.net, origin, dest, |_, next| {
            let s = self.net.segment(next);
            let expected = s.free_flow_secs() as f64 / congestion_factor(s.kind, departure) as f64;
            expected * driver_edge_bias(bias_seed, next)
        })?;
        if path.segments.len() < self.cfg.min_len || path.segments.len() > self.cfg.max_len {
            return None;
        }

        // Realize per-road visit timestamps under the congestion model.
        let mut times = Vec::with_capacity(path.segments.len());
        let mut t = departure as f64;
        for &seg in &path.segments {
            times.push(t as Timestamp);
            t += self.segment_duration(seg, t as Timestamp, mode, driver.style, rng);
        }
        let arrival = t as Timestamp;

        // Occupancy: peak-hour + central-origin trips are most likely occupied.
        let origin_mid = self.net.segment(origin).midpoint();
        let central = origin_mid.distance(self.center) < self.max_radius * 0.4;
        let demand = demand_intensity(departure);
        let p_occupied = 0.08 + 0.60 * demand + if central { 0.28 } else { 0.0 };
        let occupied = rng.gen::<f64>() < p_occupied as f64;

        let traj = Trajectory {
            roads: path.segments,
            times,
            driver: driver_idx as u32,
            occupied,
            mode,
            arrival,
        };
        debug_assert!(traj.validate().is_ok());
        Some(traj)
    }

    fn sample_mode(&self, rng: &mut StdRng) -> TravelMode {
        let total: f64 = self.cfg.mode_weights.iter().map(|(_, w)| w).sum();
        let mut draw = rng.gen::<f64>() * total;
        for &(mode, w) in &self.cfg.mode_weights {
            if draw < w {
                return mode;
            }
            draw -= w;
        }
        self.cfg.mode_weights.last().map(|&(m, _)| m).unwrap_or(TravelMode::CarTaxi)
    }

    /// Generate the full dataset (exactly `num_trajectories` accepted draws).
    pub fn generate(&self) -> Vec<Trajectory> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut out = Vec::with_capacity(self.cfg.num_trajectories);
        let mut attempts = 0usize;
        let max_attempts = self.cfg.num_trajectories * 200;
        while out.len() < self.cfg.num_trajectories && attempts < max_attempts {
            attempts += 1;
            if let Some(t) = self.sample_one(&mut rng) {
                out.push(t);
            }
        }
        assert!(
            out.len() == self.cfg.num_trajectories,
            "simulator accepted only {}/{} draws — OD length bounds too tight for this network",
            out.len(),
            self.cfg.num_trajectories
        );
        // Chronological order, as the paper's splits assume.
        out.sort_by_key(|t| t.departure());
        out
    }

    /// Render a road-constrained trajectory as noisy raw GPS samples
    /// (Definition 2) for the map-matching pipeline.
    pub fn to_raw_gps(
        &self,
        traj: &Trajectory,
        interval_secs: i64,
        noise_m: f64,
        rng: &mut StdRng,
    ) -> RawTrajectory {
        let mut points = Vec::new();
        let mut sample_t = traj.departure();
        for (i, &seg) in traj.roads.iter().enumerate() {
            let enter = traj.times[i];
            let exit = if i + 1 < traj.roads.len() { traj.times[i + 1] } else { traj.arrival };
            let s = self.net.segment(seg);
            while sample_t <= exit && (sample_t >= enter || i == 0) {
                let frac = if exit > enter {
                    (sample_t - enter) as f64 / (exit - enter) as f64
                } else {
                    0.0
                };
                let p = s.start.lerp(s.end, frac.clamp(0.0, 1.0));
                points.push(GpsPoint {
                    x: p.x + rng.gen_range(-noise_m..noise_m),
                    y: p.y + rng.gen_range(-noise_m..noise_m),
                    t: sample_t,
                });
                sample_t += interval_secs;
            }
        }
        RawTrajectory { points, driver: traj.driver }
    }
}

/// Mean observed traversal time per segment (the `t_his` of the Temporal
/// Shifting augmentation, §III-C2). Segments never traversed fall back to
/// their free-flow time.
pub fn historical_mean_durations(net: &RoadNetwork, trajectories: &[Trajectory]) -> Vec<f32> {
    let n = net.num_segments();
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u64; n];
    for t in trajectories {
        for i in 0..t.roads.len() {
            let exit = if i + 1 < t.roads.len() { t.times[i + 1] } else { t.arrival };
            let dur = (exit - t.times[i]) as f64;
            if dur >= 0.0 {
                sums[t.roads[i].index()] += dur;
                counts[t.roads[i].index()] += 1;
            }
        }
    }
    (0..n)
        .map(|i| {
            if counts[i] > 0 {
                (sums[i] / counts[i] as f64) as f32
            } else {
                net.segment(SegmentId(i as u32)).free_flow_secs()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{hour_of_day, is_weekend};
    use start_roadnet::synth::{generate_city, CityConfig};

    fn small_sim() -> (start_roadnet::City, SimConfig) {
        let city = generate_city("test", &CityConfig::tiny());
        let cfg =
            SimConfig { num_trajectories: 300, num_drivers: 8, days: 14, ..Default::default() };
        (city, cfg)
    }

    #[test]
    fn generated_trajectories_are_valid_paths() {
        let (city, cfg) = small_sim();
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        assert_eq!(data.len(), 300);
        for t in &data {
            assert!(t.validate().is_ok());
            assert!(city.net.is_path(&t.roads), "trajectory leaves the road graph");
            assert!(t.len() >= 6);
        }
    }

    #[test]
    fn departures_show_rush_hour_peaks() {
        let (city, cfg) = small_sim();
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        let weekday: Vec<_> = data.iter().filter(|t| !is_weekend(t.departure())).collect();
        let in_range = |t: f32, lo: f32, hi: f32| t >= lo && t < hi;
        let peak = weekday
            .iter()
            .filter(|t| {
                let h = hour_of_day(t.departure());
                in_range(h, 7.0, 10.0) || in_range(h, 17.0, 20.0)
            })
            .count();
        let night =
            weekday.iter().filter(|t| in_range(hour_of_day(t.departure()), 0.0, 6.0)).count();
        // 6 peak hours should hold far more than 6 night hours.
        assert!(peak > night * 2, "peak {peak} vs night {night}");
    }

    #[test]
    fn rush_hour_trips_are_slower() {
        let (city, cfg) = small_sim();
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        // Seconds per hop, peak vs off-peak (car only).
        let mut peak = (0.0f64, 0usize);
        let mut off = (0.0f64, 0usize);
        for t in &data {
            let h = hour_of_day(t.departure());
            let per_hop = t.travel_time_secs() as f64 / t.hops() as f64;
            if !is_weekend(t.departure()) && (7.5..9.5).contains(&h) {
                peak.0 += per_hop;
                peak.1 += 1;
            } else if (10.0..16.0).contains(&h) || h < 6.0 {
                off.0 += per_hop;
                off.1 += 1;
            }
        }
        assert!(peak.1 > 5 && off.1 > 5, "not enough samples: {} {}", peak.1, off.1);
        let peak_avg = peak.0 / peak.1 as f64;
        let off_avg = off.0 / off.1 as f64;
        assert!(peak_avg > off_avg * 1.05, "peak {peak_avg:.1} vs off {off_avg:.1} s/hop");
    }

    #[test]
    fn drivers_have_distinct_route_biases() {
        let a: Vec<f64> = (0..50).map(|i| driver_edge_bias(1, SegmentId(i))).collect();
        let b: Vec<f64> = (0..50).map(|i| driver_edge_bias(2, SegmentId(i))).collect();
        assert_ne!(a, b);
        assert!(a.iter().all(|v| (0.75..=1.25).contains(v)));
        // Deterministic.
        assert_eq!(driver_edge_bias(1, SegmentId(3)), driver_edge_bias(1, SegmentId(3)));
    }

    #[test]
    fn raw_gps_stays_near_route() {
        let (city, cfg) = small_sim();
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let raw = sim.to_raw_gps(&data[0], 15, 8.0, &mut rng);
        assert!(raw.points.len() >= 2, "need multiple GPS samples");
        for p in &raw.points {
            // Every GPS point should be within noise+segment distance of the route.
            let best = data[0]
                .roads
                .iter()
                .map(|&s| city.net.segment(s).project(Point::new(p.x, p.y)).1)
                .fold(f64::INFINITY, f64::min);
            assert!(best < 50.0, "GPS point {best} m from route");
        }
    }

    #[test]
    fn historical_means_cover_traversed_segments() {
        let (city, cfg) = small_sim();
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        let means = historical_mean_durations(&city.net, &data);
        assert_eq!(means.len(), city.net.num_segments());
        assert!(means.iter().all(|m| *m > 0.0 && m.is_finite()));
    }

    #[test]
    fn multimodal_config_produces_all_modes() {
        let city = generate_city("test", &CityConfig::tiny());
        let cfg = SimConfig { num_trajectories: 200, num_drivers: 8, ..SimConfig::geolife_like() };
        let sim = Simulator::new(&city.net, cfg);
        let data = sim.generate();
        let modes: std::collections::HashSet<_> = data.iter().map(|t| t.mode).collect();
        assert_eq!(modes.len(), 4, "all four modes should appear");
        // Walking trips must be slower per meter than car trips.
        let speed = |t: &Trajectory| {
            let dist: f32 = t.roads.iter().map(|&r| city.net.segment(r).length_m).sum();
            dist / t.travel_time_secs()
        };
        let avg = |m: TravelMode| {
            let xs: Vec<f32> = data.iter().filter(|t| t.mode == m).map(speed).collect();
            xs.iter().sum::<f32>() / xs.len() as f32
        };
        assert!(avg(TravelMode::CarTaxi) > avg(TravelMode::Walk) * 2.0);
    }
}
