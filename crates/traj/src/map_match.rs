//! HMM map matching (§II-A, reference [3] of the paper).
//!
//! Aligns raw GPS points with road segments: hidden states are candidate
//! segments per point, emission probability decays with the point-to-segment
//! distance (Gaussian), and transition probability compares the on-network
//! route distance between consecutive candidates with the straight-line
//! distance (exponential), exactly the Newson-Krumm / FMM recipe. Decoding
//! is Viterbi; the resulting segment sequence is deduplicated and stitched
//! into a connected path with shortest-path gap filling.

use start_roadnet::{dijkstra, Point, RoadNetwork, SegmentId};

use crate::types::{RawTrajectory, Timestamp, Trajectory, TravelMode};

/// Map-matching parameters.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Candidate search radius in meters.
    pub radius_m: f64,
    /// Max candidates per GPS point.
    pub max_candidates: usize,
    /// GPS noise standard deviation (emission model), meters.
    pub sigma_m: f64,
    /// Transition tolerance (route-vs-euclid discrepancy scale), meters.
    pub beta_m: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self { radius_m: 60.0, max_candidates: 4, sigma_m: 10.0, beta_m: 80.0 }
    }
}

/// Errors from [`map_match`].
#[derive(Debug, PartialEq, Eq)]
pub enum MatchError {
    /// Fewer than two GPS points.
    TooShort,
    /// Some GPS point had no candidate segment within the radius.
    NoCandidates { point_index: usize },
    /// The Viterbi lattice broke (no connected transition anywhere).
    Disconnected,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::TooShort => write!(f, "trajectory has fewer than two GPS points"),
            MatchError::NoCandidates { point_index } => {
                write!(f, "no road within radius of GPS point {point_index}")
            }
            MatchError::Disconnected => write!(f, "no connected road path explains the GPS trace"),
        }
    }
}

impl std::error::Error for MatchError {}

/// Route distance (meters) between two segments, bounded to keep the lattice
/// cheap; `None` when unreachable within the bound.
fn route_distance(net: &RoadNetwork, from: SegmentId, to: SegmentId, bound: f64) -> Option<f64> {
    if from == to {
        return Some(0.0);
    }
    let path = dijkstra(net, from, to, |_, next| net.segment(next).length_m as f64)?;
    (path.cost <= bound).then_some(path.cost)
}

/// Match a raw GPS trajectory onto the road network, producing the
/// road-network constrained trajectory of Definition 3.
pub fn map_match(
    net: &RoadNetwork,
    raw: &RawTrajectory,
    cfg: &MatchConfig,
) -> Result<Trajectory, MatchError> {
    if raw.points.len() < 2 {
        return Err(MatchError::TooShort);
    }
    // Candidate states per point.
    let mut candidates: Vec<Vec<(SegmentId, f64)>> = Vec::with_capacity(raw.points.len());
    for (i, p) in raw.points.iter().enumerate() {
        let mut near = net.segments_near(Point::new(p.x, p.y), cfg.radius_m);
        near.truncate(cfg.max_candidates);
        if near.is_empty() {
            return Err(MatchError::NoCandidates { point_index: i });
        }
        candidates.push(near);
    }

    // Viterbi in log space.
    let emission = |dist: f64| -0.5 * (dist / cfg.sigma_m).powi(2);
    let mut scores: Vec<f64> = candidates[0].iter().map(|&(_, d)| emission(d)).collect();
    let mut backptr: Vec<Vec<usize>> = Vec::with_capacity(candidates.len());

    for t in 1..candidates.len() {
        let p_prev = &raw.points[t - 1];
        let p_cur = &raw.points[t];
        let euclid = Point::new(p_prev.x, p_prev.y).distance(Point::new(p_cur.x, p_cur.y));
        let bound = euclid * 4.0 + 500.0;
        let mut new_scores = vec![f64::NEG_INFINITY; candidates[t].len()];
        let mut ptrs = vec![0usize; candidates[t].len()];
        for (j, &(cand, dist)) in candidates[t].iter().enumerate() {
            let emit = emission(dist);
            for (i, &(prev_cand, _)) in candidates[t - 1].iter().enumerate() {
                if scores[i] == f64::NEG_INFINITY {
                    continue;
                }
                let Some(route) = route_distance(net, prev_cand, cand, bound) else {
                    continue;
                };
                let trans = -((route - euclid).abs() / cfg.beta_m);
                let s = scores[i] + trans + emit;
                if s > new_scores[j] {
                    new_scores[j] = s;
                    ptrs[j] = i;
                }
            }
        }
        if new_scores.iter().all(|s| *s == f64::NEG_INFINITY) {
            return Err(MatchError::Disconnected);
        }
        scores = new_scores;
        backptr.push(ptrs);
    }

    // Backtrace.
    let mut best = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    let mut state_seq = vec![candidates[candidates.len() - 1][best].0];
    let mut times = vec![raw.points[raw.points.len() - 1].t];
    for t in (0..backptr.len()).rev() {
        best = backptr[t][best];
        state_seq.push(candidates[t][best].0);
        times.push(raw.points[t].t);
    }
    state_seq.reverse();
    times.reverse();

    // Deduplicate consecutive repeats, keeping first-visit timestamps, then
    // stitch non-adjacent hops with shortest paths (interpolated times).
    let mut roads: Vec<SegmentId> = Vec::with_capacity(state_seq.len());
    let mut visit_times: Vec<Timestamp> = Vec::with_capacity(state_seq.len());
    for (seg, t) in state_seq.into_iter().zip(times) {
        if roads.last() == Some(&seg) {
            continue;
        }
        if let Some(&prev) = roads.last() {
            if !net.successors(prev).contains(&seg) {
                if let Some(path) =
                    dijkstra(net, prev, seg, |_, next| net.segment(next).length_m as f64)
                {
                    let t_prev = *visit_times.last().expect("non-empty");
                    let gap = path.segments.len() - 1;
                    for (k, &mid) in path.segments[1..path.segments.len() - 1].iter().enumerate() {
                        roads.push(mid);
                        let frac = (k + 1) as f64 / gap as f64;
                        visit_times.push(t_prev + ((t - t_prev) as f64 * frac) as Timestamp);
                    }
                } else {
                    return Err(MatchError::Disconnected);
                }
            }
        }
        roads.push(seg);
        visit_times.push(t);
    }

    let arrival = *visit_times.last().expect("non-empty");
    Ok(Trajectory {
        roads,
        times: visit_times,
        driver: raw.driver,
        occupied: false,
        mode: TravelMode::CarTaxi,
        arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{SimConfig, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use start_roadnet::synth::{generate_city, CityConfig};

    #[test]
    fn too_short_rejected() {
        let city = generate_city("t", &CityConfig::tiny());
        let raw = RawTrajectory { points: vec![], driver: 0 };
        assert!(matches!(
            map_match(&city.net, &raw, &MatchConfig::default()),
            Err(MatchError::TooShort)
        ));
    }

    #[test]
    fn far_away_point_reports_no_candidates() {
        let city = generate_city("t", &CityConfig::tiny());
        let raw = RawTrajectory {
            points: vec![
                crate::types::GpsPoint { x: 1e7, y: 1e7, t: 0 },
                crate::types::GpsPoint { x: 1e7, y: 1e7, t: 15 },
            ],
            driver: 0,
        };
        assert!(matches!(
            map_match(&city.net, &raw, &MatchConfig::default()),
            Err(MatchError::NoCandidates { .. })
        ));
    }

    #[test]
    fn recovers_simulated_route() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 20, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let mut rng = StdRng::seed_from_u64(11);
        let mut recovered = 0.0;
        let mut total = 0.0;
        for traj in data.iter().take(8) {
            let raw = sim.to_raw_gps(traj, 15, 5.0, &mut rng);
            if raw.points.len() < 3 {
                continue;
            }
            let matched = map_match(&city.net, &raw, &MatchConfig::default()).expect("match");
            assert!(matched.validate().is_ok());
            assert!(city.net.is_path(&matched.roads), "matched output must be connected");
            // Route recovery: fraction of true roads present in the match.
            let set: std::collections::HashSet<_> = matched.roads.iter().collect();
            let hit = traj.roads.iter().filter(|r| set.contains(r)).count();
            recovered += hit as f64;
            total += traj.roads.len() as f64;
        }
        assert!(total > 0.0);
        let recall = recovered / total;
        assert!(recall > 0.7, "route recovery too low: {recall:.2}");
    }
}
