//! Executable concurrency model for the sharded-LRU [`EmbeddingCache`],
//! explored by the `start_sync` model checker. The real cache type runs
//! under the checker (its `Mutex` shards and hit/miss atomics are shim
//! primitives), so every interleaving of concurrent inserts and lookups is
//! checked for deadlock and for snapshot coherence.
//!
//! CI floor: at least 1,000 distinct clean schedules, pinned seeds.

use start_core::{EmbeddingCache, Fingerprint};
use start_sync::model::{check, spawn_named, ModelConfig};
use start_sync::Arc;

const MIN_SCHEDULES: usize = 1_000;

fn cfg() -> ModelConfig {
    ModelConfig { max_schedules: 1_500, random_iters: 200, ..ModelConfig::default() }
}

/// Two threads populate disjoint fingerprints on a 2-shard cache. Whatever
/// the interleaving: every entry lands, every lookup hits, and the counter
/// snapshot is exact after join.
#[test]
fn cache_shard_insert_get_model_is_clean() {
    let report = check(&cfg(), || {
        let cache = Arc::new(EmbeddingCache::with_shards(8, 2));
        let c1 = Arc::clone(&cache);
        let t1 = spawn_named("insert-1", move || {
            c1.insert(Fingerprint(1), vec![1.0]);
            c1.insert(Fingerprint(3), vec![3.0]);
            assert_eq!(c1.get(Fingerprint(1)), Some(vec![1.0]), "own insert must hit");
            assert_eq!(c1.get(Fingerprint(3)), Some(vec![3.0]), "own insert must hit");
        });
        let c2 = Arc::clone(&cache);
        let t2 = spawn_named("insert-2", move || {
            c2.insert(Fingerprint(2), vec![2.0]);
            c2.insert(Fingerprint(4), vec![4.0]);
            assert_eq!(c2.get(Fingerprint(2)), Some(vec![2.0]), "own insert must hit");
            assert_eq!(c2.get(Fingerprint(4)), Some(vec![4.0]), "own insert must hit");
        });
        let _ = t1.join();
        let _ = t2.join();
        for fp in 1..=4u128 {
            assert_eq!(cache.get(Fingerprint(fp)), Some(vec![fp as f32]));
        }
        assert_eq!(cache.get(Fingerprint(5)), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.hits, 8, "hit tally lost under contention");
        assert_eq!(stats.misses, 1);
    });
    report.assert_clean();
    assert!(
        report.distinct_schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.distinct_schedules
    );
}

/// Racing writers on the SAME fingerprint with a racing reader: last write
/// wins per schedule, but every schedule must end with exactly one entry
/// holding one of the two written values — never a torn mix, never a
/// duplicate — and the reader only ever observes a complete value.
#[test]
fn cache_same_key_write_race_model_is_clean() {
    let report = check(&cfg(), || {
        let cache = Arc::new(EmbeddingCache::with_shards(4, 2));
        let ok = |v: &Option<Vec<f32>>| match v {
            None => true,
            Some(e) => *e == vec![1.0, 1.0] || *e == vec![2.0, 2.0],
        };
        let c1 = Arc::clone(&cache);
        let t1 = spawn_named("writer-a", move || {
            c1.insert(Fingerprint(9), vec![1.0, 1.0]);
            assert!(ok(&c1.get(Fingerprint(9))), "torn read");
            c1.insert(Fingerprint(9), vec![1.0, 1.0]);
        });
        let c2 = Arc::clone(&cache);
        let t2 = spawn_named("writer-b", move || {
            c2.insert(Fingerprint(9), vec![2.0, 2.0]);
            assert!(ok(&c2.get(Fingerprint(9))), "torn read");
            c2.insert(Fingerprint(9), vec![2.0, 2.0]);
        });
        let c3 = Arc::clone(&cache);
        let t3 = spawn_named("reader", move || {
            assert!(ok(&c3.get(Fingerprint(9))), "torn read");
            assert!(ok(&c3.get(Fingerprint(9))), "torn read");
        });
        let _ = t1.join();
        let _ = t2.join();
        let _ = t3.join();
        assert_eq!(cache.len(), 1, "same-key race must not duplicate the entry");
        let got = cache.get(Fingerprint(9));
        assert!(got.is_some() && ok(&got), "torn value escaped the shard lock: {got:?}");
    });
    report.assert_clean();
    assert!(
        report.distinct_schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.distinct_schedules
    );
}
