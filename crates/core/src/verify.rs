//! Registered symbolic tape families for the START model zoo
//! (`start-analysis verify`; DESIGN.md §15).
//!
//! Each family is a no-data tracing constructor ([`TapeFamily`]): it owns a
//! deterministic fixture (the [`StandardShard`] city, model, and simulated
//! trajectories) and records the *exact* tape its training or serving loop
//! builds, at a caller-chosen size knob `n`. The symbolic verifier traces
//! each family at several anchor sizes and proves shape soundness, gradient
//! connectivity, and the absence of statically reachable numerical hazards
//! — before any real data exists.
//!
//! The size knob per family:
//! * `start/pretrain` — shard size (trajectories per shard). Span masking
//!   makes the tape structure data-dependent, so this family exercises the
//!   verifier's per-anchor fallback path by design;
//! * `start/eta`, `start/classify` — sequence length of a fixed 2-trajectory
//!   fine-tuning batch;
//! * `start/encode` — sequence length of the serve-path (eval mode) encode
//!   graph.
//!
//! [`broken_families`] returns the deliberately malformed configurations
//! from the acceptance criteria (mismatched head dimension; fully detached
//! target tower); tests assert they fail with the expected Error findings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::Linear;
use start_nn::params::{Init, ParamId, ParamStore};
use start_nn::symbolic::TapeFamily;
use start_nn::Array;
use start_sync::Arc;
use start_traj::{TrajView, Trajectory};

use crate::model::{clamp_view, StartModel};
use crate::pretrain::{build_shard_loss, StandardShard};

/// Classes of the synthetic classification head.
const NUM_CLASSES: usize = 4;

/// Shared fixture for every START family: the standard pretrain shard
/// (synthetic city, test-scale model, 64 simulated trajectories) plus the
/// fine-tuning heads the downstream families record through. One build
/// serves all families; heads live in the model's own store so each graph
/// binds a single parameter store.
pub struct VerifyFixture {
    shard: StandardShard,
    eta_head: Linear,
    cls_head: Linear,
    /// A head weight whose input width disagrees with the encoder output —
    /// recorded only by the broken family, where the eager matmul assert
    /// must fire. Kept as a raw param (not a [`Linear`]) so the record-time
    /// failure is the matmul shape assert in every build profile.
    bad_head: ParamId,
}

impl VerifyFixture {
    pub fn build() -> Arc<Self> {
        let mut shard = StandardShard::build();
        let mut rng = StdRng::seed_from_u64(41);
        let dim = shard.model.cfg.dim;
        let store = &mut shard.model.store;
        let eta_head = Linear::new(store, &mut rng, "verify_eta_head", dim, 1, true);
        let cls_head = Linear::new(store, &mut rng, "verify_cls_head", dim, NUM_CLASSES, true);
        let bad_head =
            store.param("verify_bad_head.w".to_string(), dim + 3, 1, Init::XavierUniform, &mut rng);
        Arc::new(Self { shard, eta_head, cls_head, bad_head })
    }

    fn model(&self) -> &StartModel {
        &self.shard.model
    }

    /// A deterministic trajectory of exactly `n` roads, built by cycling a
    /// simulated trajectory's roads (so every id is valid for the fixture's
    /// road network) with a fresh 30-second timestamp grid.
    fn resized_traj(&self, source: usize, n: usize) -> Trajectory {
        let t = &self.shard.train[source];
        assert!(n >= 1 && !t.roads.is_empty());
        let roads = (0..n).map(|i| t.roads[i % t.roads.len()]).collect();
        let start = t.times[0];
        let times = (0..n).map(|i| start + i as i64 * 30).collect();
        Trajectory {
            roads,
            times,
            driver: t.driver,
            occupied: t.occupied,
            mode: t.mode,
            arrival: start + n as i64 * 30,
        }
    }

    /// Encode a fixed 2-trajectory batch of length-`n` views and return the
    /// stacked `(2, d)` pooled representations — the shared front half of
    /// both fine-tuning families.
    fn record_pooled_batch<'s>(
        &'s self,
        g: &mut Graph<'s>,
        n: usize,
        departure_only: bool,
    ) -> NodeId {
        let mut rng = StdRng::seed_from_u64(43);
        let model = self.model();
        let road_reprs = model.road_reprs(g);
        let mut pooled = Vec::new();
        for b in 0..2 {
            let traj = self.resized_traj(b, n);
            let view = if departure_only {
                StartModel::departure_only_view(&traj)
            } else {
                TrajView::identity(&traj)
            };
            let view = clamp_view(view, model.cfg.max_len);
            let enc = model.encode_view(g, &view, road_reprs, &mut rng);
            pooled.push(enc.pooled);
        }
        g.concat_rows(&pooled)
    }
}

/// Eq. 15 pre-training shard at shard size `n`.
pub struct PretrainFamily(pub Arc<VerifyFixture>);

impl TapeFamily for PretrainFamily {
    fn name(&self) -> String {
        "start/pretrain".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let fix = &self.0.shard;
        let mut rng = StdRng::seed_from_u64(fix.seed);
        let shard: Vec<usize> = (0..n.min(fix.train.len())).collect();
        match build_shard_loss(&fix.model, &fix.train, &fix.historical, g, &shard, &mut rng) {
            Some(res) => res.loss,
            None => panic!("standard pretrain shard of size {n} produced no loss"),
        }
    }
}

/// Travel-time fine-tuning step (frozen protocol's tape shape) at sequence
/// length `n`.
pub struct EtaFamily(pub Arc<VerifyFixture>);

impl TapeFamily for EtaFamily {
    fn name(&self) -> String {
        "start/eta".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let stacked = self.0.record_pooled_batch(g, n, true);
        let preds = self.0.eta_head.forward(g, stacked);
        g.mse_loss(preds, Array::from_vec(2, 1, vec![0.5, -0.5]))
    }
}

/// Classification fine-tuning step at sequence length `n`.
pub struct ClassifyFamily(pub Arc<VerifyFixture>);

impl TapeFamily for ClassifyFamily {
    fn name(&self) -> String {
        "start/classify".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let stacked = self.0.record_pooled_batch(g, n, false);
        let logits = self.0.cls_head.forward(g, stacked);
        g.cross_entropy_rows(logits, Arc::new(vec![0, 1]))
    }
}

/// Serve-path encode graph (eval mode, no loss) at sequence length `n`.
pub struct EncodeFamily(pub Arc<VerifyFixture>);

impl TapeFamily for EncodeFamily {
    fn name(&self) -> String {
        "start/encode".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn train(&self) -> bool {
        false
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let mut rng = StdRng::seed_from_u64(47);
        let model = self.0.model();
        let road_reprs = model.road_reprs(g);
        let traj = self.0.resized_traj(0, n);
        let view = clamp_view(TrajView::identity(&traj), model.cfg.max_len);
        model.encode_view(g, &view, road_reprs, &mut rng).pooled
    }
}

/// Every registered START family, sharing one fixture build.
pub fn symbolic_families() -> Vec<Box<dyn TapeFamily>> {
    let fix = VerifyFixture::build();
    vec![
        Box::new(PretrainFamily(fix.clone())),
        Box::new(EtaFamily(fix.clone())),
        Box::new(ClassifyFamily(fix.clone())),
        Box::new(EncodeFamily(fix)),
    ]
}

/// Broken config #1 (acceptance criteria): a fine-tuning head whose input
/// width disagrees with the encoder output dimension. The eager matmul
/// assert fires at record time; the verifier must surface it as a
/// RecordPanic error naming the offending shapes.
pub struct BrokenHeadFamily(pub Arc<VerifyFixture>);

impl TapeFamily for BrokenHeadFamily {
    fn name(&self) -> String {
        "start/broken-head-dim".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let stacked = self.0.record_pooled_batch(g, n, true);
        let w = g.param(self.0.bad_head);
        let preds = g.matmul(stacked, w);
        g.mse_loss(preds, Array::from_vec(2, 1, vec![0.5, -0.5]))
    }
}

/// Broken config #2 (acceptance criteria): the whole target tower —
/// encoder *and* head — is detached behind `stop_gradient`, so no parameter
/// receives gradient and the verifier must report the loss as disconnected.
pub struct DetachedTowerFamily(pub Arc<VerifyFixture>);

impl TapeFamily for DetachedTowerFamily {
    fn name(&self) -> String {
        "start/broken-detached-tower".to_string()
    }

    fn store(&self) -> &ParamStore {
        &self.0.model().store
    }

    fn record<'s>(&'s self, g: &mut Graph<'s>, n: usize) -> NodeId {
        let stacked = self.0.record_pooled_batch(g, n, true);
        let preds = self.0.eta_head.forward(g, stacked);
        let detached = g.stop_gradient(preds);
        g.mse_loss(detached, Array::from_vec(2, 1, vec![0.5, -0.5]))
    }
}

/// The deliberately malformed families, for tests and demonstrations. Not
/// part of [`symbolic_families`]: `start-analysis verify` must be clean on
/// main.
pub fn broken_families(fix: Arc<VerifyFixture>) -> Vec<Box<dyn TapeFamily>> {
    vec![Box::new(BrokenHeadFamily(fix.clone())), Box::new(DetachedTowerFamily(fix))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_nn::symbolic::{verify_family, HazardClass, SymFindingKind, DEFAULT_ANCHORS};

    /// All four registered families verify with zero Error findings at the
    /// default anchors — the CI gate's contract.
    #[test]
    fn registered_families_verify_clean() {
        for fam in symbolic_families() {
            let report = verify_family(fam.as_ref(), DEFAULT_ANCHORS);
            assert!(
                !report.has_errors(),
                "{} must verify without errors:\n{report}",
                report.family
            );
            // No statically reachable hazard of any severity either: the
            // encoder's normalizing layers must keep the intervals finite.
            assert!(
                report
                    .findings
                    .iter()
                    .all(|f| !matches!(f.kind, SymFindingKind::Hazard(HazardClass::LogZero))),
                "{} leaked a log-zero hazard:\n{report}",
                report.family
            );
        }
    }

    /// The mismatched-head-dim config fails with a record panic naming the
    /// shapes, and the detached tower fails as a disconnected loss.
    #[test]
    fn broken_families_fail_with_named_findings() {
        let fix = VerifyFixture::build();
        for fam in broken_families(fix) {
            let report = verify_family(fam.as_ref(), DEFAULT_ANCHORS);
            assert!(report.has_errors(), "{} must fail verification:\n{report}", report.family);
            match report.family.as_str() {
                "start/broken-head-dim" => {
                    let f = report
                        .findings
                        .iter()
                        .find(|f| f.kind == SymFindingKind::RecordPanic)
                        .unwrap_or_else(|| panic!("no record panic in:\n{report}"));
                    assert!(
                        f.message.contains("matmul shape mismatch"),
                        "finding should name the op and shapes: {f}"
                    );
                }
                "start/broken-detached-tower" => {
                    let f = report
                        .findings
                        .iter()
                        .find(|f| f.kind == SymFindingKind::LossDisconnected)
                        .unwrap_or_else(|| panic!("no disconnection finding in:\n{report}"));
                    assert!(
                        f.message.contains("stop_gradient"),
                        "finding should point at the detachment: {f}"
                    );
                }
                other => panic!("unexpected broken family {other}"),
            }
        }
    }
}
