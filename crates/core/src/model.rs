//! The START model (§III): TPE-GAT road stage + Time-Aware Trajectory
//! Encoder (TAT-Enc) with `[CLS]` pooling.

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::layers::{sinusoidal_positional_encoding, Embedding, Linear, TransformerEncoder};
use start_nn::params::{Init, ParamId, ParamStore};
use start_nn::Array;
use start_roadnet::{NodeEmbeddings, RoadNetwork, TransferMatrix};
use start_traj::{day_of_week_index, minute_index, TrajView, Trajectory};

use crate::config::{RoadEncoder, StartConfig};
use crate::interval::IntervalModule;
use crate::tpe_gat::TpeGat;

/// Stage one: how road ids become road representation vectors `r_i`.
enum RoadStage {
    /// TPE-GAT (with or without transfer probabilities).
    Gat(TpeGat),
    /// Learnable embedding table (`w/o TPE-GAT` / `w/ Node2vec` ablations).
    Table(Embedding),
}

/// An encoded trajectory view inside a live graph.
pub struct EncodedView {
    /// `(T+1, d)` hidden states; row 0 is the `[CLS]` placeholder.
    pub hidden: NodeId,
    /// `(1, d)` pooled trajectory representation `p_i` (§III-B3).
    pub pooled: NodeId,
}

/// The complete START model. Owns its [`ParamStore`]; the store is borrowed
/// immutably during forward passes, so batches of inference graphs can run on
/// worker threads concurrently.
pub struct StartModel {
    pub cfg: StartConfig,
    pub store: ParamStore,
    road_stage: RoadStage,
    minute_emb: Embedding,
    day_emb: Embedding,
    cls_token: ParamId,
    mask_token: ParamId,
    /// Sinusoidal `pe_i` of Eq. 5, rows `0..=max_len` (row 0 serves `[CLS]`).
    pe: Array,
    encoder: TransformerEncoder,
    interval: IntervalModule,
    /// Masked-road prediction head `W_m, b_m` (Eq. 12).
    mask_head: Linear,
    num_roads: usize,
}

/// Special index 0 in the minute/day tables is the `[MASKT]` token (§III-C1),
/// so real indexes 1..=1440 / 1..=7 map directly.
const MASKT: u32 = 0;

impl StartModel {
    /// Build a model over a road network. `transfer` feeds TPE-GAT's Eq. 2
    /// term; `node2vec_init` seeds the embedding table for the `w/ Node2vec`
    /// ablation (must have `dim` columns when provided).
    pub fn new(
        cfg: StartConfig,
        net: &RoadNetwork,
        transfer: Option<&TransferMatrix>,
        node2vec_init: Option<&NodeEmbeddings>,
        seed: u64,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid StartConfig: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let num_roads = net.num_segments();
        let d = cfg.dim;

        let road_stage = match cfg.road_encoder {
            RoadEncoder::TpeGat => RoadStage::Gat(TpeGat::new(
                &mut store,
                &mut rng,
                "gat",
                net,
                transfer,
                d,
                &cfg.gat_heads,
            )),
            RoadEncoder::GatNoTransProb => RoadStage::Gat(TpeGat::new(
                &mut store,
                &mut rng,
                "gat",
                net,
                None,
                d,
                &cfg.gat_heads,
            )),
            RoadEncoder::RandomEmbedding => {
                RoadStage::Table(Embedding::new(&mut store, &mut rng, "road_emb", num_roads, d))
            }
            RoadEncoder::Node2VecEmbedding => {
                let emb = Embedding::new(&mut store, &mut rng, "road_emb", num_roads, d);
                let Some(init) = node2vec_init else {
                    panic!("RoadEncoder::Node2VecEmbedding requires node2vec_init embeddings")
                };
                assert_eq!(init.dim, d, "node2vec dim must equal model dim");
                let table = store.get_mut(emb.table_id());
                table.data_mut().copy_from_slice(init.data());
                RoadStage::Table(emb)
            }
        };

        let minute_emb = Embedding::new(&mut store, &mut rng, "minute_emb", 1441, d);
        let day_emb = Embedding::new(&mut store, &mut rng, "day_emb", 8, d);
        let cls_token = store.param("cls", 1, d, Init::Normal(0.02), &mut rng);
        let mask_token = store.param("mask_road", 1, d, Init::Normal(0.02), &mut rng);
        let pe = sinusoidal_positional_encoding(cfg.max_len + 1, d);
        let encoder = TransformerEncoder::new(
            &mut store,
            &mut rng,
            "enc",
            cfg.encoder_layers,
            d,
            cfg.encoder_heads,
            cfg.ffn_hidden,
            cfg.dropout,
        );
        let interval = IntervalModule::new(
            &mut store,
            &mut rng,
            "interval",
            cfg.interval_hidden,
            cfg.interval_mode,
            cfg.use_log_decay,
            cfg.use_adaptive_interval,
        );
        let mask_head = Linear::new(&mut store, &mut rng, "mask_head", d, num_roads, true);

        Self {
            cfg,
            store,
            road_stage,
            minute_emb,
            day_emb,
            cls_token,
            mask_token,
            pe,
            encoder,
            interval,
            mask_head,
            num_roads,
        }
    }

    pub fn num_roads(&self) -> usize {
        self.num_roads
    }

    /// Stage one: the `(|V|, d)` road representation matrix, computed once
    /// per graph and shared by every trajectory in the batch.
    pub fn road_reprs(&self, g: &mut Graph) -> NodeId {
        match &self.road_stage {
            RoadStage::Gat(gat) => gat.forward(g),
            RoadStage::Table(emb) => g.param(emb.table_id()),
        }
    }

    /// Eq. 5: fused token embeddings `x_i = r_i + t_mi + t_di + pe_i` for a
    /// view, with `[CLS]` prepended and `[MASK]`/`[MASKT]` substitution at
    /// masked positions. Returns a `(T+1, d)` node.
    fn embed_view(
        &self,
        g: &mut Graph,
        view: &TrajView,
        road_reprs: NodeId,
        rng: &mut StdRng,
    ) -> NodeId {
        let t = view.len();
        assert!(t > 0 && t <= self.cfg.max_len, "view length {t} out of bounds");
        let d = self.cfg.dim;

        // Road vectors, with masked rows replaced by the [MASK] token.
        let ids: Vec<u32> = view.roads.iter().map(|r| r.0).collect();
        let gathered = g.gather_rows(road_reprs, Arc::new(ids));
        let roads = if view.masked.iter().any(|&m| m) {
            let keep = Array::from_vec(
                t,
                1,
                view.masked.iter().map(|&m| if m { 0.0 } else { 1.0 }).collect(),
            );
            let drop = Array::from_vec(
                t,
                1,
                view.masked.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect(),
            );
            let keep = g.input(keep);
            let drop = g.input(drop);
            let kept = g.mul_col(gathered, keep);
            let mask_tok = g.param(self.mask_token);
            let mask_rows = g.gather_rows(mask_tok, Arc::new(vec![0u32; t]));
            let masked_rows = g.mul_col(mask_rows, drop);
            g.add(kept, masked_rows)
        } else {
            gathered
        };

        let mut x = roads;
        if self.cfg.use_time_embedding {
            let minutes: Vec<u32> = view
                .roads
                .iter()
                .zip(&view.times)
                .zip(&view.masked)
                .map(|((_, &t), &m)| if m { MASKT } else { minute_index(t) })
                .collect();
            let days: Vec<u32> = view
                .times
                .iter()
                .zip(&view.masked)
                .map(|(&t, &m)| if m { MASKT } else { day_of_week_index(t) })
                .collect();
            let me = self.minute_emb.forward(g, &minutes);
            let de = self.day_emb.forward(g, &days);
            x = g.add(x, me);
            x = g.add(x, de);
        }
        // Positions 1..=T (0 is reserved for [CLS]).
        let pe = Array::from_fn(t, d, |r, c| self.pe.get(r + 1, c));
        let pe = g.input(pe);
        x = g.add(x, pe);

        // [CLS] row with its own position encoding.
        let cls = g.param(self.cls_token);
        let cls_pe = g.input(Array::from_fn(1, d, |_, c| self.pe.get(0, c)));
        let cls = g.add(cls, cls_pe);
        let mut full = g.concat_rows(&[cls, x]);

        // Embedding-level token dropout (the *Dropout* augmentation).
        if view.embed_dropout > 0.0 {
            full = g.dropout(full, view.embed_dropout, rng);
        }
        full
    }

    /// Full TAT-Enc pass over one view (Eqs. 5-11 + §III-B3 pooling).
    pub fn encode_view(
        &self,
        g: &mut Graph,
        view: &TrajView,
        road_reprs: NodeId,
        rng: &mut StdRng,
    ) -> EncodedView {
        let hidden = self.encode_view_hidden(g, view, road_reprs, rng);
        let pooled = g.select_row(hidden, 0);
        EncodedView { hidden, pooled }
    }

    /// TAT-Enc token states only, without the `[CLS]` pooling gather —
    /// consumers that never read `pooled` (span-mask recovery) use this so
    /// the tape carries no dead nodes (see `start_nn::audit`).
    pub fn encode_view_hidden(
        &self,
        g: &mut Graph,
        view: &TrajView,
        road_reprs: NodeId,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = self.embed_view(g, view, road_reprs, rng);
        let bias = self.interval.forward(g, &view.times);
        self.encoder.forward(g, x, bias, rng)
    }

    /// Masked-road logits for selected positions (Eq. 12). `positions` are
    /// 0-based road indexes (the `[CLS]` offset is handled here).
    pub fn mask_logits(&self, g: &mut Graph, hidden: NodeId, positions: &[usize]) -> NodeId {
        let idx: Vec<u32> = positions.iter().map(|&p| (p + 1) as u32).collect();
        let rows = g.gather_rows(hidden, Arc::new(idx));
        self.mask_head.forward(g, rows)
    }

    /// Copy every parameter tensor whose name and shape match from `src`
    /// into this model's store, returning the number of tensors adopted.
    ///
    /// This is the checkpoint hot-swap path: a training loop snapshots its
    /// live weights into a freshly constructed model (same config, same
    /// road network) and hands the snapshot to `Router::publish` / the
    /// serving tier, leaving the trainer's own model free to keep
    /// stepping. When the two architectures genuinely match, the return
    /// value equals the store's tensor count — callers that want a hard
    /// guarantee compare against `self.store.len()`.
    pub fn adopt_weights(&mut self, src: &StartModel) -> usize {
        self.store.load_matching(&src.store)
    }

    /// A view that reveals only the *departure time* (all roads stamped with
    /// it), used for travel-time-estimation fine-tuning to avoid leaking the
    /// answer through per-road timestamps (§IV-D2).
    pub fn departure_only_view(traj: &Trajectory) -> TrajView {
        let mut v = TrajView::identity(traj);
        let dep = traj.departure();
        v.times = vec![dep; v.len()];
        v
    }
}

/// Truncate a trajectory view to a maximum length (keeps the prefix).
pub fn clamp_view(mut view: TrajView, max_len: usize) -> TrajView {
    if view.len() > max_len {
        view.roads.truncate(max_len);
        view.times.truncate(max_len);
        view.masked.truncate(max_len);
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncodeOptions;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_traj::{SimConfig, Simulator};

    fn encode(model: &StartModel, trajs: &[Trajectory]) -> Vec<Vec<f32>> {
        model.encoder().encode(trajs, &EncodeOptions::default()).unwrap()
    }

    fn setup() -> (start_roadnet::City, Vec<Trajectory>, TransferMatrix) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 40, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        (city, data, tm)
    }

    #[test]
    fn encode_produces_d_dimensional_vectors() {
        let (city, data, tm) = setup();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let embs = encode(&model, &data[..5]);
        assert_eq!(embs.len(), 5);
        for e in &embs {
            assert_eq!(e.len(), 32);
            assert!(e.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn inference_is_deterministic() {
        let (city, data, tm) = setup();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let a = encode(&model, &data[..3]);
        let b = encode(&model, &data[..3]);
        assert_eq!(a, b);
    }

    #[test]
    fn masked_positions_change_the_embedding() {
        let (city, data, tm) = setup();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let plain = TrajView::identity(&data[0]);
        let mut masked = TrajView::identity(&data[0]);
        masked.masked[1] = true;
        masked.masked[2] = true;
        let embs =
            model.encoder().encode_views(&[plain, masked], &EncodeOptions::default()).unwrap();
        assert_ne!(embs[0], embs[1]);
    }

    #[test]
    fn random_embedding_ablation_works() {
        let (city, data, _) = setup();
        let cfg =
            StartConfig { road_encoder: RoadEncoder::RandomEmbedding, ..StartConfig::test_scale() };
        let model = StartModel::new(cfg, &city.net, None, None, 7);
        let embs = encode(&model, &data[..2]);
        assert!(embs[0].iter().any(|v| *v != 0.0));
    }

    #[test]
    fn node2vec_ablation_uses_provided_vectors() {
        let (city, data, _) = setup();
        let n2v = start_roadnet::node2vec(
            &city.net,
            &start_roadnet::Node2VecConfig {
                dim: 32,
                epochs: 1,
                walks_per_node: 2,
                ..Default::default()
            },
        );
        let cfg = StartConfig {
            road_encoder: RoadEncoder::Node2VecEmbedding,
            ..StartConfig::test_scale()
        };
        let model = StartModel::new(cfg, &city.net, None, Some(&n2v), 7);
        // The embedding table must start as the node2vec vectors.
        let table = model.store.lookup("road_emb").unwrap();
        assert_eq!(model.store.get(table).data(), n2v.data());
        let _ = encode(&model, &data[..2]);
    }

    #[test]
    fn departure_only_view_hides_progress_times() {
        let (_, data, _) = setup();
        let v = StartModel::departure_only_view(&data[0]);
        assert!(v.times.iter().all(|&t| t == data[0].departure()));
    }

    #[test]
    fn clamp_view_truncates() {
        let (_, data, _) = setup();
        let long = data.iter().max_by_key(|t| t.len()).unwrap();
        let v = clamp_view(TrajView::identity(long), 5);
        assert_eq!(v.len(), 5.min(long.len()));
    }

    #[test]
    fn mask_logits_shape_is_vocab_sized() {
        let (city, data, tm) = setup();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Graph::new(&model.store, false);
        let roads = model.road_reprs(&mut g);
        let view = TrajView::identity(&data[0]);
        let enc = model.encode_view(&mut g, &view, roads, &mut rng);
        let logits = model.mask_logits(&mut g, enc.hidden, &[0, 2]);
        assert_eq!(g.shape(logits), (2, city.net.num_segments()));
    }
}
