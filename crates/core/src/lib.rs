//! `start-core`: the START framework (Jiang et al., ICDE 2023) —
//! self-supervised trajectory representation learning with temporal
//! regularities and travel semantics.
//!
//! The two-stage architecture of §III:
//!
//! 1. [`tpe_gat::TpeGat`] — Trajectory Pattern-Enhanced Graph Attention
//!    Network (Eqs. 1-4), turning road features + network structure + the
//!    transfer-probability matrix into road representations;
//! 2. [`model::StartModel`] — the Time-Aware Trajectory Encoder (TAT-Enc):
//!    fused road/minute/day-of-week/position embeddings (Eq. 5) feeding a
//!    Transformer whose attention carries the adaptive time-interval bias
//!    of [`interval::IntervalModule`] (Eqs. 6-11), pooled through `[CLS]`.
//!
//! Training is self-supervised ([`pretrain`]): span-masked trajectory
//! recovery (Eqs. 12-13) plus NT-Xent trajectory contrastive learning
//! (Eq. 14) over augmented views, combined by Eq. 15. Downstream adaptation
//! ([`downstream`]) covers travel time estimation (Eq. 16), trajectory
//! classification (Eq. 17), and zero-shot similarity search.
//!
//! Every ablation of the paper's Fig. 7 is a switch on
//! [`config::StartConfig`].

pub mod config;
pub mod downstream;
pub mod encoder;
pub mod interval;
pub mod model;
pub mod pretrain;
pub mod tpe_gat;
pub mod verify;

pub use config::{ConfigError, IntervalMode, RoadEncoder, StartConfig, StartConfigBuilder};
pub use downstream::{
    euclidean, fine_tune_classifier, fine_tune_eta, predict_classes, predict_eta, ClassifierHead,
    EtaHead, FineTuneConfig,
};
pub use encoder::{
    fingerprint_view, CacheStats, Embedding, EmbeddingCache, EncodeError, EncodeOptions, Encoder,
    Fingerprint,
};
pub use model::{clamp_view, EncodedView, StartModel};
pub use pretrain::{
    build_shard_loss, pretrain, pretrain_with_publish, PretrainConfig, PretrainReport,
    StandardShard,
};
pub use tpe_gat::TpeGat;
pub use verify::{broken_families, symbolic_families, VerifyFixture};
