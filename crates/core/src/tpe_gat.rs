//! Trajectory Pattern-Enhanced Graph Attention Network (§III-A, Eqs. 1-4).
//!
//! Stage one of START: converts the road network (features + structure) and
//! the travel semantics (the transfer-probability matrix of Eq. 2) into road
//! representation vectors. The attention logit between roads `i` and `j` is
//!
//! ```text
//! e_ij = (h_i W1 + h_j W2 + p_ij^trans W3) W4^T          (Eq. 1)
//! α_ij = softmax_j(LeakyReLU(e_ij))
//! h'_i = ELU(Σ_j α_ij h_j W5)                             (Eq. 3)
//! ```
//!
//! with multi-head concatenation (Eq. 4). The graph is processed with sparse
//! segment operations (one edge row per (i, j) pair), so cost scales with
//! |E|, not |V|², matching the paper's sparse-matrix implementation note.

use start_sync::Arc;

use rand::rngs::StdRng;

use start_nn::graph::{Graph, NodeId, Segments};
use start_nn::params::{Init, ParamId, ParamStore};
use start_nn::Array;
use start_roadnet::{road_features, RoadNetwork, SegmentId, TransferMatrix};

/// One attention head of one TPE-GAT layer.
struct GatHead {
    w1: ParamId,
    w2: ParamId,
    w3: ParamId,
    w4: ParamId,
    w5: ParamId,
}

/// One multi-head TPE-GAT layer.
struct GatLayer {
    heads: Vec<GatHead>,
}

/// The full TPE-GAT stack, bound to a fixed road network.
pub struct TpeGat {
    layers: Vec<GatLayer>,
    /// Road features `F_V`, the layer-0 input.
    features: Array,
    /// Flattened edge list sorted by center node; one row per (center, neighbor).
    center_ids: Arc<Vec<u32>>,
    neighbor_ids: Arc<Vec<u32>>,
    /// Per-edge transfer probabilities (zeros when the ablation disables them).
    ptrans: Array,
    segments: Segments,
    out_dim: usize,
}

impl TpeGat {
    /// Build the stack over a network. `heads_per_layer[l]` heads each of
    /// width `dim / heads_per_layer[l]`; all layers output `dim` columns.
    /// `transfer` may be `None` for the `w/o TransProb` ablation.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        net: &RoadNetwork,
        transfer: Option<&TransferMatrix>,
        dim: usize,
        heads_per_layer: &[usize],
    ) -> Self {
        let feats = road_features(net);
        let features = Array::from_vec(feats.rows(), feats.cols(), feats.data().to_vec());

        // Edge list with self-loops, sorted by center.
        let n = net.num_segments();
        let mut center_ids = Vec::new();
        let mut neighbor_ids = Vec::new();
        let mut ptrans = Vec::new();
        let mut offsets = vec![0u32];
        for i in 0..n as u32 {
            let center = SegmentId(i);
            center_ids.push(i);
            neighbor_ids.push(i);
            // Self-loop carries the self-transition probability (usually 0).
            ptrans.push(transfer.map_or(0.0, |t| t.probability(center, center)));
            for &nb in net.successors(center) {
                center_ids.push(i);
                neighbor_ids.push(nb.0);
                ptrans.push(transfer.map_or(0.0, |t| t.probability(center, nb)));
            }
            offsets.push(center_ids.len() as u32);
        }
        let num_edges = center_ids.len();

        let mut layers = Vec::with_capacity(heads_per_layer.len());
        let mut in_dim = features.cols();
        for (l, &num_heads) in heads_per_layer.iter().enumerate() {
            assert!(num_heads > 0 && dim.is_multiple_of(num_heads), "dim must divide heads");
            let head_dim = dim / num_heads;
            let heads = (0..num_heads)
                .map(|h| {
                    let p = format!("{name}.l{l}.h{h}");
                    GatHead {
                        w1: store.param(
                            format!("{p}.w1"),
                            in_dim,
                            head_dim,
                            Init::XavierUniform,
                            rng,
                        ),
                        w2: store.param(
                            format!("{p}.w2"),
                            in_dim,
                            head_dim,
                            Init::XavierUniform,
                            rng,
                        ),
                        w3: store.param(format!("{p}.w3"), 1, head_dim, Init::XavierUniform, rng),
                        w4: store.param(format!("{p}.w4"), head_dim, 1, Init::XavierUniform, rng),
                        w5: store.param(
                            format!("{p}.w5"),
                            in_dim,
                            head_dim,
                            Init::XavierUniform,
                            rng,
                        ),
                    }
                })
                .collect();
            layers.push(GatLayer { heads });
            in_dim = dim;
        }

        Self {
            layers,
            features,
            center_ids: Arc::new(center_ids),
            neighbor_ids: Arc::new(neighbor_ids),
            ptrans: Array::from_vec(num_edges, 1, ptrans),
            segments: Segments::from_offsets(offsets),
            out_dim: dim,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn num_roads(&self) -> usize {
        self.features.rows()
    }

    /// Forward pass: returns the `(|V|, dim)` road representation matrix
    /// `R = [r_1; ...; r_|V|]`.
    pub fn forward(&self, g: &mut Graph) -> NodeId {
        let mut h = g.input(self.features.clone());
        let ptrans = g.input(self.ptrans.clone());
        for layer in &self.layers {
            let mut head_outputs = Vec::with_capacity(layer.heads.len());
            for head in &layer.heads {
                // Eq. 1: e_ij = (h_i W1 + h_j W2 + p_ij W3) W4^T.
                let w1 = g.param(head.w1);
                let w2 = g.param(head.w2);
                let w3 = g.param(head.w3);
                let w4 = g.param(head.w4);
                let w5 = g.param(head.w5);
                let hw1 = g.matmul(h, w1);
                let hw2 = g.matmul(h, w2);
                let ei = g.gather_rows(hw1, Arc::clone(&self.center_ids));
                let ej = g.gather_rows(hw2, Arc::clone(&self.neighbor_ids));
                let pw = g.matmul(ptrans, w3);
                let sum = g.add(ei, ej);
                let sum = g.add(sum, pw);
                let act = g.leaky_relu(sum, 0.2);
                let logits = g.matmul(act, w4);
                // α over each center's neighborhood.
                let alpha = g.segment_softmax(logits, &self.segments);
                // Eq. 3: weighted aggregation of transformed neighbors.
                let hw5 = g.matmul(h, w5);
                let msgs = g.gather_rows(hw5, Arc::clone(&self.neighbor_ids));
                let weighted = g.mul_col(msgs, alpha);
                let agg = g.segment_sum(weighted, &self.segments);
                head_outputs.push(g.elu(agg));
            }
            // Eq. 4: concatenate heads.
            h = if head_outputs.len() == 1 {
                head_outputs[0]
            } else {
                g.concat_cols(&head_outputs)
            };
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use start_nn::params::GradStore;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_traj::{SimConfig, Simulator};

    fn setup() -> (start_roadnet::City, TransferMatrix) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 60, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        (city, tm)
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let (city, tm) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let gat = TpeGat::new(&mut store, &mut rng, "gat", &city.net, Some(&tm), 32, &[2, 2]);
        let mut g = Graph::new(&store, false);
        let r = gat.forward(&mut g);
        assert_eq!(g.shape(r), (city.net.num_segments(), 32));
        assert!(g.value(r).all_finite());
    }

    #[test]
    fn gradients_reach_every_gat_parameter() {
        let (city, tm) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gat = TpeGat::new(&mut store, &mut rng, "gat", &city.net, Some(&tm), 16, &[2]);
        let mut g = Graph::new(&store, true);
        let r = gat.forward(&mut g);
        let sq = g.mul(r, r);
        let loss = g.mean_all(sq);
        let mut grads = GradStore::new(&store);
        g.backward(loss, &mut grads);
        for id in store.ids() {
            assert!(grads.get(id).is_some(), "no grad for {}", store.name(id));
        }
    }

    #[test]
    fn transfer_probabilities_change_the_output() {
        let (city, tm) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut store_a = ParamStore::new();
        let gat_a = TpeGat::new(&mut store_a, &mut rng, "gat", &city.net, Some(&tm), 16, &[2]);
        let mut rng = StdRng::seed_from_u64(2); // identical init
        let mut store_b = ParamStore::new();
        let gat_b = TpeGat::new(&mut store_b, &mut rng, "gat", &city.net, None, 16, &[2]);

        let mut ga = Graph::new(&store_a, false);
        let ra = gat_a.forward(&mut ga);
        let mut gb = Graph::new(&store_b, false);
        let rb = gat_b.forward(&mut gb);
        // Same weights, different travel semantics => different road vectors.
        assert_ne!(ga.value(ra).data(), gb.value(rb).data());
    }

    #[test]
    fn isolated_structure_only_depends_on_neighborhood() {
        // A node's layer-1 output must not change when a far-away node's
        // features change — locality of one GAT layer.
        let (city, tm) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mut gat = TpeGat::new(&mut store, &mut rng, "gat", &city.net, Some(&tm), 16, &[1]);

        let mut g1 = Graph::new(&store, false);
        let r1 = gat.forward(&mut g1);
        let before = g1.value(r1).row(0).to_vec();

        // Find a segment that is not adjacent to segment 0 (nor 0 itself).
        let s0 = SegmentId(0);
        let far = city
            .net
            .ids()
            .find(|&s| s != s0 && !city.net.successors(s0).contains(&s))
            .expect("far node exists");
        // Perturb that row of the input features.
        for c in 0..gat.features.cols() {
            let v = gat.features.get(far.index(), c);
            gat.features.set(far.index(), c, v + 10.0);
        }
        let mut g2 = Graph::new(&store, false);
        let r2 = gat.forward(&mut g2);
        let after = g2.value(r2).row(0).to_vec();
        assert_eq!(before, after, "non-neighbor perturbation leaked into node 0");
    }
}
