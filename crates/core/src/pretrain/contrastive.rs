//! Trajectory contrastive learning (§III-C2, Eq. 14).
//!
//! NT-Xent with in-batch negatives, following SimCLR [15]: `N_b` anchor
//! trajectories yield `2 N_b` augmented views; each view must identify its
//! partner among the other `2(N_b - 1)` views via temperature-scaled cosine
//! similarity.

use start_sync::Arc;

use start_nn::graph::{Graph, NodeId};
use start_nn::Array;

/// NT-Xent loss over paired pooled embeddings.
///
/// `pooled` must hold `2N` nodes of shape `(1, d)` ordered pairwise:
/// rows `2k` and `2k+1` are the two views of anchor `k`. Returns the scalar
/// mean loss over all `2N` anchors.
pub fn nt_xent_loss(g: &mut Graph, pooled: &[NodeId], temperature: f32) -> NodeId {
    let n2 = pooled.len();
    assert!(n2 >= 4 && n2.is_multiple_of(2), "need at least two pairs, got {n2} views");
    let stacked = g.concat_rows(pooled);
    let normed = g.l2_normalize_rows(stacked);
    let normed_t = g.transpose(normed);
    let sims = g.matmul(normed, normed_t);
    let scaled = g.scale(sims, 1.0 / temperature);
    // Exclude self-similarity from every softmax (the 1[k != i] indicator).
    let diag_mask = Array::from_fn(n2, n2, |r, c| if r == c { -1e9 } else { 0.0 });
    let mask = g.input(diag_mask);
    let logits = g.add(scaled, mask);
    // Partner targets: 0<->1, 2<->3, ...
    let targets: Vec<u32> = (0..n2).map(|i| (i ^ 1) as u32).collect();
    g.cross_entropy_rows(logits, Arc::new(targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use start_nn::params::ParamStore;

    fn pooled_from(store: &ParamStore, g: &mut Graph, rows: &[[f32; 4]]) -> Vec<NodeId> {
        let _ = store;
        rows.iter().map(|r| g.input(Array::from_vec(1, 4, r.to_vec()))).collect()
    }

    #[test]
    fn aligned_pairs_have_lower_loss_than_shuffled() {
        let store = ParamStore::new();
        // Two anchors; views of the same anchor are nearly identical.
        let a1 = [1.0, 0.0, 0.0, 0.0];
        let a2 = [0.95, 0.05, 0.0, 0.0];
        let b1 = [0.0, 1.0, 0.0, 0.0];
        let b2 = [0.05, 0.95, 0.0, 0.0];

        let mut g = Graph::new(&store, false);
        let good = pooled_from(&store, &mut g, &[a1, a2, b1, b2]);
        let good_loss = nt_xent_loss(&mut g, &good, 0.05);
        let gv = g.value(good_loss).item();

        let mut g2 = Graph::new(&store, false);
        // Mispaired: a's partner is b.
        let bad = pooled_from(&store, &mut g2, &[a1, b1, a2, b2]);
        let bad_loss = nt_xent_loss(&mut g2, &bad, 0.05);
        let bv = g2.value(bad_loss).item();

        assert!(gv < bv, "aligned {gv} should beat shuffled {bv}");
        assert!(gv < 0.1, "well-separated pairs should have near-zero loss, got {gv}");
    }

    #[test]
    fn loss_is_permutation_invariant_in_scale() {
        // Scaling all embeddings must not change the loss (cosine similarity).
        let store = ParamStore::new();
        let rows = [
            [0.3, 0.1, -0.2, 0.5],
            [0.28, 0.12, -0.2, 0.5],
            [-0.4, 0.2, 0.3, 0.0],
            [-0.38, 0.22, 0.3, 0.0],
        ];
        let mut g = Graph::new(&store, false);
        let p = pooled_from(&store, &mut g, &rows);
        let loss1 = nt_xent_loss(&mut g, &p, 0.1);
        let l1 = g.value(loss1).item();

        let scaled: Vec<[f32; 4]> = rows.iter().map(|r| r.map(|v| v * 7.0)).collect();
        let mut g2 = Graph::new(&store, false);
        let p2 = pooled_from(&store, &mut g2, &scaled);
        let loss2 = nt_xent_loss(&mut g2, &p2, 0.1);
        let l2 = g2.value(loss2).item();
        assert!((l1 - l2).abs() < 1e-4, "{l1} vs {l2}");
    }

    #[test]
    #[should_panic(expected = "need at least two pairs")]
    fn single_pair_rejected() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store, false);
        let p = pooled_from(&store, &mut g, &[[1.0, 0.0, 0.0, 0.0], [1.0, 0.0, 0.0, 0.0]]);
        nt_xent_loss(&mut g, &p, 0.05);
    }
}
