//! Joint self-supervised pre-training (§III-C, Eq. 15):
//! `L_pre = λ L_mask + (1 - λ) L_con`, trained with AdamW under the paper's
//! warm-up + cosine-annealing schedule (§IV-C2).

pub mod contrastive;
pub mod mask;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use start_nn::graph::Graph;
use start_nn::params::GradStore;
use start_nn::train::{BatchTrainer, PublishCadence, ShardResult};
use start_nn::{AdamW, AdamWConfig, WarmupCosine};
use start_traj::{TrajView, Trajectory};

use crate::model::{clamp_view, StartModel};
pub use contrastive::nt_xent_loss;
pub use mask::{make_masked_example, masked_recovery_loss, MaskedExample};

/// Pre-training loop parameters. The paper uses 30 epochs / batch 64 /
/// lr 2e-4 with 5 warm-up epochs; defaults here are CPU-scaled.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub base_lr: f32,
    /// Fraction of total steps used for linear warm-up.
    pub warmup_frac: f32,
    /// Optional cap on optimizer steps per epoch (subsampling for the
    /// CPU-scaled experiments); `None` sweeps the full split.
    pub max_steps_per_epoch: Option<usize>,
    pub grad_clip: f32,
    pub seed: u64,
    /// Data-parallel workers per optimizer step. `1` runs the legacy
    /// sequential loop; higher counts shard each batch across threads with
    /// within-shard NT-Xent negatives (see `start_nn::train`).
    pub workers: usize,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 16,
            base_lr: 2e-4,
            warmup_frac: 0.1,
            max_steps_per_epoch: None,
            grad_clip: 5.0,
            seed: 2023,
            workers: 1,
        }
    }
}

/// Loss trace of a pre-training run.
#[derive(Debug, Clone, Default)]
pub struct PretrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean mask / contrastive components of the final epoch.
    pub final_mask_loss: f32,
    pub final_contrastive_loss: f32,
    pub steps: u64,
}

impl PretrainReport {
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Record one shard of the Eq. 15 pre-training loss into `g` — the exact
/// tape `pretrain`'s engine closure builds, factored out so the memory
/// planner's tooling (`start-analysis plan`, `bench_memory`) can analyze
/// the real training graph rather than a toy stand-in. Returns `None` when
/// the shard yields no trainable loss. RNG consumption and op order match
/// the training loop bit for bit.
pub fn build_shard_loss(
    model: &StartModel,
    train: &[Trajectory],
    historical: &[f32],
    g: &mut Graph,
    shard: &[usize],
    r: &mut StdRng,
) -> Option<ShardResult> {
    let (lambda, use_mask, use_con) =
        (model.cfg.lambda, model.cfg.use_mask_loss, model.cfg.use_contrastive_loss);
    let (aug_a, aug_b) = model.cfg.augmentations;
    let max_len = model.cfg.max_len;
    let road_reprs = model.road_reprs(g);

    // Span-masked recovery over the shard.
    let mut mask_losses = Vec::new();
    if use_mask {
        for &i in shard {
            let ex = make_masked_example(
                &train[i],
                model.cfg.mask_span,
                model.cfg.mask_ratio,
                max_len,
                r,
            );
            if let Some(l) = masked_recovery_loss(model, g, road_reprs, &ex, r) {
                mask_losses.push(l);
            }
        }
    }

    // Contrastive views over the shard.
    let mut pooled = Vec::new();
    if use_con {
        for &i in shard {
            let t = &train[i];
            for aug in [aug_a, aug_b] {
                let view = clamp_view(aug.apply(t, historical, r), max_len);
                let view =
                    if view.is_empty() { clamp_view(TrajView::identity(t), max_len) } else { view };
                let enc = model.encode_view(g, &view, road_reprs, r);
                pooled.push(enc.pooled);
            }
        }
    }

    let mask_term = if mask_losses.is_empty() {
        None
    } else {
        let mut acc = mask_losses[0];
        for &l in &mask_losses[1..] {
            acc = g.add(acc, l);
        }
        Some(g.scale(acc, 1.0 / mask_losses.len() as f32))
    };
    let con_term = if pooled.len() >= 4 {
        Some(nt_xent_loss(g, &pooled, model.cfg.temperature))
    } else {
        None
    };
    let loss = match (mask_term, con_term) {
        (Some(m), Some(c)) => {
            let lm = g.scale(m, lambda);
            let lc = g.scale(c, 1.0 - lambda);
            g.add(lm, lc)
        }
        (Some(m), None) => m,
        (None, Some(c)) => c,
        (None, None) => return None,
    };
    // Component accounting: [mask value, mask count, contrastive value,
    // anchor count] per shard, combined by the epoch loop.
    let mask_stats =
        mask_term.map_or([0.0, 0.0], |m| [g.value(m).item(), mask_losses.len() as f32]);
    let con_stats = con_term.map_or([0.0, 0.0], |c| [g.value(c).item(), (pooled.len() / 2) as f32]);
    Some(ShardResult {
        loss,
        weight: shard.len() as f32,
        components: vec![mask_stats[0], mask_stats[1], con_stats[0], con_stats[1]],
    })
}

/// The deterministic "standard pretrain shard": a tiny synthetic city, 64
/// simulated trajectories, a test-scale model, and one 8-trajectory shard.
/// `start-analysis plan` and `bench_memory` record this exact tape, so the
/// memory-planner figures they report are comparable across runs and
/// machines (all inputs are seeded; the only variation is code).
pub struct StandardShard {
    pub model: StartModel,
    pub train: Vec<Trajectory>,
    pub historical: Vec<f32>,
    pub shard: Vec<usize>,
    /// Seed of the shard-recording RNG stream.
    pub seed: u64,
}

impl StandardShard {
    /// Build the fixture (simulates the dataset; a few hundred ms).
    pub fn build() -> Self {
        use start_roadnet::synth::{generate_city, CityConfig};
        use start_roadnet::TransferMatrix;
        use start_traj::{historical_mean_durations, SimConfig, Simulator};

        let city = generate_city("std", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 64, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        let historical = historical_mean_durations(&city.net, &data);
        let model = StartModel::new(
            crate::config::StartConfig::test_scale(),
            &city.net,
            Some(&tm),
            None,
            5,
        );
        Self { model, train: data, historical, shard: (0..8).collect(), seed: 2023 }
    }

    /// Record the standard shard into `g` (a graph over this fixture's
    /// store) and return its [`ShardResult`].
    pub fn record<'s>(&'s self, g: &mut Graph<'s>) -> ShardResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let res =
            build_shard_loss(&self.model, &self.train, &self.historical, g, &self.shard, &mut rng);
        res.expect("the standard pretrain shard must produce a loss") // lint-ok: deterministic fixture
    }
}

/// Run self-supervised pre-training on the training split.
///
/// `historical` is the per-segment mean traversal time required by the
/// Temporal Shifting augmentation.
pub fn pretrain(
    model: &mut StartModel,
    train: &[Trajectory],
    historical: &[f32],
    cfg: &PretrainConfig,
) -> PretrainReport {
    pretrain_with_publish(model, train, historical, cfg, PublishCadence::never(), &mut |_, _| {})
}

/// [`pretrain`] with a checkpoint-publish hook for live serving tiers.
///
/// After every optimizer step where `cadence.due(step)` fires — and once
/// more after the final step, so the last weights always ship — `publish`
/// is called with the model (weights as of that step) and the completed
/// step count. The callback typically snapshots the weights into a fresh
/// model via [`StartModel::adopt_weights`] and hands the snapshot to
/// `start_serve::Router::publish`; training itself never blocks on the
/// serving tier beyond the callback's own cost. A `never()` cadence makes
/// this exactly [`pretrain`].
pub fn pretrain_with_publish(
    model: &mut StartModel,
    train: &[Trajectory],
    historical: &[f32],
    cfg: &PretrainConfig,
    cadence: PublishCadence,
    publish: &mut dyn FnMut(&StartModel, u64),
) -> PretrainReport {
    assert!(train.len() >= cfg.batch_size.max(2), "training split too small");
    assert!(
        model.cfg.use_mask_loss || model.cfg.use_contrastive_loss,
        "at least one self-supervised task must be enabled"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_epoch = {
        let full = train.len() / cfg.batch_size;
        cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
    };
    // Batches shorter than 2 trajectories are skipped by the loop below.
    // Chunk lengths are data-independent, so the skip count is known up
    // front and the LR schedule can span the steps actually taken instead
    // of the planned count (which overshot whenever batches were skipped).
    let executable_steps = (0..steps_per_epoch)
        .filter(|i| train.len().saturating_sub(i * cfg.batch_size).min(cfg.batch_size) >= 2)
        .count();
    let total_steps = ((executable_steps * cfg.epochs) as u64).max(1);
    let schedule = WarmupCosine::new(
        cfg.base_lr,
        ((total_steps as f32 * cfg.warmup_frac) as u64).max(1),
        total_steps,
    );
    let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
    let mut optimizer =
        AdamW::new(&model.store, AdamWConfig { lr: cfg.base_lr, ..Default::default() });

    let mut report = PretrainReport::default();
    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut step: u64 = 0;
    let mut published_at: Option<u64> = None;

    // Static tape verification (debug builds, or START_AUDIT=1): the first
    // shard graph of the run is audited — shapes re-derived op-by-op,
    // unreachable parameters and dead nodes reported — and every shard's
    // loss is checked finite, with the first poisoned op named on failure.
    // See `start_nn::audit` and DESIGN.md §8.
    let audit_on = start_nn::audit::audit_enabled();
    let audit_pending = start_sync::atomic::AtomicBool::new(audit_on);

    for _epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut epoch_mask = 0.0f64;
        let mut epoch_con = 0.0f64;
        let mut executed = 0usize;
        for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
            if batch.len() < 2 {
                continue;
            }
            // Eq. 15 over one shard. With workers = 1 the shard is the whole
            // batch and the RNG is the loop's, reproducing the legacy
            // sequential loop exactly; with more workers each shard draws
            // NT-Xent negatives only from its own trajectories.
            let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                let res = build_shard_loss(model, train, historical, g, shard, r)?;
                if audit_on {
                    use start_sync::atomic::Ordering;
                    // relaxed-ok: one-shot latch, no data published through it
                    if audit_pending.swap(false, Ordering::Relaxed) {
                        let audit = g.audit(res.loss);
                        assert!(
                            !audit.has_errors(),
                            "pretrain tape failed its static audit:\n{audit}"
                        );
                        for finding in audit.warnings() {
                            eprintln!("pretrain audit: {finding}");
                        }
                    }
                    let lv = g.value(res.loss).item();
                    if !lv.is_finite() {
                        match g.trace_nonfinite() {
                            Some(trace) => panic!("non-finite pretrain loss ({lv}); {trace}"),
                            None => panic!(
                                "non-finite pretrain loss ({lv}) but every tape value is \
                                 finite — loss readback is inconsistent"
                            ),
                        }
                    }
                }
                Some(res)
            };

            let mut grads = GradStore::new(&model.store);
            let Some(stats) =
                trainer.step(&model.store, &mut grads, step, batch, 2, &mut rng, &shard_loss)
            else {
                continue;
            };
            grads.clip_global_norm(cfg.grad_clip);

            epoch_loss += f64::from(stats.loss);
            let (mut mask_sum, mut mask_n, mut con_sum, mut con_n) = (0.0f64, 0.0f64, 0.0, 0.0);
            for c in &stats.shard_components {
                mask_sum += f64::from(c[0]) * f64::from(c[1]);
                mask_n += f64::from(c[1]);
                con_sum += f64::from(c[2]) * f64::from(c[3]);
                con_n += f64::from(c[3]);
            }
            if mask_n > 0.0 {
                epoch_mask += mask_sum / mask_n;
            }
            if con_n > 0.0 {
                epoch_con += con_sum / con_n;
            }

            let lr = schedule.lr(step);
            optimizer.step(&mut model.store, &grads, lr);
            step += 1;
            executed += 1;
            if cadence.due(step) {
                published_at = Some(step);
                publish(model, step);
            }
        }
        // Mean over batches actually executed; dividing by the planned step
        // count used to deflate the reported losses whenever a batch was
        // skipped (too short, or no trainable loss).
        let denom = executed.max(1) as f64;
        report.epoch_losses.push((epoch_loss / denom) as f32);
        report.final_mask_loss = (epoch_mask / denom) as f32;
        report.final_contrastive_loss = (epoch_con / denom) as f32;
    }
    // Final-weights publish: the run's last checkpoint always reaches the
    // serving tier even when the step count is not a cadence multiple.
    if cadence.is_enabled() && published_at != Some(step) {
        publish(model, step);
    }
    report.steps = step;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::TransferMatrix;
    use start_traj::{historical_mean_durations, SimConfig, Simulator};

    fn setup(n: usize) -> (start_roadnet::City, Vec<Trajectory>, TransferMatrix, Vec<f32>) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: n, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        let hist = historical_mean_durations(&city.net, &data);
        (city, data, tm, hist)
    }

    #[test]
    fn pretraining_reduces_the_loss() {
        let (city, data, tm, hist) = setup(64);
        let mut model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 5);
        let cfg = PretrainConfig {
            epochs: 4,
            batch_size: 8,
            base_lr: 1e-3,
            max_steps_per_epoch: Some(4),
            ..Default::default()
        };
        let report = pretrain(&mut model, &data, &hist, &cfg);
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss should drop: {first} -> {last}");
        assert!(last.is_finite());
    }

    /// Hand-rolled copy of the pre-engine sequential loop: one graph per
    /// batch, the loop's RNG everywhere, losses in the legacy op order.
    fn legacy_pretrain(
        model: &mut StartModel,
        train: &[Trajectory],
        historical: &[f32],
        cfg: &PretrainConfig,
    ) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = {
            let full = train.len() / cfg.batch_size;
            cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
        };
        let executable_steps = (0..steps_per_epoch)
            .filter(|i| train.len().saturating_sub(i * cfg.batch_size).min(cfg.batch_size) >= 2)
            .count();
        let total_steps = ((executable_steps * cfg.epochs) as u64).max(1);
        let schedule = WarmupCosine::new(
            cfg.base_lr,
            ((total_steps as f32 * cfg.warmup_frac) as u64).max(1),
            total_steps,
        );
        let mut optimizer =
            AdamW::new(&model.store, AdamWConfig { lr: cfg.base_lr, ..Default::default() });
        let mut indices: Vec<usize> = (0..train.len()).collect();
        let (lambda, use_mask, use_con) =
            (model.cfg.lambda, model.cfg.use_mask_loss, model.cfg.use_contrastive_loss);
        let (aug_a, aug_b) = model.cfg.augmentations;
        let max_len = model.cfg.max_len;
        let mut epoch_losses = Vec::new();
        let mut step = 0u64;
        for _ in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut executed = 0usize;
            for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
                if batch.len() < 2 {
                    continue;
                }
                let mut g = Graph::new(&model.store, true);
                let road_reprs = model.road_reprs(&mut g);
                let mut mask_losses = Vec::new();
                if use_mask {
                    for &i in batch {
                        let ex = make_masked_example(
                            &train[i],
                            model.cfg.mask_span,
                            model.cfg.mask_ratio,
                            max_len,
                            &mut rng,
                        );
                        if let Some(l) =
                            masked_recovery_loss(model, &mut g, road_reprs, &ex, &mut rng)
                        {
                            mask_losses.push(l);
                        }
                    }
                }
                let mut pooled = Vec::new();
                if use_con {
                    for &i in batch {
                        let t = &train[i];
                        for aug in [aug_a, aug_b] {
                            let view = clamp_view(aug.apply(t, historical, &mut rng), max_len);
                            let view = if view.is_empty() {
                                clamp_view(TrajView::identity(t), max_len)
                            } else {
                                view
                            };
                            let enc = model.encode_view(&mut g, &view, road_reprs, &mut rng);
                            pooled.push(enc.pooled);
                        }
                    }
                }
                let mask_term = if mask_losses.is_empty() {
                    None
                } else {
                    let mut acc = mask_losses[0];
                    for &l in &mask_losses[1..] {
                        acc = g.add(acc, l);
                    }
                    Some(g.scale(acc, 1.0 / mask_losses.len() as f32))
                };
                let con_term = if pooled.len() >= 4 {
                    Some(nt_xent_loss(&mut g, &pooled, model.cfg.temperature))
                } else {
                    None
                };
                let loss = match (mask_term, con_term) {
                    (Some(m), Some(c)) => {
                        let lm = g.scale(m, lambda);
                        let lc = g.scale(c, 1.0 - lambda);
                        g.add(lm, lc)
                    }
                    (Some(m), None) => m,
                    (None, Some(c)) => c,
                    (None, None) => continue,
                };
                let mut grads = GradStore::new(&model.store);
                g.backward(loss, &mut grads);
                grads.clip_global_norm(cfg.grad_clip);
                epoch_loss += f64::from(g.value(loss).item());
                optimizer.step(&mut model.store, &grads, schedule.lr(step));
                step += 1;
                executed += 1;
            }
            epoch_losses.push((epoch_loss / executed.max(1) as f64) as f32);
        }
        epoch_losses
    }

    #[test]
    fn workers_1_is_bitwise_the_legacy_sequential_loop() {
        let (city, data, tm, hist) = setup(48);
        let cfg = PretrainConfig {
            epochs: 2,
            batch_size: 8,
            base_lr: 1e-3,
            max_steps_per_epoch: Some(3),
            workers: 1,
            ..Default::default()
        };
        let mut engine_model =
            StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 5);
        let report = pretrain(&mut engine_model, &data, &hist, &cfg);

        let mut legacy_model =
            StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 5);
        let legacy_losses = legacy_pretrain(&mut legacy_model, &data, &hist, &cfg);

        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(&report.epoch_losses),
            bits(&legacy_losses),
            "workers = 1 must reproduce the sequential loss trace bitwise"
        );
        for ((name_a, a), (name_b, b)) in engine_model.store.iter().zip(legacy_model.store.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(a, b, "parameter {name_a} diverged from the sequential loop");
        }
    }

    #[test]
    fn workers_2_pretraining_is_deterministic() {
        let (city, data, tm, hist) = setup(48);
        let cfg = PretrainConfig {
            epochs: 2,
            batch_size: 8,
            base_lr: 1e-3,
            max_steps_per_epoch: Some(3),
            workers: 2,
            ..Default::default()
        };
        let run = || {
            let mut model =
                StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 5);
            pretrain(&mut model, &data, &hist, &cfg).epoch_losses
        };
        let (a, b) = (run(), run());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&a), bits(&b), "same-seed parallel runs must be bitwise identical");
        assert!(a.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn mask_only_and_contrastive_only_both_train() {
        let (city, data, tm, hist) = setup(32);
        for (use_mask, use_con) in [(true, false), (false, true)] {
            let cfg_model = StartConfig {
                use_mask_loss: use_mask,
                use_contrastive_loss: use_con,
                ..StartConfig::test_scale()
            };
            let mut model = StartModel::new(cfg_model, &city.net, Some(&tm), None, 5);
            let cfg = PretrainConfig {
                epochs: 1,
                batch_size: 8,
                max_steps_per_epoch: Some(2),
                ..Default::default()
            };
            let report = pretrain(&mut model, &data, &hist, &cfg);
            assert!(report.final_loss().is_finite());
            assert!(report.steps >= 2);
        }
    }
}
