//! Span-masked trajectory recovery (§III-C1, Eqs. 12-13).
//!
//! Consecutive spans of length `l_m` covering `p_m` of the trajectory are
//! replaced by `[MASK]`/`[MASKT]` tokens; the model predicts the masked road
//! ids from the encoder output with a linear head over the road vocabulary.

use start_sync::Arc;

use rand::rngs::StdRng;

use start_nn::graph::{Graph, NodeId};
use start_traj::{choose_span_mask, TrajView, Trajectory};

use crate::model::{clamp_view, StartModel};

/// Build the span-masked view of a trajectory and remember the targets.
pub struct MaskedExample {
    pub view: TrajView,
    /// 0-based positions that were masked.
    pub positions: Vec<usize>,
    /// True road ids at those positions.
    pub targets: Vec<u32>,
}

/// Sample a masked example per the paper's `l_m` / `p_m` settings.
pub fn make_masked_example(
    traj: &Trajectory,
    span: usize,
    ratio: f64,
    max_len: usize,
    rng: &mut StdRng,
) -> MaskedExample {
    let mut view = clamp_view(TrajView::identity(traj), max_len);
    let mask = choose_span_mask(view.len(), span, ratio, rng);
    let positions: Vec<usize> =
        mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
    let targets: Vec<u32> = positions.iter().map(|&p| view.roads[p].0).collect();
    view.masked = mask;
    MaskedExample { view, positions, targets }
}

/// Encode a masked example and produce its recovery loss node (Eq. 13).
pub fn masked_recovery_loss(
    model: &StartModel,
    g: &mut Graph,
    road_reprs: NodeId,
    example: &MaskedExample,
    rng: &mut StdRng,
) -> Option<NodeId> {
    if example.positions.is_empty() {
        return None;
    }
    let hidden = model.encode_view_hidden(g, &example.view, road_reprs, rng);
    let logits = model.mask_logits(g, hidden, &example.positions);
    Some(g.cross_entropy_rows(logits, Arc::new(example.targets.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use rand::SeedableRng;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::TransferMatrix;
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn masked_example_targets_match_original_roads() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 10, num_drivers: 2, ..Default::default() },
        );
        let data = sim.generate();
        let mut rng = StdRng::seed_from_u64(0);
        let ex = make_masked_example(&data[0], 2, 0.15, 128, &mut rng);
        assert!(!ex.positions.is_empty());
        for (&p, &t) in ex.positions.iter().zip(&ex.targets) {
            assert_eq!(data[0].roads[p].0, t);
            assert!(ex.view.masked[p]);
        }
    }

    #[test]
    fn recovery_loss_is_finite_and_positive() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 10, num_drivers: 2, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Graph::new(&model.store, true);
        let roads = model.road_reprs(&mut g);
        let ex = make_masked_example(&data[0], 2, 0.15, 128, &mut rng);
        let loss = masked_recovery_loss(&model, &mut g, roads, &ex, &mut rng).unwrap();
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0, "loss = {v}");
        // Untrained loss should be near ln(|V|) (uniform prediction).
        let uniform = (city.net.num_segments() as f32).ln();
        assert!((v - uniform).abs() < uniform, "loss {v} wildly off uniform {uniform}");
    }
}
