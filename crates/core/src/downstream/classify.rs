//! Trajectory classification fine-tuning (§III-D2, Eq. 17).
//!
//! A fully connected layer with softmax on the pooled representation,
//! trained with cross-entropy. Labels are task-specific: occupied/vacant on
//! BJ-mini (binary), driver id on Porto-mini (multi-class), transport mode
//! on Geolife-mini (Table III).

use start_sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use start_nn::graph::Graph;
use start_nn::layers::Linear;
use start_nn::params::GradStore;
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, WarmupCosine};
use start_traj::{TrajView, Trajectory};

use crate::downstream::FineTuneConfig;
use crate::model::{clamp_view, StartModel};

/// The classification head.
pub struct ClassifierHead {
    fc: Linear,
    pub num_classes: usize,
}

/// Fine-tune the model plus a fresh classifier head.
///
/// `labels[i]` is the class of `train[i]` and must be `< num_classes`.
pub fn fine_tune_classifier(
    model: &mut StartModel,
    train: &[Trajectory],
    labels: &[usize],
    num_classes: usize,
    cfg: &FineTuneConfig,
) -> ClassifierHead {
    assert_eq!(train.len(), labels.len(), "one label per trajectory");
    assert!(num_classes >= 2, "need at least two classes");
    assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = model.cfg.dim;
    let fc = Linear::new(&mut model.store, &mut rng, "cls_head", dim, num_classes, true);
    let head_w = fc.weight_id();

    let steps_per_epoch = {
        let full = (train.len() / cfg.batch_size).max(1);
        cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
    };
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
    let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
    let mut optimizer = AdamW::new(&model.store, AdamWConfig { lr: cfg.lr, ..Default::default() });

    // Static tape verification (debug builds, or START_AUDIT=1): the first
    // shard graph of the run is audited and every shard's loss is checked
    // finite, mirroring the pretrain loop. See `start_nn::audit`.
    let audit_on = start_nn::audit::audit_enabled();
    let audit_pending = start_sync::atomic::AtomicBool::new(audit_on);

    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut step = 0u64;
    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
            let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                let road_reprs = model.road_reprs(g);
                let mut pooled = Vec::with_capacity(shard.len());
                let mut targets = Vec::with_capacity(shard.len());
                for &i in shard {
                    let view = clamp_view(TrajView::identity(&train[i]), model.cfg.max_len);
                    let enc = model.encode_view(g, &view, road_reprs, r);
                    pooled.push(enc.pooled);
                    targets.push(labels[i] as u32);
                }
                let stacked = g.concat_rows(&pooled);
                let logits = fc.forward(g, stacked);
                let loss = g.cross_entropy_rows(logits, Arc::new(targets));
                if audit_on {
                    use start_sync::atomic::Ordering;
                    // relaxed-ok: one-shot latch, no data published through it
                    if audit_pending.swap(false, Ordering::Relaxed) {
                        let audit = g.audit(loss);
                        assert!(
                            !audit.has_errors(),
                            "classifier fine-tuning tape failed its static audit:\n{audit}"
                        );
                        for finding in audit.warnings() {
                            eprintln!("classify audit: {finding}");
                        }
                    }
                    let lv = g.value(loss).item();
                    if !lv.is_finite() {
                        match g.trace_nonfinite() {
                            Some(trace) => panic!("non-finite classification loss ({lv}); {trace}"),
                            None => panic!(
                                "non-finite classification loss ({lv}) but every tape value is \
                                 finite — loss readback is inconsistent"
                            ),
                        }
                    }
                }
                Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
            };
            let mut grads = GradStore::new(&model.store);
            if trainer
                .step(&model.store, &mut grads, step, batch, 1, &mut rng, &shard_loss)
                .is_none()
            {
                continue;
            }
            if cfg.freeze_encoder {
                grads.retain(|id| id.index() >= head_w.index());
            }
            grads.clip_global_norm(cfg.grad_clip);
            optimizer.step(&mut model.store, &grads, schedule.lr(step));
            step += 1;
        }
    }
    ClassifierHead { fc, num_classes }
}

/// Predict class probabilities (softmax rows) for a batch.
pub fn predict_classes(
    model: &StartModel,
    head: &ClassifierHead,
    trajectories: &[Trajectory],
) -> Vec<Vec<f32>> {
    let views: Vec<_> = trajectories.iter().map(TrajView::identity).collect();
    let embs = model
        .encoder()
        .encode_views(&views, &crate::encoder::EncodeOptions::default())
        .unwrap_or_else(|e| panic!("predict_classes: {e}"));
    let w = model.store.get(head.fc.weight_id());
    let b = model.store.lookup("cls_head.b").map(|id| model.store.get(id).clone());
    embs.iter()
        .map(|e| {
            let mut logits: Vec<f32> = (0..head.num_classes)
                .map(|c| {
                    let col: f32 = e.iter().enumerate().map(|(r, x)| x * w.get(r, c)).sum();
                    col + b.as_ref().map_or(0.0, |bv| bv.get(0, c))
                })
                .collect();
            // Softmax.
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for l in &mut logits {
                *l = (*l - max).exp();
                sum += *l;
            }
            for l in &mut logits {
                *l /= sum;
            }
            logits
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::TransferMatrix;
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn classifier_trains_and_outputs_distributions() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 60, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        let mut model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 19);
        let labels: Vec<usize> = data.iter().map(|t| t.occupied as usize).collect();
        let cfg = FineTuneConfig {
            epochs: 2,
            batch_size: 8,
            lr: 1e-3,
            max_steps_per_epoch: Some(4),
            ..Default::default()
        };
        let head = fine_tune_classifier(&mut model, &data[..48], &labels[..48], 2, &cfg);
        let probs = predict_classes(&model, &head, &data[48..]);
        for p in &probs {
            assert_eq!(p.len(), 2);
            let s: f32 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "probabilities must sum to 1, got {s}");
            assert!(p.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_labels_rejected() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 10, num_drivers: 2, ..Default::default() },
        );
        let data = sim.generate();
        let mut model = StartModel::new(StartConfig::test_scale(), &city.net, None, None, 19);
        let labels = vec![5usize; data.len()];
        fine_tune_classifier(&mut model, &data, &labels, 2, &FineTuneConfig::default());
    }
}
