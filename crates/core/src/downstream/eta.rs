//! Travel time estimation fine-tuning (§III-D1, Eq. 16).
//!
//! A single fully connected regression layer on the pooled representation,
//! trained with MSE. Per §IV-D2, the model sees only the *departure* time —
//! every road in the view is stamped with it, so no per-road timestamps can
//! leak the answer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use start_nn::graph::Graph;
use start_nn::layers::Linear;
use start_nn::params::GradStore;
use start_nn::train::{BatchTrainer, ShardResult};
use start_nn::{AdamW, AdamWConfig, Array, WarmupCosine};
use start_traj::Trajectory;

use crate::downstream::FineTuneConfig;
use crate::model::{clamp_view, StartModel};

/// The regression head plus the target normalization constants.
pub struct EtaHead {
    fc: Linear,
    pub target_mean: f32,
    pub target_std: f32,
}

/// Fine-tune the model (and a fresh head) for travel time estimation.
pub fn fine_tune_eta(
    model: &mut StartModel,
    train: &[Trajectory],
    cfg: &FineTuneConfig,
) -> EtaHead {
    assert!(!train.is_empty(), "empty fine-tuning split");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = model.cfg.dim;
    let fc = Linear::new(&mut model.store, &mut rng, "eta_head", dim, 1, true);

    // Normalize targets for stable regression.
    let times: Vec<f32> = train.iter().map(Trajectory::travel_time_secs).collect();
    let mean = times.iter().sum::<f32>() / times.len() as f32;
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f32>() / times.len() as f32;
    let std = var.sqrt().max(1.0);

    let steps_per_epoch = {
        let full = (train.len() / cfg.batch_size).max(1);
        cfg.max_steps_per_epoch.map_or(full, |m| m.min(full)).max(1)
    };
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = WarmupCosine::new(cfg.lr, (total / 10).max(1), total);
    let mut trainer = BatchTrainer::new(cfg.workers, cfg.seed);
    let mut optimizer = AdamW::new(&model.store, AdamWConfig { lr: cfg.lr, ..Default::default() });
    let head_w = fc.weight_id();

    // Static tape verification (debug builds, or START_AUDIT=1): the first
    // shard graph of the run is audited and every shard's loss is checked
    // finite, mirroring the pretrain loop. See `start_nn::audit`.
    let audit_on = start_nn::audit::audit_enabled();
    let audit_pending = start_sync::atomic::AtomicBool::new(audit_on);

    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut step = 0u64;
    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        for batch in indices.chunks(cfg.batch_size).take(steps_per_epoch) {
            let shard_loss = |g: &mut Graph, shard: &[usize], r: &mut StdRng| {
                let road_reprs = model.road_reprs(g);
                let mut pooled = Vec::with_capacity(shard.len());
                let mut targets = Vec::with_capacity(shard.len());
                for &i in shard {
                    let view =
                        clamp_view(StartModel::departure_only_view(&train[i]), model.cfg.max_len);
                    let enc = model.encode_view(g, &view, road_reprs, r);
                    pooled.push(enc.pooled);
                    targets.push((train[i].travel_time_secs() - mean) / std);
                }
                let stacked = g.concat_rows(&pooled);
                let preds = fc.forward(g, stacked);
                let loss = g.mse_loss(preds, Array::from_vec(shard.len(), 1, targets));
                if audit_on {
                    use start_sync::atomic::Ordering;
                    // relaxed-ok: one-shot latch, no data published through it
                    if audit_pending.swap(false, Ordering::Relaxed) {
                        let audit = g.audit(loss);
                        assert!(
                            !audit.has_errors(),
                            "eta fine-tuning tape failed its static audit:\n{audit}"
                        );
                        for finding in audit.warnings() {
                            eprintln!("eta audit: {finding}");
                        }
                    }
                    let lv = g.value(loss).item();
                    if !lv.is_finite() {
                        match g.trace_nonfinite() {
                            Some(trace) => panic!("non-finite eta loss ({lv}); {trace}"),
                            None => panic!(
                                "non-finite eta loss ({lv}) but every tape value is \
                                 finite — loss readback is inconsistent"
                            ),
                        }
                    }
                }
                Some(ShardResult { loss, weight: shard.len() as f32, components: Vec::new() })
            };
            let mut grads = GradStore::new(&model.store);
            if trainer
                .step(&model.store, &mut grads, step, batch, 1, &mut rng, &shard_loss)
                .is_none()
            {
                continue;
            }
            if cfg.freeze_encoder {
                // The head's parameters are the last ones allocated.
                grads.retain(|id| id.index() >= head_w.index());
            }
            grads.clip_global_norm(cfg.grad_clip);
            optimizer.step(&mut model.store, &grads, schedule.lr(step));
            step += 1;
        }
    }
    EtaHead { fc, target_mean: mean, target_std: std }
}

/// Predict travel times in seconds (inference path, no gradients).
pub fn predict_eta(model: &StartModel, head: &EtaHead, trajectories: &[Trajectory]) -> Vec<f32> {
    let views: Vec<_> = trajectories.iter().map(StartModel::departure_only_view).collect();
    let embs = model
        .encoder()
        .encode_views(&views, &crate::encoder::EncodeOptions::default())
        .unwrap_or_else(|e| panic!("predict_eta: {e}"));
    let w = model.store.get(head.fc.weight_id());
    let b = model.store.lookup("eta_head.b").map(|id| model.store.get(id).item()).unwrap_or(0.0);
    embs.iter()
        .map(|e| {
            let z: f32 = e.iter().zip(w.data()).map(|(x, wi)| x * wi).sum::<f32>() + b;
            z * head.target_std + head.target_mean
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::TransferMatrix;
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn fine_tuning_beats_predicting_the_mean_is_not_required_but_loss_drops() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 80, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        let mut model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 13);
        let cfg = FineTuneConfig {
            epochs: 3,
            batch_size: 8,
            lr: 1e-3,
            max_steps_per_epoch: Some(5),
            ..Default::default()
        };
        let head = fine_tune_eta(&mut model, &data[..64], &cfg);
        let preds = predict_eta(&model, &head, &data[64..72]);
        assert_eq!(preds.len(), 8);
        assert!(preds.iter().all(|p| p.is_finite()));
        // Predictions should be in a plausible range around the target scale.
        let mean_t = head.target_mean;
        assert!(preds.iter().all(|p| (p - mean_t).abs() < 6.0 * head.target_std));
    }

    #[test]
    fn frozen_encoder_only_updates_the_head() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 40, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let mut model = StartModel::new(StartConfig::test_scale(), &city.net, None, None, 13);
        let before = model
            .store
            .lookup("enc.layer0.attn.wq.w")
            .map(|id| model.store.get(id).clone())
            .unwrap();
        let cfg = FineTuneConfig {
            epochs: 1,
            batch_size: 8,
            max_steps_per_epoch: Some(2),
            freeze_encoder: true,
            ..Default::default()
        };
        let _ = fine_tune_eta(&mut model, &data, &cfg);
        let after = model
            .store
            .lookup("enc.layer0.attn.wq.w")
            .map(|id| model.store.get(id).clone())
            .unwrap();
        assert_eq!(before, after, "encoder weights moved despite freeze");
    }
}
