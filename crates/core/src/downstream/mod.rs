//! Downstream task adaptation (§III-D): travel time estimation, trajectory
//! classification, and zero-shot similarity search.

pub mod classify;
pub mod eta;
pub mod similarity;

pub use classify::{fine_tune_classifier, predict_classes, ClassifierHead};
pub use eta::{fine_tune_eta, predict_eta, EtaHead};
pub use similarity::euclidean;

/// Shared fine-tuning loop parameters (both heads use AdamW, §IV-C2).
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Optional cap on optimizer steps per epoch.
    pub max_steps_per_epoch: Option<usize>,
    pub grad_clip: f32,
    pub seed: u64,
    /// Freeze the encoder and train only the task head (linear probing).
    pub freeze_encoder: bool,
    /// Data-parallel workers per optimizer step (`1` = legacy sequential
    /// loop; see `start_nn::train`).
    pub workers: usize,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 16,
            lr: 2e-4,
            max_steps_per_epoch: None,
            grad_clip: 5.0,
            seed: 31,
            freeze_encoder: false,
            workers: 1,
        }
    }
}
