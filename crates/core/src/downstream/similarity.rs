//! Zero-shot trajectory similarity (§III-D3): pre-trained representations
//! are compared with Euclidean distance, no fine-tuning. Batch encoding
//! fans out across threads — the [`crate::model::StartModel`] parameter
//! store is immutable during inference, so workers share it by reference.

use start_traj::Trajectory;

use crate::encoder::EncodeOptions;
use crate::model::StartModel;

/// Euclidean distance between two representation vectors.
///
/// The lengths must match, and the contract holds in release builds too: a
/// `debug_assert` here once let release-mode mismatches silently compute
/// the distance over the shorter common prefix (via `zip`), returning
/// plausible-but-wrong neighbours with no signal. Fallible boundaries (the
/// kNN index layer) check dimensions first and return a typed
/// `DimensionMismatch`; by the time two slices reach this kernel, unequal
/// lengths are an internal invariant violation worth stopping for.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch ({} vs {})", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Encode trajectories in parallel across `threads` workers.
///
/// Deprecated shim: one release of compatibility over the unified
/// [`crate::encoder::Encoder`] facade, which owns chunking and threading
/// (and, unlike this entry point, produces thread-count-invariant bits).
#[deprecated(
    since = "0.2.0",
    note = "use `model.encoder().encode(trajs, &EncodeOptions { threads, ..Default::default() })`"
)]
pub fn encode_parallel(
    model: &StartModel,
    trajectories: &[Trajectory],
    threads: usize,
) -> Vec<Vec<f32>> {
    let opts = EncodeOptions { threads: threads.max(1), ..EncodeOptions::default() };
    model.encoder().encode(trajectories, &opts).unwrap_or_else(|e| panic!("encode_parallel: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    /// Regression: a length mismatch must fail loudly in every build
    /// profile — never a silent prefix distance.
    #[test]
    #[should_panic(expected = "length mismatch")]
    fn euclidean_rejects_length_mismatch_in_release_too() {
        euclidean(&[0.0, 0.0, 0.0], &[1.0]);
    }

    #[test]
    fn deprecated_parallel_shim_matches_the_facade_bitwise() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 40, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, None, None, 23);
        let serial = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        #[allow(deprecated)]
        let parallel = encode_parallel(&model, &data, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "parallel encoding diverged");
            }
        }
    }
}
