//! Zero-shot trajectory similarity (§III-D3): pre-trained representations
//! are compared with Euclidean distance, no fine-tuning. Batch encoding
//! fans out across threads — the [`crate::model::StartModel`] parameter
//! store is immutable during inference, so workers share it by reference.

use start_traj::{TrajView, Trajectory};

use crate::model::{clamp_view, StartModel};

/// Euclidean distance between two representation vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Encode trajectories in parallel across `threads` workers.
pub fn encode_parallel(
    model: &StartModel,
    trajectories: &[Trajectory],
    threads: usize,
) -> Vec<Vec<f32>> {
    let threads = threads.max(1);
    if threads == 1 || trajectories.len() < threads * 4 {
        return model.encode_trajectories(trajectories);
    }
    let chunk = trajectories.len().div_ceil(threads);
    let mut results: Vec<Vec<Vec<f32>>> = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = trajectories
            .chunks(chunk)
            .map(|part| {
                s.spawn(move |_| {
                    let views: Vec<TrajView> = part
                        .iter()
                        .map(|t| clamp_view(TrajView::identity(t), model.cfg.max_len))
                        .collect();
                    model.encode_views(&views)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_traj::{SimConfig, Simulator};

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn parallel_encoding_matches_serial() {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: 40, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let model = StartModel::new(StartConfig::test_scale(), &city.net, None, None, 23);
        let serial = model.encode_trajectories(&data);
        let parallel = encode_parallel(&model, &data, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "parallel encoding diverged");
            }
        }
    }
}
