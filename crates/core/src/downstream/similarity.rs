//! Zero-shot trajectory similarity (§III-D3): pre-trained representations
//! are compared with Euclidean distance, no fine-tuning. Batch encoding
//! goes through the unified [`crate::encoder::Encoder`] facade, which owns
//! chunking and threading.

/// Euclidean distance between two representation vectors.
///
/// The lengths must match, and the contract holds in release builds too: a
/// `debug_assert` here once let release-mode mismatches silently compute
/// the distance over the shorter common prefix (via `zip`), returning
/// plausible-but-wrong neighbours with no signal. Fallible boundaries (the
/// kNN index layer) check dimensions first and return a typed
/// `DimensionMismatch`; by the time two slices reach this kernel, unequal
/// lengths are an internal invariant violation worth stopping for.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch ({} vs {})", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    /// Regression: a length mismatch must fail loudly in every build
    /// profile — never a silent prefix distance.
    #[test]
    #[should_panic(expected = "length mismatch")]
    fn euclidean_rejects_length_mismatch_in_release_too() {
        euclidean(&[0.0, 0.0, 0.0], &[1.0]);
    }
}
