//! START hyper-parameters and ablation switches.
//!
//! Defaults follow the paper's §IV-C1 settings with dimensions scaled down
//! for CPU training (DESIGN.md §1): the *ratios* — mask span 2, mask ratio
//! 15 %, dropout 0.1, τ = 0.05, λ = 0.6, default augmentations
//! {Trimming, Temporal Shifting} — are the paper's exactly. Every ablation of
//! Fig. 7 is a flag here so the ablation bench drives one code base.

use serde::{Deserialize, Serialize};
use start_traj::Augmentation;

/// How road representations are produced (first stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoadEncoder {
    /// The paper's TPE-GAT (Eqs. 1-4).
    TpeGat,
    /// Fig. 7 `w/o TransProb`: standard GAT, no transfer-probability term.
    GatNoTransProb,
    /// Fig. 7 `w/o TPE-GAT`: randomly initialized learnable road embeddings.
    RandomEmbedding,
    /// Fig. 7 `w/ Node2vec`: learnable embeddings initialized by node2vec.
    Node2VecEmbedding,
}

/// How the attention bias models relative position (second stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalMode {
    /// The paper's irregular time intervals `δ_ij = |t_i - t_j|` (Eq. 8).
    TimeInterval,
    /// Fig. 7 `w/ Hop`: hop distance `δ_ij = |i - j|`.
    Hop,
    /// Fig. 7 `w/o Time interval`: no attention bias at all.
    None,
}

/// Full model + training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StartConfig {
    /// Embedding size `d` (paper: 256; scaled default 64).
    pub dim: usize,
    /// TPE-GAT layers `L1` (paper: 3; scaled default 2).
    pub gat_layers: usize,
    /// Attention heads per GAT layer `H1` (paper: [8, 16, 1]).
    pub gat_heads: Vec<usize>,
    /// Encoder layers `L2` (paper: 6; scaled default 3).
    pub encoder_layers: usize,
    /// Encoder attention heads `H2` (paper: 8; scaled default 4).
    pub encoder_heads: usize,
    /// FFN hidden size (paper uses d; we keep d by default).
    pub ffn_hidden: usize,
    pub dropout: f32,
    /// Span mask length `l_m` (paper: 2).
    pub mask_span: usize,
    /// Mask ratio `p_m` (paper: 0.15).
    pub mask_ratio: f64,
    /// Contrastive temperature `τ` (paper: 0.05).
    pub temperature: f32,
    /// Loss balance `λ` (paper: 0.6).
    pub lambda: f32,
    /// The two augmentations used to build contrastive views
    /// (paper default: Trimming + Temporal Shifting).
    pub augmentations: (Augmentation, Augmentation),
    /// Max trajectory length (paper: 128).
    pub max_len: usize,
    /// Hidden width of the adaptive interval transform (Eq. 9).
    pub interval_hidden: usize,

    // --- ablation switches (Fig. 7) ---
    pub road_encoder: RoadEncoder,
    /// `w/o Time Emb` drops the minute/day embeddings of Eq. 5.
    pub use_time_embedding: bool,
    pub interval_mode: IntervalMode,
    /// `w/o Log` replaces `1/log(e+δ)` with `1/δ`.
    pub use_log_decay: bool,
    /// `w/o Adaptive` freezes the interval matrix (skips Eq. 9).
    pub use_adaptive_interval: bool,
    /// `w/o Mask` drops the span-masked recovery loss.
    pub use_mask_loss: bool,
    /// `w/o Contra` drops the contrastive loss.
    pub use_contrastive_loss: bool,
}

impl Default for StartConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            gat_layers: 2,
            gat_heads: vec![4, 4],
            encoder_layers: 3,
            encoder_heads: 4,
            ffn_hidden: 64,
            dropout: 0.1,
            mask_span: 2,
            mask_ratio: 0.15,
            temperature: 0.05,
            lambda: 0.6,
            augmentations: (Augmentation::Trim, Augmentation::TemporalShift),
            max_len: 128,
            interval_hidden: 16,
            road_encoder: RoadEncoder::TpeGat,
            use_time_embedding: true,
            interval_mode: IntervalMode::TimeInterval,
            use_log_decay: true,
            use_adaptive_interval: true,
            use_mask_loss: true,
            use_contrastive_loss: true,
        }
    }
}

/// Typed rejection of an inconsistent [`StartConfig`], produced by
/// [`StartConfig::validate`] / [`StartConfigBuilder::build`] instead of an
/// assert so callers (services, config files, CLIs) can surface it.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `dim == 0`.
    ZeroDim,
    /// `max_len == 0`.
    ZeroMaxLen,
    /// `gat_heads.len() != gat_layers`.
    GatHeadsCount { layers: usize, entries: usize },
    /// A GAT layer's head count is zero or does not divide `dim`.
    GatHeadsIndivisible { layer: usize, dim: usize, heads: usize },
    /// `encoder_heads` is zero or does not divide `dim`.
    EncoderHeadsIndivisible { dim: usize, heads: usize },
    /// `dropout` outside `[0, 1)`.
    DropoutRange { value: f32 },
    /// `mask_ratio` outside `[0, 1]`.
    MaskRatioRange { value: f64 },
    /// `lambda` outside `[0, 1]`.
    LambdaRange { value: f32 },
    /// `temperature <= 0`.
    TemperatureNotPositive { value: f32 },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDim => write!(f, "dim must be positive"),
            ConfigError::ZeroMaxLen => write!(f, "max_len must be positive"),
            ConfigError::GatHeadsCount { layers, entries } => {
                write!(f, "gat_heads has {entries} entries for {layers} layers")
            }
            ConfigError::GatHeadsIndivisible { layer, dim, heads } => {
                write!(f, "gat layer {layer}: dim {dim} not divisible by heads {heads}")
            }
            ConfigError::EncoderHeadsIndivisible { dim, heads } => {
                write!(f, "dim {dim} not divisible by encoder heads {heads}")
            }
            ConfigError::DropoutRange { value } => {
                write!(f, "dropout {value} outside [0, 1)")
            }
            ConfigError::MaskRatioRange { value } => {
                write!(f, "mask_ratio {value} outside [0, 1]")
            }
            ConfigError::LambdaRange { value } => write!(f, "lambda {value} outside [0, 1]"),
            ConfigError::TemperatureNotPositive { value } => {
                write!(f, "temperature must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder over [`StartConfig`] — the only sanctioned way to
/// construct a non-preset configuration outside tests (`start-analysis`
/// lint rule 5 forbids direct struct literals elsewhere). Starts from
/// [`StartConfig::default`]; every setter is chainable and
/// [`StartConfigBuilder::build`] runs [`StartConfig::validate`].
#[derive(Debug, Clone)]
pub struct StartConfigBuilder {
    cfg: StartConfig,
}

impl StartConfigBuilder {
    /// Embedding size `d`.
    pub fn dim(mut self, dim: usize) -> Self {
        self.cfg.dim = dim;
        self
    }

    /// Attention heads per GAT layer; also sets `gat_layers` to the entry
    /// count, keeping the two fields consistent by construction.
    pub fn gat_heads(mut self, heads: Vec<usize>) -> Self {
        self.cfg.gat_layers = heads.len();
        self.cfg.gat_heads = heads;
        self
    }

    pub fn encoder_layers(mut self, layers: usize) -> Self {
        self.cfg.encoder_layers = layers;
        self
    }

    pub fn encoder_heads(mut self, heads: usize) -> Self {
        self.cfg.encoder_heads = heads;
        self
    }

    pub fn ffn_hidden(mut self, hidden: usize) -> Self {
        self.cfg.ffn_hidden = hidden;
        self
    }

    pub fn dropout(mut self, p: f32) -> Self {
        self.cfg.dropout = p;
        self
    }

    pub fn mask_span(mut self, span: usize) -> Self {
        self.cfg.mask_span = span;
        self
    }

    pub fn mask_ratio(mut self, ratio: f64) -> Self {
        self.cfg.mask_ratio = ratio;
        self
    }

    pub fn temperature(mut self, tau: f32) -> Self {
        self.cfg.temperature = tau;
        self
    }

    pub fn lambda(mut self, lambda: f32) -> Self {
        self.cfg.lambda = lambda;
        self
    }

    pub fn augmentations(mut self, pair: (Augmentation, Augmentation)) -> Self {
        self.cfg.augmentations = pair;
        self
    }

    pub fn max_len(mut self, max_len: usize) -> Self {
        self.cfg.max_len = max_len;
        self
    }

    pub fn interval_hidden(mut self, hidden: usize) -> Self {
        self.cfg.interval_hidden = hidden;
        self
    }

    pub fn road_encoder(mut self, enc: RoadEncoder) -> Self {
        self.cfg.road_encoder = enc;
        self
    }

    pub fn use_time_embedding(mut self, on: bool) -> Self {
        self.cfg.use_time_embedding = on;
        self
    }

    pub fn interval_mode(mut self, mode: IntervalMode) -> Self {
        self.cfg.interval_mode = mode;
        self
    }

    pub fn use_log_decay(mut self, on: bool) -> Self {
        self.cfg.use_log_decay = on;
        self
    }

    pub fn use_adaptive_interval(mut self, on: bool) -> Self {
        self.cfg.use_adaptive_interval = on;
        self
    }

    pub fn use_mask_loss(mut self, on: bool) -> Self {
        self.cfg.use_mask_loss = on;
        self
    }

    pub fn use_contrastive_loss(mut self, on: bool) -> Self {
        self.cfg.use_contrastive_loss = on;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<StartConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl StartConfig {
    /// A validating builder seeded with [`StartConfig::default`].
    pub fn builder() -> StartConfigBuilder {
        StartConfigBuilder { cfg: StartConfig::default() }
    }

    /// A builder seeded with this configuration (ablation sweeps start from
    /// a preset and flip one switch).
    pub fn to_builder(&self) -> StartConfigBuilder {
        StartConfigBuilder { cfg: self.clone() }
    }

    /// Paper-scale configuration (§IV-C1) — runnable, but slow on CPU.
    pub fn paper_scale() -> Self {
        Self {
            dim: 256,
            gat_layers: 3,
            gat_heads: vec![8, 16, 1],
            encoder_layers: 6,
            encoder_heads: 8,
            ffn_hidden: 256,
            ..Self::default()
        }
    }

    /// A very small config for unit tests.
    pub fn test_scale() -> Self {
        Self {
            dim: 32,
            gat_layers: 1,
            gat_heads: vec![2],
            encoder_layers: 2,
            encoder_heads: 2,
            ffn_hidden: 32,
            interval_hidden: 8,
            ..Self::default()
        }
    }

    /// Sanity-check internal consistency, returning the first violation as
    /// a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim == 0 {
            return Err(ConfigError::ZeroDim);
        }
        if self.max_len == 0 {
            return Err(ConfigError::ZeroMaxLen);
        }
        if self.gat_heads.len() != self.gat_layers {
            return Err(ConfigError::GatHeadsCount {
                layers: self.gat_layers,
                entries: self.gat_heads.len(),
            });
        }
        for (l, &h) in self.gat_heads.iter().enumerate() {
            if h == 0 || !self.dim.is_multiple_of(h) {
                return Err(ConfigError::GatHeadsIndivisible { layer: l, dim: self.dim, heads: h });
            }
        }
        if self.encoder_heads == 0 || !self.dim.is_multiple_of(self.encoder_heads) {
            return Err(ConfigError::EncoderHeadsIndivisible {
                dim: self.dim,
                heads: self.encoder_heads,
            });
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(ConfigError::DropoutRange { value: self.dropout });
        }
        if !(0.0..=1.0).contains(&self.mask_ratio) {
            return Err(ConfigError::MaskRatioRange { value: self.mask_ratio });
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(ConfigError::LambdaRange { value: self.lambda });
        }
        if self.temperature <= 0.0 {
            return Err(ConfigError::TemperatureNotPositive { value: self.temperature });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_paper_scale_validate() {
        assert!(StartConfig::default().validate().is_ok());
        assert!(StartConfig::paper_scale().validate().is_ok());
        assert!(StartConfig::test_scale().validate().is_ok());
    }

    #[test]
    fn bad_configs_rejected() {
        // wrong count and non-divisor
        let c = StartConfig { gat_heads: vec![3], ..StartConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::GatHeadsCount { layers: 2, entries: 1 }));

        let c = StartConfig { encoder_heads: 5, ..StartConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::EncoderHeadsIndivisible { dim: 64, heads: 5 }));

        let c = StartConfig { temperature: 0.0, ..StartConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::TemperatureNotPositive { value: 0.0 }));
    }

    #[test]
    fn builder_builds_validated_configs() {
        let cfg = StartConfig::builder()
            .dim(32)
            .gat_heads(vec![2])
            .encoder_layers(2)
            .encoder_heads(2)
            .ffn_hidden(32)
            .build()
            .unwrap();
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.gat_layers, 1, "gat_heads must set gat_layers");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_reports_typed_errors() {
        assert_eq!(StartConfig::builder().dim(0).build(), Err(ConfigError::ZeroDim));
        assert_eq!(StartConfig::builder().max_len(0).build(), Err(ConfigError::ZeroMaxLen));
        assert_eq!(
            StartConfig::builder().dim(64).encoder_heads(5).build(),
            Err(ConfigError::EncoderHeadsIndivisible { dim: 64, heads: 5 })
        );
        assert_eq!(
            StartConfig::builder().gat_heads(vec![3]).build(),
            Err(ConfigError::GatHeadsIndivisible { layer: 0, dim: 64, heads: 3 })
        );
        assert_eq!(
            StartConfig::builder().dropout(1.0).build(),
            Err(ConfigError::DropoutRange { value: 1.0 })
        );
        assert_eq!(
            StartConfig::builder().mask_ratio(1.5).build(),
            Err(ConfigError::MaskRatioRange { value: 1.5 })
        );
        assert_eq!(
            StartConfig::builder().lambda(-0.1).build(),
            Err(ConfigError::LambdaRange { value: -0.1 })
        );
    }

    #[test]
    fn to_builder_round_trips_presets() {
        let base = StartConfig::test_scale();
        let flipped = base.to_builder().use_mask_loss(false).build().unwrap();
        assert!(!flipped.use_mask_loss);
        assert_eq!(flipped.dim, base.dim);
        let err = StartConfig::test_scale().to_builder().encoder_heads(7).build();
        assert_eq!(err, Err(ConfigError::EncoderHeadsIndivisible { dim: 32, heads: 7 }));
    }
}
