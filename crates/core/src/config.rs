//! START hyper-parameters and ablation switches.
//!
//! Defaults follow the paper's §IV-C1 settings with dimensions scaled down
//! for CPU training (DESIGN.md §1): the *ratios* — mask span 2, mask ratio
//! 15 %, dropout 0.1, τ = 0.05, λ = 0.6, default augmentations
//! {Trimming, Temporal Shifting} — are the paper's exactly. Every ablation of
//! Fig. 7 is a flag here so the ablation bench drives one code base.

use serde::{Deserialize, Serialize};
use start_traj::Augmentation;

/// How road representations are produced (first stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoadEncoder {
    /// The paper's TPE-GAT (Eqs. 1-4).
    TpeGat,
    /// Fig. 7 `w/o TransProb`: standard GAT, no transfer-probability term.
    GatNoTransProb,
    /// Fig. 7 `w/o TPE-GAT`: randomly initialized learnable road embeddings.
    RandomEmbedding,
    /// Fig. 7 `w/ Node2vec`: learnable embeddings initialized by node2vec.
    Node2VecEmbedding,
}

/// How the attention bias models relative position (second stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalMode {
    /// The paper's irregular time intervals `δ_ij = |t_i - t_j|` (Eq. 8).
    TimeInterval,
    /// Fig. 7 `w/ Hop`: hop distance `δ_ij = |i - j|`.
    Hop,
    /// Fig. 7 `w/o Time interval`: no attention bias at all.
    None,
}

/// Full model + training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StartConfig {
    /// Embedding size `d` (paper: 256; scaled default 64).
    pub dim: usize,
    /// TPE-GAT layers `L1` (paper: 3; scaled default 2).
    pub gat_layers: usize,
    /// Attention heads per GAT layer `H1` (paper: [8, 16, 1]).
    pub gat_heads: Vec<usize>,
    /// Encoder layers `L2` (paper: 6; scaled default 3).
    pub encoder_layers: usize,
    /// Encoder attention heads `H2` (paper: 8; scaled default 4).
    pub encoder_heads: usize,
    /// FFN hidden size (paper uses d; we keep d by default).
    pub ffn_hidden: usize,
    pub dropout: f32,
    /// Span mask length `l_m` (paper: 2).
    pub mask_span: usize,
    /// Mask ratio `p_m` (paper: 0.15).
    pub mask_ratio: f64,
    /// Contrastive temperature `τ` (paper: 0.05).
    pub temperature: f32,
    /// Loss balance `λ` (paper: 0.6).
    pub lambda: f32,
    /// The two augmentations used to build contrastive views
    /// (paper default: Trimming + Temporal Shifting).
    pub augmentations: (Augmentation, Augmentation),
    /// Max trajectory length (paper: 128).
    pub max_len: usize,
    /// Hidden width of the adaptive interval transform (Eq. 9).
    pub interval_hidden: usize,

    // --- ablation switches (Fig. 7) ---
    pub road_encoder: RoadEncoder,
    /// `w/o Time Emb` drops the minute/day embeddings of Eq. 5.
    pub use_time_embedding: bool,
    pub interval_mode: IntervalMode,
    /// `w/o Log` replaces `1/log(e+δ)` with `1/δ`.
    pub use_log_decay: bool,
    /// `w/o Adaptive` freezes the interval matrix (skips Eq. 9).
    pub use_adaptive_interval: bool,
    /// `w/o Mask` drops the span-masked recovery loss.
    pub use_mask_loss: bool,
    /// `w/o Contra` drops the contrastive loss.
    pub use_contrastive_loss: bool,
}

impl Default for StartConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            gat_layers: 2,
            gat_heads: vec![4, 4],
            encoder_layers: 3,
            encoder_heads: 4,
            ffn_hidden: 64,
            dropout: 0.1,
            mask_span: 2,
            mask_ratio: 0.15,
            temperature: 0.05,
            lambda: 0.6,
            augmentations: (Augmentation::Trim, Augmentation::TemporalShift),
            max_len: 128,
            interval_hidden: 16,
            road_encoder: RoadEncoder::TpeGat,
            use_time_embedding: true,
            interval_mode: IntervalMode::TimeInterval,
            use_log_decay: true,
            use_adaptive_interval: true,
            use_mask_loss: true,
            use_contrastive_loss: true,
        }
    }
}

impl StartConfig {
    /// Paper-scale configuration (§IV-C1) — runnable, but slow on CPU.
    pub fn paper_scale() -> Self {
        Self {
            dim: 256,
            gat_layers: 3,
            gat_heads: vec![8, 16, 1],
            encoder_layers: 6,
            encoder_heads: 8,
            ffn_hidden: 256,
            ..Self::default()
        }
    }

    /// A very small config for unit tests.
    pub fn test_scale() -> Self {
        Self {
            dim: 32,
            gat_layers: 1,
            gat_heads: vec![2],
            encoder_layers: 2,
            encoder_heads: 2,
            ffn_hidden: 32,
            interval_hidden: 8,
            ..Self::default()
        }
    }

    /// Sanity-check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.gat_heads.len() != self.gat_layers {
            return Err(format!(
                "gat_heads has {} entries for {} layers",
                self.gat_heads.len(),
                self.gat_layers
            ));
        }
        for (l, &h) in self.gat_heads.iter().enumerate() {
            if h == 0 || !self.dim.is_multiple_of(h) {
                return Err(format!("gat layer {l}: dim {} not divisible by heads {h}", self.dim));
            }
        }
        if self.encoder_heads == 0 || !self.dim.is_multiple_of(self.encoder_heads) {
            return Err(format!(
                "dim {} not divisible by encoder heads {}",
                self.dim, self.encoder_heads
            ));
        }
        if !(0.0..=1.0).contains(&self.mask_ratio) {
            return Err("mask_ratio outside [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err("lambda outside [0, 1]".into());
        }
        if self.temperature <= 0.0 {
            return Err("temperature must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_paper_scale_validate() {
        assert!(StartConfig::default().validate().is_ok());
        assert!(StartConfig::paper_scale().validate().is_ok());
        assert!(StartConfig::test_scale().validate().is_ok());
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = StartConfig::default();
        c.gat_heads = vec![3]; // wrong count and non-divisor
        assert!(c.validate().is_err());

        let mut c = StartConfig::default();
        c.encoder_heads = 5;
        assert!(c.validate().is_err());

        let mut c = StartConfig::default();
        c.temperature = 0.0;
        assert!(c.validate().is_err());
    }
}
