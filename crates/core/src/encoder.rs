//! The unified inference facade: [`Encoder`] + [`EncodeOptions`].
//!
//! Historically inference had three overlapping entry points —
//! `StartModel::encode_trajectories`, `StartModel::encode_views`, and
//! `downstream::similarity::encode_parallel` — each with its own hard-coded
//! chunking and threading. Those shims rode one deprecation release and are
//! now deleted; this is the only encode API:
//!
//! ```ignore
//! let embs = model.encoder().encode(&trajectories, &EncodeOptions::default())?;
//! ```
//!
//! What the facade owns:
//!
//! - **Validation** (typed [`EncodeError`], no asserts): empty views are
//!   rejected; over-long views are clamped to `cfg.max_len` when
//!   [`EncodeOptions::clamp`] is set (the default) and rejected otherwise.
//! - **Chunked pooled tapes**: views are encoded `chunk` at a time on an
//!   eval-mode [`Graph`] that computes the road representation matrix once
//!   per chunk; after every view the tape is pruned with
//!   [`Graph::forward_release`] (keeping only the road matrix), so peak
//!   memory stays at one-view scale regardless of `chunk`. Buffers cycle
//!   through a [`BufferPool`] across chunks.
//! - **Threading**: with `threads > 1`, whole chunks are distributed
//!   round-robin over scoped workers. Chunk boundaries are identical to the
//!   single-thread schedule and each view's embedding depends only on the
//!   view and the (frozen) parameters, so the output is **bitwise identical
//!   for every thread count** — the property the serving layer's tests pin.
//! - **Caching**: an optional sharded-LRU [`EmbeddingCache`] keyed by a
//!   128-bit content [`Fingerprint`] of the (clamped) view. Duplicate views
//!   inside one call are encoded once even with the cache disabled.
//!
//! Worker panics (impossible input indexes, poisoned kernels) propagate to
//! the caller via `resume_unwind` exactly like the legacy paths — turning
//! them into typed errors is the job of `start-serve`'s service boundary.

use start_sync::atomic::{AtomicU64, Ordering};
use start_sync::{Arc, Mutex};
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use start_nn::graph::Graph;
use start_nn::BufferPool;
use start_traj::{TrajView, Trajectory};

use crate::model::{clamp_view, StartModel};

/// A trajectory representation vector (`d` pooled `[CLS]` activations).
pub type Embedding = Vec<f32>;

// ---------------------------------------------------------------------------
// Options and errors
// ---------------------------------------------------------------------------

/// Knobs of one [`Encoder::encode`] call.
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Worker threads for large batches. `0` is rejected
    /// ([`EncodeError::ZeroThreads`]); `1` (the default) is the sequential
    /// schedule the multi-threaded output is defined to bitwise-match.
    pub threads: usize,
    /// Views per tape chunk; the road representation matrix is computed once
    /// per chunk. `0` falls back to [`EncodeOptions::DEFAULT_CHUNK`].
    pub chunk: usize,
    /// Clamp over-long views to `cfg.max_len` (keeps the prefix). When
    /// `false`, over-long views are an [`EncodeError::TooLong`].
    pub clamp: bool,
    /// Optional shared embedding cache consulted (and filled) per view.
    pub cache: Option<Arc<EmbeddingCache>>,
}

impl Default for EncodeOptions {
    /// Sequential defaults: 1 thread, [`Self::DEFAULT_CHUNK`] views per
    /// chunk, clamping on, no cache.
    fn default() -> Self {
        Self { threads: 1, chunk: Self::DEFAULT_CHUNK, clamp: true, cache: None }
    }
}

impl EncodeOptions {
    /// Views per graph chunk when unspecified — the legacy entry points'
    /// hard-coded chunk size, kept so shimmed callers see identical batching.
    pub const DEFAULT_CHUNK: usize = 64;

    fn threads(&self) -> usize {
        self.threads
    }

    fn chunk(&self) -> usize {
        if self.chunk == 0 {
            Self::DEFAULT_CHUNK
        } else {
            self.chunk
        }
    }
}

/// Typed validation failures of an encode call. Encoding itself is
/// deterministic arithmetic and cannot fail; everything here is caught
/// before the first tape is recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// View `index` has no roads; there is nothing to pool.
    EmptyView { index: usize },
    /// View `index` exceeds `max_len` and clamping was disabled.
    TooLong { index: usize, len: usize, max_len: usize },
    /// `opts.threads == 0`.
    ZeroThreads,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::EmptyView { index } => {
                write!(f, "view {index} is empty; cannot encode a zero-length trajectory")
            }
            EncodeError::TooLong { index, len, max_len } => write!(
                f,
                "view {index} has {len} roads but max_len is {max_len} \
                 (set EncodeOptions::clamp to truncate)"
            ),
            EncodeError::ZeroThreads => write!(f, "EncodeOptions::threads must be >= 1"),
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// 128-bit content hash of a (clamped) view: roads, times, mask flags, and
/// the embedding-dropout probability — everything the eval-mode forward pass
/// reads. Two independent FNV-1a-64 streams with distinct offset bases form
/// the halves, so accidental collisions are out of reach for any realistic
/// embedding-store size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_BASIS_HI: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint the exact content an encode of `view` consumes.
pub fn fingerprint_view(view: &TrajView) -> Fingerprint {
    let mut lo = FNV_BASIS_LO;
    let mut hi = FNV_BASIS_HI;
    let mut feed = |bytes: &[u8]| {
        lo = fnv1a(lo, bytes);
        hi = fnv1a(hi, bytes);
    };
    feed(&(view.len() as u64).to_le_bytes());
    for r in &view.roads {
        feed(&r.0.to_le_bytes());
    }
    for t in &view.times {
        feed(&t.to_le_bytes());
    }
    for &m in &view.masked {
        feed(&[m as u8]);
    }
    feed(&view.embed_dropout.to_bits().to_le_bytes());
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

// ---------------------------------------------------------------------------
// Sharded LRU embedding cache
// ---------------------------------------------------------------------------

/// Cache hit/miss counters plus occupancy, as one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
    /// Model-version epoch of the cache instance these counters describe.
    pub epoch: u64,
}

impl CacheStats {
    /// Hits over lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    key: u128,
    emb: Embedding,
    prev: usize,
    next: usize,
}

/// One LRU shard: an intrusive doubly-linked recency list over slab slots
/// plus a key map. All operations are O(1).
struct Shard {
    map: HashMap<u128, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u128) -> Option<Embedding> {
        let i = *self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].emb.clone())
    }

    fn insert(&mut self, key: u128, emb: Embedding) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].emb = emb;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot { key, emb, prev: NIL, next: NIL });
            self.slots.len() - 1
        } else {
            // Evict the least-recently-used entry and reuse its slot.
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.slots[lru] = Slot { key, emb, prev: NIL, next: NIL };
            lru
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// A sharded LRU cache from view [`Fingerprint`]s to embeddings.
///
/// Shard count is rounded up to a power of two; a fingerprint's shard is its
/// low bits, its in-shard key the full 128-bit value. Each shard is an O(1)
/// intrusive-list LRU behind its own mutex, so concurrent encode workers
/// only contend when they touch the same shard. A cached vector is returned
/// by clone and is bit-for-bit the vector that was inserted.
///
/// A cache instance is pinned to one model-version **epoch** at
/// construction. The serving tier never mutates a cache across a weight
/// swap — invalidation is a fresh cache at the new epoch, so an in-flight
/// encode racing the swap can only insert into the retiring instance and
/// stale bits are unreachable from the new version by construction.
pub struct EmbeddingCache {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for EmbeddingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EmbeddingCache")
            .field("shards", &self.shards.len())
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl EmbeddingCache {
    /// Cache with `capacity` total entries across 8 shards, at epoch 0.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 8)
    }

    /// Cache with `capacity` total entries across `shards` shards (rounded
    /// up to a power of two; each shard gets an equal slice, at least 1),
    /// at epoch 0.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self::with_shards_at_epoch(capacity, shards, 0)
    }

    /// [`EmbeddingCache::with_shards`] pinned to a model-version `epoch` —
    /// the serving tier constructs one cache per published model version.
    pub fn with_shards_at_epoch(capacity: usize, shards: usize, epoch: u64) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            mask: shards - 1,
            epoch,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The model-version epoch this cache was built for (immutable).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[(fp.0 as usize) & self.mask]
    }

    /// Look up a fingerprint, refreshing its recency on hit.
    pub fn get(&self, fp: Fingerprint) -> Option<Embedding> {
        let got = lock(self.shard(fp)).get(fp.0);
        // Hit/miss tallies are advisory; stats() is approximate.
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed), // relaxed-ok: advisory tally
            None => self.misses.fetch_add(1, Ordering::Relaxed),  // relaxed-ok: advisory tally
        };
        got
    }

    /// Insert (or refresh) an embedding, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, fp: Fingerprint, emb: Embedding) {
        lock(self.shard(fp)).insert(fp.0, emb);
    }

    /// Current number of cached embeddings.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // relaxed-ok: approximate snapshot
            misses: self.misses.load(Ordering::Relaxed), // relaxed-ok: approximate snapshot
            entries: self.len(),
            capacity: self.shards.iter().map(|s| lock(s).capacity).sum(),
            epoch: self.epoch,
        }
    }
}

/// Lock a shard, riding through poisoning: the cache holds plain data and a
/// panicked writer can only have left a consistent-but-stale shard (every
/// mutation completes or the entry stays absent), so serving from it is safe.
fn lock(m: &Mutex<Shard>) -> start_sync::MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(start_sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// The Encoder facade
// ---------------------------------------------------------------------------

/// The single inference entry point, borrowed from a [`StartModel`] via
/// [`StartModel::encoder`]. See the module docs for the contract.
pub struct Encoder<'m> {
    model: &'m StartModel,
}

impl StartModel {
    /// Borrow the unified inference facade for this model.
    pub fn encoder(&self) -> Encoder<'_> {
        Encoder { model: self }
    }
}

/// A deduplicated unit of work: one view to encode, and every output slot
/// it must fill.
struct MissGroup {
    view: TrajView,
    fingerprint: Fingerprint,
    slots: Vec<usize>,
}

impl<'m> Encoder<'m> {
    /// Embed a batch of trajectories (identity views).
    pub fn encode(
        &self,
        trajectories: &[Trajectory],
        opts: &EncodeOptions,
    ) -> Result<Vec<Embedding>, EncodeError> {
        let views: Vec<TrajView> = trajectories.iter().map(TrajView::identity).collect();
        self.encode_views(&views, opts)
    }

    /// Embed pre-built views (masking, departure-only timestamps, …).
    pub fn encode_views(
        &self,
        views: &[TrajView],
        opts: &EncodeOptions,
    ) -> Result<Vec<Embedding>, EncodeError> {
        let (out, _pool) = self.encode_views_impl(views, opts, None)?;
        Ok(out)
    }

    /// [`Encoder::encode_views`] threading an external [`BufferPool`]
    /// through the call, for long-lived callers (the serving workers) that
    /// reuse one pool across many batches. Forces the sequential schedule —
    /// a pool cannot be shared across workers — which is also the schedule
    /// every other configuration bitwise-matches.
    pub fn encode_views_pooled(
        &self,
        views: &[TrajView],
        opts: &EncodeOptions,
        pool: BufferPool,
    ) -> Result<(Vec<Embedding>, BufferPool), EncodeError> {
        let (out, pool) = self.encode_views_impl(views, opts, Some(pool))?;
        Ok((out, pool.unwrap_or_default()))
    }

    fn encode_views_impl(
        &self,
        views: &[TrajView],
        opts: &EncodeOptions,
        pool: Option<BufferPool>,
    ) -> Result<(Vec<Embedding>, Option<BufferPool>), EncodeError> {
        if opts.threads() == 0 {
            return Err(EncodeError::ZeroThreads);
        }
        let max_len = self.model.cfg.max_len;
        let mut slots: Vec<Option<Embedding>> = vec![None; views.len()];
        let mut misses: Vec<MissGroup> = Vec::new();
        let mut seen: HashMap<u128, usize> = HashMap::new();

        for (i, view) in views.iter().enumerate() {
            if view.is_empty() {
                return Err(EncodeError::EmptyView { index: i });
            }
            if view.len() > max_len && !opts.clamp {
                return Err(EncodeError::TooLong { index: i, len: view.len(), max_len });
            }
            let view = clamp_view(view.clone(), max_len);
            let fp = fingerprint_view(&view);
            if let Some(cache) = &opts.cache {
                if let Some(emb) = cache.get(fp) {
                    slots[i] = Some(emb);
                    continue;
                }
            }
            match seen.get(&fp.0) {
                Some(&g) => misses[g].slots.push(i),
                None => {
                    seen.insert(fp.0, misses.len());
                    misses.push(MissGroup { view, fingerprint: fp, slots: vec![i] });
                }
            }
        }

        let miss_views: Vec<&TrajView> = misses.iter().map(|m| &m.view).collect();
        let (encoded, pool) = self.encode_unique(&miss_views, opts, pool);

        for (group, mut emb) in misses.iter().zip(encoded) {
            if let Some(cache) = &opts.cache {
                cache.insert(group.fingerprint, emb.clone());
            }
            let last = group.slots.len() - 1;
            for (n, &slot) in group.slots.iter().enumerate() {
                slots[slot] = Some(if n == last { std::mem::take(&mut emb) } else { emb.clone() });
            }
        }
        let out = slots
            .into_iter()
            .map(|s| match s {
                Some(e) => e,
                // Every index is either a cache hit or a member of exactly
                // one miss group, so an unfilled slot is an encoder bug.
                None => panic!("encoder invariant violated: output slot left unfilled"),
            })
            .collect();
        Ok((out, pool))
    }

    /// Encode already-validated, already-deduplicated views. The chunk
    /// schedule is fixed by `opts.chunk`; `threads > 1` only changes which
    /// worker runs a chunk, never its boundaries or its content.
    fn encode_unique(
        &self,
        views: &[&TrajView],
        opts: &EncodeOptions,
        pool: Option<BufferPool>,
    ) -> (Vec<Embedding>, Option<BufferPool>) {
        let chunk = opts.chunk();
        let num_chunks = views.len().div_ceil(chunk.max(1));
        let threads = opts.threads().min(num_chunks).max(1);

        if threads == 1 || pool.is_some() {
            let mut p = pool.unwrap_or_default();
            let mut out = Vec::with_capacity(views.len());
            for part in views.chunks(chunk) {
                p = self.encode_chunk(part, p, &mut out);
            }
            return (out, Some(p));
        }

        // Chunks are dealt round-robin; worker w owns chunks w, w+T, w+2T, …
        let chunks: Vec<&[&TrajView]> = views.chunks(chunk).collect();
        let mut per_chunk: Vec<Vec<Embedding>> = vec![Vec::new(); chunks.len()];
        crossbeam::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let mine: Vec<(usize, &[&TrajView])> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == w)
                    .map(|(i, c)| (i, *c))
                    .collect();
                handles.push(s.spawn(move |_| {
                    let mut p = BufferPool::new();
                    let mut done = Vec::with_capacity(mine.len());
                    for (idx, part) in mine {
                        let mut embs = Vec::with_capacity(part.len());
                        p = self.encode_chunk(part, p, &mut embs);
                        done.push((idx, embs));
                    }
                    done
                }));
            }
            for h in handles {
                let done = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                for (idx, embs) in done {
                    per_chunk[idx] = embs;
                }
            }
        })
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
        (per_chunk.into_iter().flatten().collect(), None)
    }

    /// One chunk on one pooled eval tape: road representations computed
    /// once, the tape pruned back to them after every view.
    fn encode_chunk(
        &self,
        views: &[&TrajView],
        pool: BufferPool,
        out: &mut Vec<Embedding>,
    ) -> BufferPool {
        // Dropout is inert on an eval tape, so this rng is never drawn; it
        // exists to satisfy the recording API and keep one code path.
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::with_pool(&self.model.store, false, pool);
        let roads = self.model.road_reprs(&mut g);
        for view in views {
            let enc = self.model.encode_view(&mut g, view, roads, &mut rng);
            out.push(g.value(enc.pooled).row(0).to_vec());
            g.forward_release(&[roads]);
        }
        g.reset();
        g.into_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StartConfig;
    use start_roadnet::synth::{generate_city, CityConfig};
    use start_roadnet::TransferMatrix;
    use start_traj::{SimConfig, Simulator};

    fn setup(n: usize) -> (start_roadnet::City, Vec<Trajectory>, TransferMatrix) {
        let city = generate_city("t", &CityConfig::tiny());
        let sim = Simulator::new(
            &city.net,
            SimConfig { num_trajectories: n, num_drivers: 4, ..Default::default() },
        );
        let data = sim.generate();
        let tm = TransferMatrix::from_sequences(
            city.net.num_segments(),
            data.iter().map(|t| t.roads.as_slice()),
        );
        (city, data, tm)
    }

    fn bits(v: &[Embedding]) -> Vec<Vec<u32>> {
        v.iter().map(|e| e.iter().map(|x| x.to_bits()).collect()).collect()
    }

    /// The facade is the only encode entry point (the deprecated shims are
    /// deleted); pin that a batch encode is bitwise the concatenation of
    /// one-trajectory encodes, so callers migrating off any old path can
    /// compare against per-call results.
    #[test]
    fn encode_matches_per_trajectory_calls_bitwise() {
        let (city, data, tm) = setup(30);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let batched = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        let single: Vec<Embedding> = data
            .iter()
            .map(|t| {
                let one = std::slice::from_ref(t);
                model.encoder().encode(one, &EncodeOptions::default()).unwrap().remove(0)
            })
            .collect();
        assert_eq!(bits(&batched), bits(&single));
    }

    #[test]
    fn cache_epoch_is_pinned_at_construction_and_reported() {
        let cache = EmbeddingCache::with_shards_at_epoch(16, 4, 7);
        assert_eq!(cache.epoch(), 7);
        assert_eq!(cache.stats().epoch, 7);
        assert_eq!(EmbeddingCache::new(16).epoch(), 0);
    }

    #[test]
    fn thread_and_chunk_counts_do_not_change_the_bits() {
        let (city, data, tm) = setup(40);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let base = model.encoder().encode(&data, &EncodeOptions::default()).unwrap();
        for (threads, chunk) in [(1, 4), (2, 8), (4, 4), (3, 64), (4, 1)] {
            let opts = EncodeOptions { threads, chunk, clamp: true, cache: None };
            let got = model.encoder().encode(&data, &opts).unwrap();
            assert_eq!(bits(&base), bits(&got), "threads={threads} chunk={chunk} diverged");
        }
    }

    #[test]
    fn pooled_variant_matches_and_returns_a_warm_pool() {
        let (city, data, tm) = setup(20);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let views: Vec<TrajView> = data.iter().map(TrajView::identity).collect();
        let base = model.encoder().encode_views(&views, &EncodeOptions::default()).unwrap();
        let (a, pool) = model
            .encoder()
            .encode_views_pooled(&views, &EncodeOptions::default(), BufferPool::new())
            .unwrap();
        // Second call on the warmed pool: identical bits again.
        let (b, _pool) =
            model.encoder().encode_views_pooled(&views, &EncodeOptions::default(), pool).unwrap();
        assert_eq!(bits(&base), bits(&a));
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn duplicates_are_deduplicated_but_answered_per_slot() {
        let (city, data, tm) = setup(10);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let batch = vec![
            data[0].clone(),
            data[1].clone(),
            data[0].clone(),
            data[2].clone(),
            data[0].clone(),
        ];
        let out = model.encoder().encode(&batch, &EncodeOptions::default()).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[0], out[4]);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn cache_round_trip_returns_the_identical_vector() {
        let (city, data, tm) = setup(10);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let cache = Arc::new(EmbeddingCache::new(64));
        let opts = EncodeOptions { cache: Some(cache.clone()), ..EncodeOptions::default() };
        let first = model.encoder().encode(&data[..4], &opts).unwrap();
        let again = model.encoder().encode(&data[..4], &opts).unwrap();
        assert_eq!(bits(&first), bits(&again));
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert!(stats.hits >= 4, "second call must be served from cache: {stats:?}");
        // And the cached path agrees with the uncached one.
        let plain = model.encoder().encode(&data[..4], &EncodeOptions::default()).unwrap();
        assert_eq!(bits(&plain), bits(&again));
    }

    #[test]
    fn empty_view_is_a_typed_error() {
        let (city, data, tm) = setup(5);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let mut bad = TrajView::identity(&data[0]);
        bad.roads.clear();
        bad.times.clear();
        bad.masked.clear();
        let err = model
            .encoder()
            .encode_views(&[TrajView::identity(&data[1]), bad], &EncodeOptions::default())
            .unwrap_err();
        assert_eq!(err, EncodeError::EmptyView { index: 1 });
    }

    #[test]
    fn unclamped_overlong_view_is_a_typed_error() {
        let (city, data, tm) = setup(5);
        let cfg = StartConfig::test_scale();
        let model = StartModel::new(cfg, &city.net, Some(&tm), None, 7);
        let mut long = TrajView::identity(&data[0]);
        while long.len() <= model.cfg.max_len {
            long.roads.extend_from_within(..);
            long.times.extend_from_within(..);
            long.masked.extend_from_within(..);
        }
        let opts = EncodeOptions { clamp: false, ..EncodeOptions::default() };
        let err = model.encoder().encode_views(&[long.clone()], &opts).unwrap_err();
        assert!(matches!(err, EncodeError::TooLong { index: 0, .. }), "{err:?}");
        // With clamping (the default) the same view encodes fine.
        let ok = model.encoder().encode_views(&[long], &EncodeOptions::default());
        assert!(ok.is_ok());
    }

    #[test]
    fn zero_threads_rejected() {
        let (city, data, tm) = setup(5);
        let model = StartModel::new(StartConfig::test_scale(), &city.net, Some(&tm), None, 7);
        let opts = EncodeOptions { threads: 0, ..EncodeOptions::default() };
        assert_eq!(
            model.encoder().encode(&data[..2], &opts).unwrap_err(),
            EncodeError::ZeroThreads
        );
    }

    #[test]
    fn fingerprint_separates_every_field() {
        let (_, data, _) = setup(5);
        let base = TrajView::identity(&data[0]);
        let fp = fingerprint_view(&base);
        let mut roads = base.clone();
        roads.roads[0] = start_roadnet::SegmentId(roads.roads[0].0 + 1);
        let mut times = base.clone();
        times.times[0] += 1;
        let mut masked = base.clone();
        masked.masked[0] = !masked.masked[0];
        let mut dropout = base.clone();
        dropout.embed_dropout = 0.25;
        for (label, v) in
            [("roads", roads), ("times", times), ("masked", masked), ("dropout", dropout)]
        {
            assert_ne!(fp, fingerprint_view(&v), "{label} change must change the fingerprint");
        }
        assert_eq!(fp, fingerprint_view(&base.clone()));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = EmbeddingCache::with_shards(2, 1);
        let fp = |n: u128| Fingerprint(n);
        cache.insert(fp(1), vec![1.0]);
        cache.insert(fp(2), vec![2.0]);
        assert_eq!(cache.get(fp(1)), Some(vec![1.0])); // refresh 1 → 2 is LRU
        cache.insert(fp(3), vec![3.0]); // evicts 2
        assert_eq!(cache.get(fp(2)), None);
        assert_eq!(cache.get(fp(1)), Some(vec![1.0]));
        assert_eq!(cache.get(fp(3)), Some(vec![3.0]));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_insert_refreshes_existing_keys() {
        let cache = EmbeddingCache::with_shards(2, 1);
        cache.insert(Fingerprint(1), vec![1.0]);
        cache.insert(Fingerprint(2), vec![2.0]);
        cache.insert(Fingerprint(1), vec![1.5]); // refresh + replace → 2 is LRU
        cache.insert(Fingerprint(3), vec![3.0]);
        assert_eq!(cache.get(Fingerprint(1)), Some(vec![1.5]));
        assert_eq!(cache.get(Fingerprint(2)), None);
    }
}
