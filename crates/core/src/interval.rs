//! The time-interval attention bias of the Time Interval-Aware
//! Self-Attention (§III-B2, Eqs. 7-9).
//!
//! From the visit timestamps of a trajectory we build the interval matrix
//! `Δ` with `δ_ij = |t_i - t_j|` (Eq. 8), decay it with
//! `δ' = 1 / log(e + δ)` so close-in-time roads interact strongly, and make
//! it learnable with the two-linear-transformation of Eq. 9:
//! `δ̃ = LeakyReLU(δ' ω1) ω2^T`. The resulting `(T+1, T+1)` matrix (the
//! extra row/column is the `[CLS]` placeholder) is added to every attention
//! head's pre-softmax scores (Eq. 7).
//!
//! All Fig. 7 interval ablations are switchable: hop distance instead of
//! time, inverse instead of log decay, frozen instead of adaptive.

use rand::rngs::StdRng;

use start_nn::graph::{Graph, NodeId};
use start_nn::params::{Init, ParamId, ParamStore};
use start_nn::Array;
use start_traj::Timestamp;

use crate::config::IntervalMode;

/// Builds the adaptive interval bias for one trajectory.
pub struct IntervalModule {
    omega1: ParamId,
    omega2: ParamId,
    mode: IntervalMode,
    use_log_decay: bool,
    use_adaptive: bool,
}

impl IntervalModule {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        hidden: usize,
        mode: IntervalMode,
        use_log_decay: bool,
        use_adaptive: bool,
    ) -> Self {
        let omega1 = store.param(format!("{name}.omega1"), 1, hidden, Init::XavierUniform, rng);
        let omega2 = store.param(format!("{name}.omega2"), hidden, 1, Init::XavierUniform, rng);
        Self { omega1, omega2, mode, use_log_decay, use_adaptive }
    }

    /// Decayed interval value for a raw gap `δ` (minutes or hops).
    fn decay(&self, delta: f64) -> f32 {
        if self.use_log_decay {
            (1.0 / (std::f64::consts::E + delta).ln()) as f32
        } else {
            // `w/o Log` ablation: inverse decay, clamped away from /0.
            (1.0 / delta.max(1.0)) as f32
        }
    }

    /// The raw decayed matrix `Δ'` of shape `(T+1, T+1)` including `[CLS]`
    /// at index 0 (treated as co-temporal with every road).
    fn decayed_matrix(&self, times: &[Timestamp]) -> Array {
        let t = times.len();
        Array::from_fn(t + 1, t + 1, |r, c| {
            let delta = match self.mode {
                IntervalMode::TimeInterval => {
                    // CLS rows/cols use gap 0 (maximal interaction).
                    if r == 0 || c == 0 {
                        0.0
                    } else {
                        // Minutes, per the paper's minute-level clock.
                        (times[r - 1] - times[c - 1]).abs() as f64 / 60.0
                    }
                }
                IntervalMode::Hop => {
                    // `w/ Hop` ablation: positional distance.
                    (r as f64 - c as f64).abs()
                }
                IntervalMode::None => return 0.0,
            };
            self.decay(delta)
        })
    }

    /// Build the additive attention bias node; `None` when disabled.
    pub fn forward(&self, g: &mut Graph, times: &[Timestamp]) -> Option<NodeId> {
        if self.mode == IntervalMode::None {
            return None;
        }
        let raw = self.decayed_matrix(times);
        let (rows, cols) = raw.shape();
        let flat = g.input(raw.reshaped(rows * cols, 1));
        if !self.use_adaptive {
            // `w/o Adaptive`: the constant decayed matrix is the bias.
            return Some(g.reshape(flat, rows, cols));
        }
        // Eq. 9: scalar -> hidden -> scalar, learnable.
        let w1 = g.param(self.omega1);
        let w2 = g.param(self.omega2);
        let h = g.matmul(flat, w1);
        let h = g.leaky_relu(h, 0.2);
        let out = g.matmul(h, w2);
        Some(g.reshape(out, rows, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use start_nn::params::GradStore;

    fn module(mode: IntervalMode, log: bool, adaptive: bool) -> (ParamStore, IntervalModule) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let m = IntervalModule::new(&mut store, &mut rng, "iv", 8, mode, log, adaptive);
        (store, m)
    }

    #[test]
    fn none_mode_yields_no_bias() {
        let (store, m) = module(IntervalMode::None, true, true);
        let mut g = Graph::new(&store, false);
        assert!(m.forward(&mut g, &[0, 60, 120]).is_none());
    }

    #[test]
    fn closer_times_get_larger_raw_bias() {
        let (_, m) = module(IntervalMode::TimeInterval, true, false);
        let raw = m.decayed_matrix(&[0, 60, 3600]);
        // (1,2): 1 minute apart; (1,3): 60 minutes apart.
        assert!(raw.get(1, 2) > raw.get(1, 3), "decay must be monotone");
        // Diagonal (gap 0) is the maximum.
        assert!(raw.get(1, 1) >= raw.get(1, 2));
    }

    #[test]
    fn frozen_bias_equals_decayed_matrix() {
        let (store, m) = module(IntervalMode::TimeInterval, true, false);
        let times = [0, 300, 900];
        let mut g = Graph::new(&store, false);
        let bias = m.forward(&mut g, &times).expect("bias");
        assert_eq!(g.shape(bias), (4, 4));
        let raw = m.decayed_matrix(&times);
        assert_eq!(g.value(bias).data(), raw.data());
    }

    #[test]
    fn adaptive_bias_is_trainable() {
        let (store, m) = module(IntervalMode::TimeInterval, true, true);
        let mut g = Graph::new(&store, true);
        let bias = m.forward(&mut g, &[0, 120, 600]).expect("bias");
        let sq = g.mul(bias, bias);
        let loss = g.mean_all(sq);
        let mut grads = GradStore::new(&store);
        g.backward(loss, &mut grads);
        let got: Vec<_> = store.ids().filter(|&id| grads.get(id).is_some()).collect();
        assert_eq!(got.len(), 2, "both omegas must receive gradients");
    }

    #[test]
    fn hop_mode_ignores_timestamps() {
        let (store, m) = module(IntervalMode::Hop, true, false);
        let mut g = Graph::new(&store, false);
        let b1 = m.forward(&mut g, &[0, 60, 120]).unwrap();
        let b2 = m.forward(&mut g, &[0, 6000, 12000]).unwrap();
        assert_eq!(g.value(b1).data(), g.value(b2).data());
    }

    #[test]
    fn inverse_decay_differs_from_log_decay() {
        let (_, log_m) = module(IntervalMode::TimeInterval, true, false);
        let (_, inv_m) = module(IntervalMode::TimeInterval, false, false);
        let times = [0, 1200, 7200];
        let a = log_m.decayed_matrix(&times);
        let b = inv_m.decayed_matrix(&times);
        assert_ne!(a.data(), b.data());
        // Inverse decays much faster at large gaps (the paper's point).
        assert!(b.get(1, 3) < a.get(1, 3));
    }
}
