//! `start-analysis` — the workspace lint driver, symbolic tape verifier,
//! and memory-plan inspector.
//!
//! Usage:
//!   `cargo run -p start-analysis -- lint`
//!   `cargo run -p start-analysis -- verify`
//!   `cargo run -p start-analysis -- plan [--check]`
//!
//! `lint` runs the syntactic workspace rules (see lib.rs).
//!
//! `verify` runs the symbolic abstract interpreter (`start_nn::symbolic`,
//! DESIGN.md §15) over every registered model family — the START pretrain
//! shard, the eta/classify fine-tuning heads, the serve-path encode graph,
//! and all eight baseline trainers — tracing each tape at several symbolic
//! batch/sequence sizes and reporting shape mismatches, gradient-flow
//! defects (disconnected losses, stop-gradient leaks, unreachable
//! parameters) and statically reachable numerical hazards. Any Error
//! finding exits non-zero; Warnings and Infos are printed but do not fail
//! the run.
//!
//! `plan` records the standard pretrain shard
//! (`start_core::StandardShard`), runs the static liveness pass over its
//! tape, and prints the resulting `MemoryPlan` — node count, release
//! schedule size, and the three peak figures. With `--check` it
//! additionally lints for regressions:
//!
//! - figures must order `planned ≤ runtime ≤ baseline`;
//! - the planned peak must stay ≥ 30% below the no-plan baseline (the PR's
//!   acceptance floor);
//! - a plan-enabled backward must be bitwise-identical (loss and every
//!   parameter gradient) to a plan-disabled backward of a second,
//!   identically recorded tape;
//! - if `BENCH_memory.json` is committed, the freshly computed planned peak
//!   must not exceed the recorded one by more than 10% (catches planner or
//!   model changes that silently regress memory).
//!
//! Exits non-zero when any rule or check fires; CI runs all three
//! subcommands on every push.

use start_analysis::{lint_workspace, workspace_root};
use start_core::StandardShard;
use start_nn::audit::Severity;
use start_nn::graph::Graph;
use start_nn::liveness::MemoryPlan;
use start_nn::params::GradStore;
use start_nn::symbolic::{verify_family, DEFAULT_ANCHORS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("verify") => run_verify(),
        Some("plan") => run_plan(args.iter().any(|a| a == "--check")),
        Some(other) => {
            eprintln!(
                "unknown subcommand `{other}`; usage: start-analysis \
                 <lint|verify|plan [--check]>"
            );
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: start-analysis <lint|verify|plan [--check]>");
            std::process::exit(2);
        }
    }
}

fn run_lint() {
    let root = workspace_root();
    let lints = match lint_workspace(&root) {
        Ok(lints) => lints,
        Err(e) => {
            eprintln!("start-analysis: failed to read workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    if lints.is_empty() {
        println!("start-analysis: workspace clean ({} rules)", 11);
        return;
    }
    for lint in &lints {
        eprintln!("{lint}");
    }
    eprintln!("start-analysis: {} issue(s) found", lints.len());
    std::process::exit(1);
}

/// Symbolically verify every registered model family's tape: START
/// (pretrain, eta, classify, serve-path encode) plus all eight baseline
/// trainers. Errors fail the run; warnings and infos are advisory.
fn run_verify() {
    let mut families = start_core::symbolic_families();
    families.extend(start_baselines::symbolic_families());

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for fam in &families {
        let report = verify_family(fam.as_ref(), DEFAULT_ANCHORS);
        errors += report.errors().count();
        warnings += report.warnings().count();
        let status = if report.has_errors() { "FAIL" } else { "ok" };
        println!(
            "{status:4} {} — {} node(s), {} trained parameter(s), {} finding(s)",
            report.family,
            report.num_nodes,
            report.trained_params,
            report.findings.len()
        );
        for finding in &report.findings {
            let line = format!("  {finding}");
            if finding.kind.severity() == Severity::Error {
                eprintln!("{line}");
            } else {
                println!("{line}");
            }
        }
    }
    println!(
        "start-analysis verify: {} family(ies), {} error(s), {} warning(s)",
        families.len(),
        errors,
        warnings
    );
    if errors > 0 {
        std::process::exit(1);
    }
}

fn run_plan(check: bool) {
    eprintln!("building the standard pretrain shard fixture...");
    let fix = StandardShard::build();
    let mut g = Graph::new(&fix.model.store, true);
    let res = fix.record(&mut g);
    let plan = MemoryPlan::analyze(&g, res.loss);
    println!("{plan}");

    let mut failures: Vec<String> = Vec::new();
    if plan.planned_peak_bytes() > plan.runtime_peak_bytes()
        || plan.runtime_peak_bytes() > plan.baseline_peak_bytes()
    {
        failures.push("peak figures are not ordered planned <= runtime <= baseline".to_string());
    }

    if check {
        if plan.reduction() < 0.30 {
            failures.push(format!(
                "planned peak regression: only {:.1}% below the no-plan baseline (floor: 30%)",
                100.0 * plan.reduction()
            ));
        }

        // Plan-enabled backward must be bitwise what plan-disabled computes.
        let mut planned_grads = GradStore::new(&fix.model.store);
        g.backward_planned(res.loss, &mut planned_grads, &plan);
        let planned_loss = g.value(res.loss).item();

        let mut g2 = Graph::new(&fix.model.store, true);
        let res2 = fix.record(&mut g2);
        let mut plain_grads = GradStore::new(&fix.model.store);
        g2.backward(res2.loss, &mut plain_grads);
        let plain_loss = g2.value(res2.loss).item();

        if planned_loss.to_bits() != plain_loss.to_bits() {
            failures.push(format!(
                "plan-enabled loss {planned_loss} != plan-disabled loss {plain_loss} (bitwise)"
            ));
        }
        for id in fix.model.store.ids() {
            let a = planned_grads.get(id).map(|a| a.data().to_vec());
            let b = plain_grads.get(id).map(|a| a.data().to_vec());
            let same = match (&a, &b) {
                (Some(a), Some(b)) => {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                }
                (None, None) => true,
                _ => false,
            };
            if !same {
                failures.push(format!(
                    "gradient of {:?} diverges between plan-enabled and plan-disabled backward",
                    fix.model.store.name(id)
                ));
                break;
            }
        }

        // Regression lint against the committed benchmark figures.
        let bench = workspace_root().join("BENCH_memory.json");
        if let Ok(json) = std::fs::read_to_string(&bench) {
            match recorded_planned_peak(&json) {
                Some(recorded) => {
                    let limit = recorded + recorded / 10;
                    if plan.planned_peak_bytes() > limit {
                        failures.push(format!(
                            "planned peak {} B exceeds the committed BENCH_memory.json figure \
                             {} B by more than 10% — rerun bench_memory and justify the regression",
                            plan.planned_peak_bytes(),
                            recorded
                        ));
                    }
                }
                None => failures.push(
                    "BENCH_memory.json exists but has no parsable \
                     \"planned_peak_bytes\" field"
                        .to_string(),
                ),
            }
        }
    }

    if failures.is_empty() {
        println!(
            "start-analysis plan: ok{}",
            if check { " (regression checks passed)" } else { "" }
        );
        return;
    }
    for f in &failures {
        eprintln!("start-analysis plan: {f}");
    }
    std::process::exit(1);
}

/// First `"planned_peak_bytes": <digits>` value in the benchmark JSON.
fn recorded_planned_peak(json: &str) -> Option<usize> {
    let key = "\"planned_peak_bytes\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
