//! `start-analysis` — the workspace lint driver.
//!
//! Usage: `cargo run -p start-analysis -- lint`
//!
//! Exits non-zero when any rule fires; CI runs this on every push.

use start_analysis::{lint_workspace, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; usage: start-analysis lint");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: start-analysis lint");
            std::process::exit(2);
        }
    }

    let root = workspace_root();
    let lints = match lint_workspace(&root) {
        Ok(lints) => lints,
        Err(e) => {
            eprintln!("start-analysis: failed to read workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    if lints.is_empty() {
        println!("start-analysis: workspace clean ({} rules)", 3);
        return;
    }
    for lint in &lints {
        eprintln!("{lint}");
    }
    eprintln!("start-analysis: {} issue(s) found", lints.len());
    std::process::exit(1);
}
